"""Shared helpers for the benchmark harness.

Every experiment writes its regenerated table to ``benchmarks/results/``
(one text file per experiment) besides printing it, so the artifacts that
back EXPERIMENTS.md survive the pytest output capture.
"""

from __future__ import annotations

import json
import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def record_result(name: str, text: str) -> str:
    """Write an experiment's regenerated table to the results directory."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path


def record_json(name: str, payload, directory: str | None = None) -> str:
    """Write an experiment's machine-readable results as JSON.

    The ``.txt`` tables are for humans; these sit alongside them so the
    perf trajectory is diffable/trackable across PRs.  ``directory``
    overrides the destination (used for the repo-level ``BENCH_*.json``).
    """
    directory = RESULTS_DIR if directory is None else directory
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[json written to {path}]")
    return path


def format_table(headers, rows) -> str:
    """Render a simple aligned text table."""
    table = [list(map(str, headers))] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


@pytest.fixture()
def record():
    return record_result
