"""Shared helpers for the benchmark harness.

Every experiment writes its regenerated table to ``benchmarks/results/``
(one text file per experiment) besides printing it, so the artifacts that
back EXPERIMENTS.md survive the pytest output capture.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def record_result(name: str, text: str) -> str:
    """Write an experiment's regenerated table to the results directory."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path


def format_table(headers, rows) -> str:
    """Render a simple aligned text table."""
    table = [list(map(str, headers))] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


@pytest.fixture()
def record():
    return record_result
