"""Ablations — measure the design choices the reproduction made.

* A1: optimizer on/off — what dead-let elimination and constant folding
  buy on the real docgen workload (and what the buggy mode silently costs
  you in lost traces).
* A2: query compilation caching — compile-once-run-many vs recompiling
  per query (the engine's `CompiledQuery` design).
* A3: model-export caching in the XQuery calculus backend — the
  workbench-realistic amortization of `export_model`.
"""

import time

from conftest import format_table, record_result
from repro.docgen import XQueryDocumentGenerator
from repro.querycalc import XQueryCalculusBackend, parse_query_xml
from repro.workloads import make_it_model, system_context_template
from repro.xquery import EngineConfig, XQueryEngine


def test_a01_optimizer_ablation(benchmark):
    model = make_it_model(scale=4)
    template = system_context_template()

    def measure():
        rows = []
        for label, config in (
            ("optimize=on", EngineConfig(optimize=True)),
            ("optimize=off", EngineConfig(optimize=False)),
        ):
            generator = XQueryDocumentGenerator(model, config=config)
            started = time.perf_counter()
            result = generator.generate(template)
            elapsed = time.perf_counter() - started
            rows.append((label, f"{elapsed * 1000:.0f}ms", len(result.problems)))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_result(
        "a01_optimizer.txt", format_table(["engine", "docgen time", "problems"], rows)
    )
    # both configurations must agree on behaviour.
    assert rows[0][2] == rows[1][2]


def test_a02_compile_caching_ablation(benchmark):
    """A2: the engine's LRU compile cache vs recompiling per query.

    The cached engine's `evaluate` goes through `XQueryEngine.compile`,
    which is the same code path the docgen runner and the calculus backend
    use, so the hit/miss counters in the table are the cache's own numbers
    rather than a re-timing estimate.
    """
    source = (
        "declare function local:f($n) { if ($n le 0) then 0 "
        "else $n + local:f($n - 1) }; local:f($in)"
    )
    runs = 30

    def measure():
        cached_engine = XQueryEngine()
        uncached_engine = XQueryEngine(EngineConfig(compile_cache_size=0))

        started = time.perf_counter()
        for index in range(runs):
            cached_engine.evaluate(source, variables={"in": index % 10})
        cached_seconds = time.perf_counter() - started
        info = cached_engine.cache_info()

        started = time.perf_counter()
        for index in range(runs):
            uncached_engine.evaluate(source, variables={"in": index % 10})
        recompile_seconds = time.perf_counter() - started
        uncached_info = uncached_engine.cache_info()

        return [
            (
                "lru cache on",
                f"{cached_seconds / runs * 1000:.2f}ms/run",
                f"{info['hits']}/{info['misses']}",
                f"{info['currsize']}/{info['maxsize']}",
            ),
            (
                "cache off (size=0)",
                f"{recompile_seconds / runs * 1000:.2f}ms/run",
                f"{uncached_info['hits']}/{uncached_info['misses']}",
                f"{uncached_info['currsize']}/{uncached_info['maxsize']}",
            ),
            (
                "compile overhead",
                f"{(recompile_seconds - cached_seconds) / runs * 1000:.2f}ms/run",
                "",
                "",
            ),
        ], info

    (rows, info) = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_result(
        "a02_compile_caching.txt",
        format_table(["mode", "cost", "hits/misses", "cache fill"], rows),
    )
    # the cache really was exercised: one miss, then all hits.
    assert info["misses"] == 1
    assert info["hits"] == runs - 1


def test_a03_export_caching_ablation(benchmark):
    model = make_it_model(scale=16)
    query = parse_query_xml(
        '<query><start type="User"/><follow relation="uses"/>'
        '<collect sort-by="label"/></query>'
    )
    runs = 3

    def measure():
        backend = XQueryCalculusBackend(model)
        backend.export  # warm
        started = time.perf_counter()
        for _ in range(runs):
            backend.run(query)
        cached_seconds = (time.perf_counter() - started) / runs

        # the cost being amortized: building the export itself.
        started = time.perf_counter()
        for _ in range(runs):
            backend.invalidate_export()
            backend.export
        export_seconds = (time.perf_counter() - started) / runs
        return [
            ("query (export cached)", f"{cached_seconds * 1000:.1f}ms"),
            ("export rebuild", f"{export_seconds * 1000:.1f}ms"),
            (
                "rebuild as share of query",
                f"{export_seconds / cached_seconds * 100:.0f}%",
            ),
        ]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_result("a03_export_caching.txt", format_table(["what", "cost"], rows))
    assert float(rows[1][1].rstrip("ms")) > 0.0


def test_a04_error_regime_ablation(benchmark):
    """A4: the whole generator under both error regimes.

    The exceptions-regime sources (modules_trycatch/) are the
    counterfactual generator — same behaviour, lesson 4 heeded.  Measures
    the code the error-value convention costs and the runtime difference.
    """
    from repro.docgen.xquery_impl import (
        LIBRARY_MODULES,
        LIBRARY_MODULES_TC,
        read_module,
    )
    from repro.workloads.loc import count_xquery_loc
    from repro.xmlio import serialize

    model = make_it_model(scale=5)
    template = system_context_template()

    def measure():
        values_loc = sum(
            count_xquery_loc(read_module(name)) for name in LIBRARY_MODULES
        )
        exceptions_loc = sum(
            count_xquery_loc(read_module(name)) for name in LIBRARY_MODULES_TC
        )

        values_generator = XQueryDocumentGenerator(model)
        exceptions_generator = XQueryDocumentGenerator(
            model, error_regime="exceptions"
        )
        started = time.perf_counter()
        values_result = values_generator.generate(template)
        values_seconds = time.perf_counter() - started
        started = time.perf_counter()
        exceptions_result = exceptions_generator.generate(template)
        exceptions_seconds = time.perf_counter() - started
        identical = serialize(values_result.document) == serialize(
            exceptions_result.document
        )
        return [
            ("error-value regime", values_loc, f"{values_seconds * 1000:.0f}ms"),
            (
                "try/catch regime",
                exceptions_loc,
                f"{exceptions_seconds * 1000:.0f}ms",
            ),
            (
                "ladder share of code",
                f"{100 * (values_loc - exceptions_loc) / values_loc:.0f}%",
                "same output" if identical else "DIFFER",
            ),
        ]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_result(
        "a04_error_regime.txt",
        format_table(["generator sources", "loc", "docgen time"], rows),
    )
    assert rows[2][2] == "same output"
    assert rows[1][1] < rows[0][1]
