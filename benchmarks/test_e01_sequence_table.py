"""E1 — regenerate the paper's sequence-indexing table.

The paper's table: build ($X, $Y, $Z) (and the element form
<el>{$X}{$Y}{$Z}</el>) and ask for item 2.  Seven rows show how the answer
slides across X, Y, Z as sequences flatten and attribute nodes fold.

Shape check: every row's qualitative "Result" column must hold (Y itself /
part of Y / Z / part of X / part of Z / nothing / error).  Note the row-5
erratum: by the table's own flattening logic the value is "3a" (a part of
Z), not the "3b" the paper prints; the qualitative claim still holds.
"""

import pytest

from conftest import format_table, record_result
from repro.xquery import XQueryDynamicError, XQueryEngine

engine = XQueryEngine()

ROWS = [
    # (label, X, Y, Z, expected_value or "error")
    ("Y itself", "1", "2", "3", [2]),
    ("Some part of Y", "1", '(2, "2a")', "4", [2]),
    ("Z", "1", "()", "3", [3]),
    ("A part of X", '("1a","1b")', "2", "3", ["1b"]),
    ("A part of Z", "1", "()", '("3a","3b")', ["3a"]),
    ("Nothing", "()", "(2)", "()", []),
    ("An error (for element rep.)", "1", 'attribute y {"why?"}', "2", "error"),
]


def run_row(x, y, z, expected):
    if expected == "error":
        source = f"let $x := {x} let $y := {y} let $z := {z} return <el>{{$x}}{{$y}}{{$z}}</el>"
        try:
            engine.evaluate(source)
            return "no error (!)"
        except XQueryDynamicError as exc:
            return f"error {exc.code}"
    source = f"let $x := {x} let $y := {y} let $z := {z} return ($x, $y, $z)[2]"
    result = engine.evaluate(source)
    if not result:
        return "()"
    item = result[0]
    return f'"{item}"' if isinstance(item, str) else str(item)


def regenerate_table():
    rows = []
    for label, x, y, z, expected in ROWS:
        gives = run_row(x, y, z, expected)
        rows.append((label, x, y, z, gives))
    return rows


def test_e01_sequence_indexing_table(benchmark):
    rows = benchmark.pedantic(regenerate_table, rounds=3, iterations=1)

    table = format_table(["Result", "X", "Y", "Z", "Gives"], rows)
    record_result("e01_sequence_table.txt", table)

    gives = {label: value for label, _, _, _, value in rows}
    assert gives["Y itself"] == "2"
    assert gives["Some part of Y"] == "2"
    assert gives["Z"] == "3"
    assert gives["A part of X"] == '"1b"'
    # paper prints "3b" here; flattening actually yields "3a" — still a
    # part of Z, which is the row's claim (erratum noted in EXPERIMENTS.md)
    assert gives["A part of Z"] == '"3a"'
    assert gives["Nothing"] == "()"
    assert gives["An error (for element rep.)"] == "error XQTY0024"


@pytest.mark.parametrize("label,x,y,z,expected", ROWS)
def test_e01_rows_individually(benchmark, label, x, y, z, expected):
    result = benchmark.pedantic(run_row, args=(x, y, z, expected), rounds=2, iterations=1)
    if expected == "error":
        assert result.startswith("error")
    elif expected == []:
        assert result == "()"
