"""E2 — the paper's attribute-folding examples.

Three programs from the "Treatment of Child Elements" section:

1. a leading attribute node becomes an attribute of the parent;
2. duplicate attribute names: "one of two results" (and the Galax bug
   keeps both);
3. an attribute after non-attribute content is an error.
"""

from conftest import format_table, record_result
from repro.xmlio import serialize
from repro.xquery import EngineConfig, XQueryDynamicError, XQueryEngine

FOLD = "let $x := attribute troubles {1} return <el> {$x} </el>"
DUPES = (
    "let $a := attribute a {1} let $b := attribute a {2} "
    "let $c := attribute b {3} return <el> {$a}{$b}{$c} </el>"
)
AFTER_CONTENT = 'let $x := attribute troubles {1} return <el> "doom" {$x} </el>'


def run_case(engine, source):
    try:
        result = engine.evaluate(source)
        return serialize(result[0])
    except XQueryDynamicError as exc:
        return f"error {exc.code}"


def regenerate():
    rows = []
    default_engine = XQueryEngine()
    rows.append(("fold (spec)", run_case(default_engine, FOLD)))
    for mode in ("last", "first", "keep", "error"):
        engine = XQueryEngine(EngineConfig(duplicate_attribute_mode=mode))
        rows.append((f"dupes mode={mode}", run_case(engine, DUPES)))
    rows.append(("attr after content", run_case(default_engine, AFTER_CONTENT)))
    return rows


def test_e02_attribute_folding(benchmark):
    rows = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    record_result(
        "e02_attribute_folding.txt", format_table(["case", "result"], rows)
    )
    results = dict(rows)

    # example 1: <el troubles="1"/>
    assert results["fold (spec)"] == '<el troubles="1"/>'
    # example 2: the paper's two legal outcomes...
    assert results["dupes mode=last"] == '<el a="2" b="3"/>'
    assert results["dupes mode=first"] == '<el a="1" b="3"/>'
    # ...the Galax bug ("did not honor this") keeps both a= attributes...
    assert results["dupes mode=keep"].count("a=") == 2
    # ...and the eventual standard makes it an error.
    assert results["dupes mode=error"] == "error XQDY0025"
    # example 3: "it will cause an error".
    assert results["attr after content"] == "error XQTY0024"
