"""E3 — error handling: error-as-value vs exceptions.

Paper claims reproduced:

* "this turned nearly every function call into a half-dozen lines of
  code" — the static ladder measurement: lines per required-child fetch in
  the XQuery chain vs the Java-style chain;
* the runtime cost of threading error values through every return vs one
  exception at the top, on healthy and broken chains.
"""

import pytest

from conftest import format_table, record_result
from repro.docgen import GenTrouble
from repro.workloads import (
    native_chain,
    nested_input,
    xquery_chain_program,
)
from repro.xquery import XQueryEngine

engine = XQueryEngine()

DEPTHS = [4, 16, 64]


def xquery_chain_runner(depth, break_at=0):
    program = engine.compile(xquery_chain_program(depth))
    tree = nested_input(depth, break_at=break_at)

    def run():
        return program.run(variables={"input": tree})

    return run


def native_chain_runner(depth, break_at=0):
    tree = nested_input(depth, break_at=break_at)

    def run():
        try:
            return native_chain(tree, depth)
        except GenTrouble as trouble:
            return trouble

    return run


class TestStaticLadder:
    def test_lines_per_call(self, benchmark):
        def measure():
            rows = []
            for depth in DEPTHS:
                program = xquery_chain_program(depth)
                body_lines = [
                    line
                    for line in program.splitlines()
                    if line.strip() and not line.lstrip().startswith("declare")
                    and not line.lstrip().startswith(("}", '"', "    if (empty"))
                ]
                # the Java-style chain is one line per fetch (+1 return).
                java_lines = depth + 1
                rows.append(
                    (
                        depth,
                        len(body_lines),
                        java_lines,
                        f"{len(body_lines) / depth:.1f}",
                        f"{len(body_lines) / java_lines:.1f}x",
                    )
                )
            return rows

        rows = benchmark.pedantic(measure, rounds=3, iterations=1)
        table = format_table(
            ["depth", "xquery lines", "java-style lines", "lines/call", "blowup"],
            rows,
        )
        record_result("e03_ladder_lines.txt", table)
        # "nearly every function call into a half-dozen lines of code":
        for _, _, _, lines_per_call, _ in rows:
            assert float(lines_per_call) >= 4.0


class TestRuntime:
    @pytest.mark.parametrize("depth", DEPTHS)
    def test_xquery_chain_healthy(self, benchmark, depth):
        run = xquery_chain_runner(depth)
        result = benchmark(run)
        assert result[0].name == "done"

    @pytest.mark.parametrize("depth", DEPTHS)
    def test_native_chain_healthy(self, benchmark, depth):
        run = native_chain_runner(depth)
        assert benchmark(run) == f"c{depth}"

    @pytest.mark.parametrize("depth", [64])
    def test_xquery_chain_broken_midway(self, benchmark, depth):
        run = xquery_chain_runner(depth, break_at=depth // 2)
        result = benchmark(run)
        assert result[0].name == "failed"

    @pytest.mark.parametrize("depth", [64])
    def test_native_chain_broken_midway(self, benchmark, depth):
        run = native_chain_runner(depth, break_at=depth // 2)
        trouble = benchmark(run)
        assert isinstance(trouble, GenTrouble)
        # the exception carries the context for free.
        assert f"c{depth // 2}" in str(trouble)

    def test_shape_claim_summary(self, benchmark):
        """The error-value chain costs more per call than exceptions."""
        import time

        def measure():
            rows = []
            for depth in DEPTHS:
                xquery_run = xquery_chain_runner(depth)
                native_run = native_chain_runner(depth)
                started = time.perf_counter()
                for _ in range(3):
                    xquery_run()
                xquery_seconds = (time.perf_counter() - started) / 3
                started = time.perf_counter()
                for _ in range(300):
                    native_run()
                native_seconds = (time.perf_counter() - started) / 300
                rows.append(
                    (
                        depth,
                        f"{xquery_seconds * 1e6:.0f}us",
                        f"{native_seconds * 1e6:.0f}us",
                        f"{xquery_seconds / native_seconds:.0f}x",
                    )
                )
            return rows

        rows = benchmark.pedantic(measure, rounds=1, iterations=1)
        record_result(
            "e03_runtime.txt",
            format_table(["depth", "xquery chain", "native chain", "ratio"], rows),
        )
        # shape: the error-value regime is consistently slower.
        for _, _, _, ratio in rows:
            assert float(ratio.rstrip("x")) > 1.0
