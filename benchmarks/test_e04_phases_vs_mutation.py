"""E4 — multi-phase whole-document copying vs one pass plus mutation.

"This approach ... was fairly inefficient, requiring multiple copies of
the entire output (complete with internal notes that weren't going to get
into the final output).  This wasn't horrible, though it wasn't entirely
pleasant either."

We generate ToC+omissions-heavy documents with both implementations and
report wall-clock plus the bytes each XQuery phase re-serializes.
"""

import pytest

from conftest import format_table, record_result
from repro.docgen import NativeDocumentGenerator, XQueryDocumentGenerator
from repro.workloads import make_it_model, toc_heavy_template

SCALES = [(4, 4), (8, 8), (16, 12)]  # (model scale, sections)


@pytest.mark.parametrize("scale,sections", SCALES)
def test_e04_native_single_pass(benchmark, scale, sections):
    model = make_it_model(scale=scale)
    template = toc_heavy_template(sections)
    generator = NativeDocumentGenerator(model)
    result = benchmark(lambda: generator.generate(template))
    assert result.metrics["phases"] == 2
    assert len(result.toc) == sections


@pytest.mark.parametrize("scale,sections", SCALES)
def test_e04_xquery_five_phases(benchmark, scale, sections):
    model = make_it_model(scale=scale)
    template = toc_heavy_template(sections)
    generator = XQueryDocumentGenerator(model)
    result = benchmark.pedantic(
        lambda: generator.generate(template), rounds=1, iterations=1
    )
    assert result.metrics["phases"] == 5
    assert len(result.toc) == sections


def test_e04_bytes_copied_table(benchmark):
    def measure():
        rows = []
        for scale, sections in SCALES:
            model = make_it_model(scale=scale)
            template = toc_heavy_template(sections)
            result = XQueryDocumentGenerator(model).generate(template)
            per_phase = result.metrics["bytes_per_phase"]
            final_size = per_phase["phase5_strip"]
            total = result.metrics["bytes_copied_total"]
            rows.append(
                (
                    f"scale={scale}",
                    per_phase["phase1_generate"],
                    per_phase["phase2_omissions"],
                    per_phase["phase3_toc"],
                    per_phase["phase4_replace"],
                    final_size,
                    total,
                    f"{total / final_size:.1f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = format_table(
        ["workload", "p1", "p2 omissions", "p3 toc", "p4 replace", "final", "total", "overhead"],
        rows,
    )
    record_result("e04_bytes_copied.txt", table)
    # shape: the pipeline re-serializes several times the final document,
    # "multiple copies of the entire output".
    for row in rows:
        assert float(row[-1].rstrip("x")) >= 3.0
