"""E5 — the row/column table: all-at-once functional vs skeleton-then-fill.

"Producing this in XQuery takes a certain amount of care, because each row
and then the table itself must be produced in its entirety, all at once...
The Java was substantially easier to arrange."

Both implementations must produce the same table; the functional one pays
the all-at-once construction cost (every nested constructor re-copies its
children).
"""

import pytest

from conftest import format_table, record_result
from repro.docgen import NativeDocumentGenerator, XQueryDocumentGenerator
from repro.workloads import make_it_model, table_template
from repro.xmlio import serialize

SIZES = [4, 10, 20]  # model scale drives rows (users) and cols (programs)


def checkmark_count(document):
    return serialize(document).count("✓")


@pytest.mark.parametrize("scale", SIZES)
def test_e05_native_skeleton_fill(benchmark, scale):
    model = make_it_model(scale=scale)
    template = table_template("User", "Program", "uses")
    generator = NativeDocumentGenerator(model)
    result = benchmark(lambda: generator.generate(template))
    assert checkmark_count(result.document) > 0


@pytest.mark.parametrize("scale", SIZES)
def test_e05_xquery_all_at_once(benchmark, scale):
    model = make_it_model(scale=scale)
    template = table_template("User", "Program", "uses")
    generator = XQueryDocumentGenerator(model)
    result = benchmark.pedantic(
        lambda: generator.generate(template), rounds=1, iterations=1
    )
    assert checkmark_count(result.document) > 0


def test_e05_tables_identical_and_ratio(benchmark):
    import time

    def measure():
        rows = []
        for scale in SIZES:
            model = make_it_model(scale=scale)
            template = table_template("User", "Program", "uses")
            native_generator = NativeDocumentGenerator(model)
            xquery_generator = XQueryDocumentGenerator(model)

            started = time.perf_counter()
            for _ in range(5):
                native_result = native_generator.generate(template)
            native_seconds = (time.perf_counter() - started) / 5

            started = time.perf_counter()
            xquery_result = xquery_generator.generate(template)
            xquery_seconds = time.perf_counter() - started

            same = serialize(native_result.document) == serialize(
                xquery_result.document
            )
            rows.append(
                (
                    f"{scale}x{max(2, scale // 2)}",
                    f"{native_seconds * 1000:.1f}ms",
                    f"{xquery_seconds * 1000:.1f}ms",
                    f"{xquery_seconds / native_seconds:.0f}x",
                    "same" if same else "DIFFER",
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_result(
        "e05_table_generation.txt",
        format_table(
            ["table size", "skeleton+fill", "all-at-once", "slowdown", "output"], rows
        ),
    )
    for row in rows:
        assert row[-1] == "same"
        assert float(row[-2].rstrip("x")) > 1.0
