"""E6 — "Calling XQuery from Java to evaluate queries was preposterously
inefficient, and would have made the workbench unusably slow."

The same calculus queries run through the native graph interpreter and
through compilation-to-XQuery over the XML export, across model sizes and
query batch sizes (the UI runs many small queries).
"""

import time

import pytest

from conftest import format_table, record_json, record_result
from repro.querycalc import XQueryCalculusBackend, parse_query_xml, run_query
from repro.workloads import make_it_model

QUERY = parse_query_xml(
    """
    <query>
      <start type="User"/>
      <follow relation="likes"/>
      <follow relation="uses" target-type="Program"/>
      <collect sort-by="label"/>
    </query>
    """
)

SCALES = [8, 24, 48]


@pytest.mark.parametrize("scale", SCALES)
def test_e06_native_backend(benchmark, scale):
    model = make_it_model(scale=scale)
    result = benchmark(lambda: run_query(QUERY, model))
    assert result  # the query finds programs


@pytest.mark.parametrize("scale", SCALES)
def test_e06_xquery_backend(benchmark, scale):
    model = make_it_model(scale=scale)
    backend = XQueryCalculusBackend(model)
    backend.export  # build the export outside the timed region
    result = benchmark.pedantic(lambda: backend.run(QUERY), rounds=1, iterations=1)
    assert [n.id for n in result] == [n.id for n in run_query(QUERY, model)]


def test_e06_slowdown_table(benchmark):
    def measure():
        rows = []
        for scale in SCALES:
            model = make_it_model(scale=scale)
            backend = XQueryCalculusBackend(model)
            backend.export

            started = time.perf_counter()
            for _ in range(50):
                run_query(QUERY, model)
            native_seconds = (time.perf_counter() - started) / 50

            started = time.perf_counter()
            backend.run(QUERY)
            xquery_seconds = time.perf_counter() - started

            rows.append(
                (
                    model.stats()["nodes"],
                    model.stats()["relations"],
                    f"{native_seconds * 1000:.2f}ms",
                    f"{xquery_seconds * 1000:.1f}ms",
                    f"{xquery_seconds / native_seconds:.0f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_result(
        "e06_query_backends.txt",
        format_table(
            ["nodes", "relations", "native/query", "xquery/query", "slowdown"], rows
        ),
    )
    record_json(
        "e06_query_backends.json",
        {
            "experiment": "e06",
            "rows": [
                {
                    "nodes": nodes,
                    "relations": relations,
                    "native_ms": float(native.rstrip("ms")),
                    "xquery_ms": float(xquery.rstrip("ms")),
                    "slowdown": float(slowdown.rstrip("x")),
                }
                for nodes, relations, native, xquery, slowdown in rows
            ],
        },
    )
    # shape: at least an order of magnitude at every size, growing with
    # model size (the joins scan the whole export per hop).
    slowdowns = [float(row[-1].rstrip("x")) for row in rows]
    assert all(s >= 10 for s in slowdowns)
    assert slowdowns[-1] > slowdowns[0]
