"""E7 — set-of-strings vs XML-encoded sets.

"If we represent the two sets as XML structures (which makes the basic
operations several times as expensive)..."  The same fold-and-probe
workload over both encodings; shape check: the XML encoding costs a
multiple of the string-sequence encoding.
"""

import time

import pytest

from conftest import format_table, record_result
from repro.workloads import STRING_SET_PROGRAM, XML_SET_PROGRAM, make_values
from repro.xquery import XQueryEngine

engine = XQueryEngine()
SIZES = [16, 48, 96]


def make_runner(program_source, count):
    program = engine.compile(program_source)
    values = make_values(count)

    def run():
        return program.run(variables={"values": values})

    return run


@pytest.mark.parametrize("count", SIZES)
def test_e07_string_sets(benchmark, count):
    run = make_runner(STRING_SET_PROGRAM, count)
    result = benchmark.pedantic(run, rounds=2, iterations=1)
    size, members = result
    assert members == count  # every inserted value is found again
    assert size < count  # duplicates were deduplicated


@pytest.mark.parametrize("count", SIZES)
def test_e07_xml_sets(benchmark, count):
    run = make_runner(XML_SET_PROGRAM, count)
    result = benchmark.pedantic(run, rounds=2, iterations=1)
    size, members = result
    assert members == count
    assert size < count


def test_e07_encodings_agree_and_cost_table(benchmark):
    def measure():
        rows = []
        for count in SIZES:
            string_run = make_runner(STRING_SET_PROGRAM, count)
            xml_run = make_runner(XML_SET_PROGRAM, count)

            started = time.perf_counter()
            string_result = string_run()
            string_seconds = time.perf_counter() - started

            started = time.perf_counter()
            xml_result = xml_run()
            xml_seconds = time.perf_counter() - started

            assert string_result == xml_result
            rows.append(
                (
                    count,
                    string_result[0],
                    f"{string_seconds * 1000:.1f}ms",
                    f"{xml_seconds * 1000:.1f}ms",
                    f"{xml_seconds / string_seconds:.1f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_result(
        "e07_set_encodings.txt",
        format_table(
            ["values", "set size", "string seq", "xml encoded", "ratio"], rows
        ),
    )
    # "several times as expensive": ratio > 1.5 at every size.
    for row in rows:
        assert float(row[-1].rstrip("x")) > 1.5
