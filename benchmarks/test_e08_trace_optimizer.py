"""E8 — debugging: the trace-eating optimizer and error() bisection.

* the 2004 Galax behaviour: a trace in a dead ``let`` silently vanishes
  under optimization; the insinuated form survives; the fixed optimizer
  keeps both;
* the cost of the paper's only earlier workflow — binary search by
  ``error()`` probes, each costing a full program run.
"""

import pytest

from conftest import format_table, record_result
from repro.workloads import make_it_model, system_context_template
from repro.xquery import EngineConfig, TraceLog, XQueryEngine
from repro.xquery.debug import ErrorBisector, make_probe_runner

DEAD_TRACE = "let $x := 6 * 7 let $dummy := trace('x=', $x) return $x"
LIVE_TRACE = "let $x := trace('x=', 6 * 7) return $x"


def traced_run(engine, source):
    trace = TraceLog()
    value = engine.evaluate(source, trace=trace)
    return value, trace.messages


def test_e08_trace_visibility_matrix(benchmark):
    def measure():
        engines = {
            "galax 2004 (buggy dce)": XQueryEngine(
                EngineConfig(optimize=True, trace_is_dead_code=True)
            ),
            "fixed optimizer": XQueryEngine(
                EngineConfig(optimize=True, trace_is_dead_code=False)
            ),
            "no optimizer": XQueryEngine(EngineConfig(optimize=False)),
        }
        rows = []
        for name, engine in engines.items():
            _, dead_messages = traced_run(engine, DEAD_TRACE)
            _, live_messages = traced_run(engine, LIVE_TRACE)
            rows.append(
                (
                    name,
                    "lost" if not dead_messages else "printed",
                    "lost" if not live_messages else "printed",
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=3, iterations=1)
    record_result(
        "e08_trace_matrix.txt",
        format_table(["engine", "trace in dead let", "insinuated trace"], rows),
    )
    matrix = {row[0]: (row[1], row[2]) for row in rows}
    assert matrix["galax 2004 (buggy dce)"] == ("lost", "printed")
    assert matrix["fixed optimizer"] == ("printed", "printed")
    assert matrix["no optimizer"] == ("printed", "printed")


def make_pipeline_program(total, bug_at):
    def source_for_probe(probe_at):
        lines = ["let $x0 := 1"]
        for step in range(1, total + 1):
            if step == probe_at:
                lines.append('let $p := error("probe")')
            if step == bug_at:
                lines.append(f"let $x{step} := $x{step - 1} idiv 0")
            else:
                lines.append(f"let $x{step} := $x{step - 1} + 1")
        lines.append(f"return $x{total}")
        return "\n".join(lines)

    return source_for_probe


@pytest.mark.parametrize("total,bug_at", [(16, 11), (64, 37), (256, 201)])
def test_e08_error_bisection_cost(benchmark, total, bug_at):
    engine = XQueryEngine()
    runner = make_probe_runner(engine, make_pipeline_program(total, bug_at))

    def locate():
        return ErrorBisector(total, runner).locate()

    result = benchmark.pedantic(locate, rounds=1, iterations=1)
    assert result.failing_step == bug_at
    # each of these runs is a full edit-and-rerun cycle in the paper's
    # workflow; log2(N) of them.
    assert result.runs <= total.bit_length() + 1


def test_e08_bisection_runs_table(benchmark):
    def measure():
        rows = []
        for total, bug_at in [(16, 11), (64, 37), (256, 201)]:
            engine = XQueryEngine()
            runner = make_probe_runner(engine, make_pipeline_program(total, bug_at))
            result = ErrorBisector(total, runner).locate()
            rows.append((total, bug_at, result.failing_step, result.runs))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_result(
        "e08_bisection.txt",
        format_table(["program steps", "bug at", "found", "full runs needed"], rows),
    )
    for total, bug_at, found, runs in rows:
        assert found == bug_at


def test_e08_trace_overhead_on_real_workload(benchmark):
    """Tracing the real docgen: the flood of data the paper mentions."""
    model = make_it_model(scale=4)
    from repro.docgen import XQueryDocumentGenerator

    generator = XQueryDocumentGenerator(model)
    trace = TraceLog()

    def run():
        return generator.generate(system_context_template(), trace=trace)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.document is not None
