"""E9 — the rewrite comparison: code size and end-to-end throughput.

"Our XQuery program ended up being a few thousand lines long...  When
circumstances forced us to rewrite that component in Java, the rewrite
took a small fraction of the time...  In a few weeks we had pretty much
reproduced the power of the XQuery code."

We measure the two *shipped* generator implementations of this repo:
lines of code of each (the .xq sources vs the Java-style Python), and
end-to-end System Context generation throughput.
"""

import os
import time

from conftest import format_table, record_result
from repro.docgen import NativeDocumentGenerator, XQueryDocumentGenerator
from repro.workloads import make_it_model, system_context_template
from repro.workloads.loc import inventory

HERE = os.path.dirname(os.path.abspath(__file__))
SRC = os.path.join(HERE, "..", "src", "repro")

XQUERY_IMPL_PATHS = [os.path.join(SRC, "docgen", "xquery_impl", "modules")]
NATIVE_IMPL_PATHS = [os.path.join(SRC, "docgen", "native")]


def loc_rows():
    xquery_files = inventory(XQUERY_IMPL_PATHS)
    native_files = inventory(NATIVE_IMPL_PATHS)
    xquery_total = sum(xquery_files.values())
    native_total = sum(native_files.values())
    return xquery_files, native_files, xquery_total, native_total


def test_e09_loc_inventory(benchmark):
    xquery_files, native_files, xquery_total, native_total = benchmark.pedantic(
        loc_rows, rounds=3, iterations=1
    )
    rows = []
    for path, loc in sorted(xquery_files.items()):
        rows.append(("xquery", os.path.basename(path), loc))
    for path, loc in sorted(native_files.items()):
        rows.append(("java-style", os.path.basename(path), loc))
    rows.append(("xquery", "TOTAL", xquery_total))
    rows.append(("java-style", "TOTAL", native_total))
    record_result(
        "e09_loc.txt", format_table(["implementation", "file", "loc"], rows)
    )
    # shape: the functional implementation is bigger than the rewrite
    # (the error ladders and phase copies are all code).
    assert xquery_total > native_total
    # and the walk is "a hundred lines of code" scale, not thousands.
    assert xquery_total < 2000


def test_e09_end_to_end_throughput(benchmark):
    def measure():
        rows = []
        for scale in (4, 8, 16):
            model = make_it_model(scale=scale)
            template = system_context_template()
            native_generator = NativeDocumentGenerator(model)
            xquery_generator = XQueryDocumentGenerator(model)

            started = time.perf_counter()
            for _ in range(5):
                native_result = native_generator.generate(template)
            native_seconds = (time.perf_counter() - started) / 5

            started = time.perf_counter()
            xquery_result = xquery_generator.generate(template)
            xquery_seconds = time.perf_counter() - started

            assert sorted(native_result.visited_node_ids) == sorted(
                xquery_result.visited_node_ids
            )
            rows.append(
                (
                    model.stats()["nodes"],
                    f"{native_seconds * 1000:.1f}ms",
                    f"{xquery_seconds * 1000:.0f}ms",
                    f"{xquery_seconds / native_seconds:.0f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_result(
        "e09_throughput.txt",
        format_table(["model nodes", "java-style", "xquery", "slowdown"], rows),
    )
    for row in rows:
        assert float(row[-1].rstrip("x")) > 5.0
