"""E10 — the syntactic-quirk table: what the operators actually do.

Regenerates the paper's quirk examples as a table: existential ``=``,
the singleton operators, ``$n-1`` as a variable name, ``/`` as a step.
"""

import pytest

from conftest import format_table, record_result
from repro.xquery import XQueryEngine, XQueryError

engine = XQueryEngine()

CASES = [
    # (expression, expected rendering)
    ("1 = (1,2,3)", "true"),
    ("(1,2,3) = 3", "true"),
    ("1 = 3", "false"),
    ("(1,2) != (1,2)", "true"),
    ("1 eq 1", "true"),
    ("1 eq (1,2,3)", "error XPTY0004"),
    ("('a','b','c') = 'b'", "true"),
    ("let $n := 5 return $n - 1", "4"),
    ("let $n-1 := 99 return $n-1", "99"),
    ("let $n := 5 return ($n)-1", "4"),
    ("10 div 4", "2.5"),
    ("<x><kid/></x>/kid instance of element(kid)", "true"),
]


def run_case(source):
    try:
        return engine.evaluate_to_string(source)
    except XQueryError as error:
        return f"error {error.code}"


def regenerate():
    return [(source, run_case(source)) for source, _ in CASES]


def test_e10_quirks_table(benchmark):
    rows = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    record_result(
        "e10_equality_quirks.txt", format_table(["expression", "gives"], rows)
    )
    results = dict(rows)
    for source, expected in CASES:
        assert results[source] == expected, source


@pytest.mark.parametrize("source,expected", CASES)
def test_e10_individual(benchmark, source, expected):
    result = benchmark.pedantic(run_case, args=(source,), rounds=2, iterations=1)
    assert result == expected


def test_e10_missing_dollar_quirk(benchmark):
    """Quirk 1: forgetting the $ silently means "children named x"."""

    def run():
        # with a context item, `x` quietly returns the x children — the
        # trap the paper calls "far and away the most frequently-annoying".
        doc = engine.evaluate("<ctx><x>gotcha</x></ctx>")[0]
        return engine.evaluate_to_string("x", context_item=doc)

    assert benchmark.pedantic(run, rounds=2, iterations=1) == "<x>gotcha</x>"
