"""E11 — the closing lessons scorecard.

Regenerates the paper's "The Moral" as a table: the seven lessons scored
against the 2004 XQuery built here and against the Java-style host, with
each verdict cross-checked against the behaviour of this repo's actual
implementations (the audit is not just opinion — the engine demonstrates
each failure).
"""

from conftest import record_result
from repro.littlelang import (
    LESSONS,
    profile_java_style_host,
    profile_xquery_2004,
    render_scorecard,
)
from repro.xquery import EngineConfig, TraceLog, XQueryEngine, XQueryUserError


def test_e11_scorecard(benchmark):
    def build():
        return render_scorecard([profile_xquery_2004(), profile_java_style_host()])

    text = benchmark.pedantic(build, rounds=3, iterations=1)
    record_result("e11_lessons.txt", text)
    assert "2/7" in text  # XQuery
    assert "6/7" in text  # the host
    assert len(LESSONS) == 7


class TestVerdictsAreGroundTruth:
    """Each scorecard verdict is backed by engine behaviour."""

    def test_lesson1_data_structures_fail(self, benchmark):
        # nesting washes out: no honest pairs, hence no generic containers.
        engine = XQueryEngine()
        result = benchmark.pedantic(
            lambda: engine.evaluate("count(((1,2),(3,4)))"), rounds=2, iterations=1
        )
        assert result == [4]

    def test_lesson2_mutability_fail(self, benchmark):
        # there is no assignment form at all: ':=' exists only in let,
        # which binds a *new* variable.
        from repro.xquery.errors import XQueryStaticError

        engine = XQueryEngine()

        def attempt():
            try:
                engine.evaluate("let $x := 1 return ($x := 2)")
                return "mutated"
            except XQueryStaticError:
                return "no assignment form"

        assert benchmark.pedantic(attempt, rounds=2, iterations=1) == "no assignment form"

    def test_lesson3_control_structures_pass(self, benchmark):
        # "(XQuery got this one right.)"
        engine = XQueryEngine()
        source = (
            "declare function local:fib($n) { if ($n lt 2) then $n "
            "else local:fib($n - 1) + local:fib($n - 2) }; local:fib(12)"
        )
        assert benchmark.pedantic(
            lambda: engine.evaluate(source), rounds=2, iterations=1
        ) == [144]

    def test_lesson4_exceptions_fail(self, benchmark):
        # error() throws; nothing in the language catches.
        engine = XQueryEngine()

        def attempt():
            try:
                engine.evaluate("error('unrecoverable')")
            except XQueryUserError:
                return "only the host can catch"

        assert (
            benchmark.pedantic(attempt, rounds=2, iterations=1)
            == "only the host can catch"
        )

    def test_lesson5_debugging_fail(self, benchmark):
        # under the period optimizer, the debugging feature deletes itself.
        engine = XQueryEngine(EngineConfig(optimize=True, trace_is_dead_code=True))

        def attempt():
            trace = TraceLog()
            engine.evaluate(
                "let $d := trace('probe', 1) return 42", trace=trace
            )
            return len(trace.messages)

        assert benchmark.pedantic(attempt, rounds=2, iterations=1) == 0

    def test_lesson5_verdict_cites_measured_diagnostics(self):
        # the scorecard's debugging note carries counts the analyzer
        # actually measured, not a hand-written claim.
        from repro.littlelang.audit import measured_dead_trace_diagnostics

        measured = measured_dead_trace_diagnostics()
        assert measured == {"dead_trace_probe": 1, "insinuated_fix": 0}
        profile = profile_xquery_2004()
        _, note = profile.answers["debugging"]
        assert "1 XQL001" in note
        assert "0 on the insinuated fix" in note

    def test_lesson6_syntax_fail(self, benchmark):
        # '=' means nonempty intersection; $n-1 is a name.
        engine = XQueryEngine()

        def attempt():
            weird = engine.evaluate("(1,2) != (1,2)")
            name = engine.evaluate("let $n-1 := 'one name' return $n-1")
            return weird + name

        assert benchmark.pedantic(attempt, rounds=2, iterations=1) == [
            True,
            "one name",
        ]

    def test_lesson7_focus_pass(self, benchmark):
        # the one-liner that is "several times harder in Java":
        engine = XQueryEngine()
        doc = engine.evaluate(
            "<r><k year='1983'><g/><g/></k><k year='2001'><g/></k></r>"
        )[0]

        def dissect():
            return engine.evaluate(
                "count($r/k[@year='1983']//g)", variables={"r": doc}
            )

        assert benchmark.pedantic(dissect, rounds=2, iterations=1) == [2]
