"""E12 (extension) — what try/catch would have fixed.

Not a claim from the paper but its direct consequence: lesson 4 says "a
little language should provide exception handling", and XQuery 3.0 added
try/catch in 2014.  This experiment runs the E3 error-chain workload in
all three regimes:

* 2004 XQuery: error-as-``<error>``-value, a ladder at every call;
* XQuery + try/catch (this engine's extension): throwing utility, one
  handler;
* the Java-style host: exceptions.

Shape expected: try/catch restores the one-line-per-call code shape and
removes the per-call error-test overhead, landing between the two.
"""

import time

from conftest import format_table, record_result
from repro.docgen import GenTrouble
from repro.workloads import (
    native_chain,
    nested_input,
    trycatch_chain_program,
    xquery_chain_program,
)
from repro.xquery import XQueryEngine

engine = XQueryEngine()
DEPTHS = [8, 32]


def code_lines(program: str) -> int:
    return len(
        [line for line in program.splitlines() if line.strip() and "declare" not in line]
    )


def test_e12_code_shape(benchmark):
    def measure():
        rows = []
        for depth in DEPTHS:
            ladder = code_lines(xquery_chain_program(depth))
            trycatch = code_lines(trycatch_chain_program(depth))
            java_style = depth + 1
            rows.append((depth, ladder, trycatch, java_style))
        return rows

    rows = benchmark.pedantic(measure, rounds=3, iterations=1)
    record_result(
        "e12_code_shape.txt",
        format_table(
            ["depth", "error-value lines", "try/catch lines", "java-style lines"],
            rows,
        ),
    )
    for depth, ladder, trycatch, java_style in rows:
        # try/catch collapses the ladder to near the host-language shape.
        assert trycatch < ladder / 2
        assert trycatch <= java_style + 12  # constant overhead only


def test_e12_runtime_three_regimes(benchmark):
    def measure():
        rows = []
        for depth in DEPTHS:
            tree = nested_input(depth)
            ladder_program = engine.compile(xquery_chain_program(depth))
            trycatch_program = engine.compile(trycatch_chain_program(depth))

            started = time.perf_counter()
            for _ in range(5):
                ladder_program.run(variables={"input": tree})
            ladder_seconds = (time.perf_counter() - started) / 5

            started = time.perf_counter()
            for _ in range(5):
                trycatch_program.run(variables={"input": tree})
            trycatch_seconds = (time.perf_counter() - started) / 5

            started = time.perf_counter()
            for _ in range(200):
                native_chain(tree, depth)
            native_seconds = (time.perf_counter() - started) / 200

            rows.append(
                (
                    depth,
                    f"{ladder_seconds * 1e6:.0f}us",
                    f"{trycatch_seconds * 1e6:.0f}us",
                    f"{native_seconds * 1e6:.0f}us",
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_result(
        "e12_runtime.txt",
        format_table(["depth", "error-value", "try/catch", "java-style"], rows),
    )
    for _, ladder, trycatch, native in rows:
        assert float(trycatch.rstrip("us")) <= float(ladder.rstrip("us")) * 1.15


def test_e12_broken_chain_equivalent_reporting(benchmark):
    def check():
        depth = 16
        tree = nested_input(depth, break_at=9)
        ladder = engine.evaluate(
            xquery_chain_program(depth), variables={"input": tree}
        )[0]
        trycatch = engine.evaluate(
            trycatch_chain_program(depth), variables={"input": tree}
        )[0]
        try:
            native_chain(tree, depth)
            native_message = None
        except GenTrouble as trouble:
            native_message = trouble.bare_message
        return (
            ladder.string_value(),
            trycatch.string_value(),
            native_message,
        )

    ladder_msg, trycatch_msg, native_msg = benchmark.pedantic(
        check, rounds=2, iterations=1
    )
    # all three regimes identify the same failing level.
    assert "c9" in ladder_msg and "c9" in trycatch_msg and "c9" in native_msg
