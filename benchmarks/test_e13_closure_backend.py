"""E13 — the closure-compiling backend vs the treewalk reference.

The paper's lopsidedness numbers (`e05`, `e06`) are measured on the
period-accurate treewalk.  The closure backend compiles the same optimized
AST to nested Python closures and uses the lazy name indexes on elements;
this experiment shows how much of the gap was interpreter overhead rather
than the language itself — and that the paper's native-vs-XQuery *ordering*
survives: even compiled, the XQuery path stays well behind the native one.

Methodology: this machine's throughput drifts by 2–3x between processes,
so each comparison interleaves the two backends inside one process and
takes the best of N alternations; the treewalk acts as the in-run control.
Outputs are asserted identical before anything is timed.

The hard gate (kept CI-noise-proof at a generous 1.0x) is that the closure
backend is never *slower* than the treewalk on the e05 scale=4 workload.
"""

import time

from conftest import format_table, record_json, record_result
from repro.docgen import NativeDocumentGenerator, XQueryDocumentGenerator
from repro.querycalc import XQueryCalculusBackend, parse_query_xml, run_query
from repro.workloads import make_it_model, table_template
from repro.xmlio import serialize
from repro.xquery import EngineConfig, XQueryEngine

QUERY = parse_query_xml(
    """
    <query>
      <start type="User"/>
      <follow relation="likes"/>
      <follow relation="uses" target-type="Program"/>
      <collect sort-by="label"/>
    </query>
    """
)

E05_SCALES = [4, 10]
E06_SCALES = [8, 24]
ROUNDS = 5


def _interleaved_best(tasks, rounds=ROUNDS):
    """Best-of-N wall time per task, alternating tasks within each round."""
    best = {name: float("inf") for name in tasks}
    for _ in range(rounds):
        for name, fn in tasks.items():
            started = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - started)
    return best


def _engine(backend):
    return XQueryEngine(EngineConfig(backend=backend))


def test_e13_closure_backend_speedups():
    rows = []
    guard_ratios = {}

    # e05: the docgen table workload, full five-phase generate().
    for scale in E05_SCALES:
        model = make_it_model(scale=scale)
        template = table_template("User", "Program", "uses")
        generators = {
            backend: XQueryDocumentGenerator(model, engine=_engine(backend))
            for backend in ("treewalk", "closures")
        }
        native = NativeDocumentGenerator(model)
        outputs = {
            backend: serialize(generator.generate(template).document)
            for backend, generator in generators.items()
        }
        assert outputs["treewalk"] == outputs["closures"]
        assert outputs["treewalk"] == serialize(native.generate(template).document)

        best = _interleaved_best(
            {
                backend: (lambda g=generator: g.generate(template))
                for backend, generator in generators.items()
            }
        )
        started = time.perf_counter()
        for _ in range(5):
            native.generate(template)
        native_seconds = (time.perf_counter() - started) / 5
        ratio = best["treewalk"] / best["closures"]
        guard_ratios[f"e05/{scale}"] = ratio
        # the paper's ordering: native stays far ahead of both backends.
        assert native_seconds < best["closures"]
        rows.append(
            (
                f"e05 docgen {scale}x{max(2, scale // 2)}",
                f"{best['treewalk'] * 1000:.1f}ms",
                f"{best['closures'] * 1000:.1f}ms",
                f"{ratio:.2f}x",
                f"{native_seconds * 1000:.2f}ms",
                "same",
            )
        )

    # e06: the calculus-to-XQuery query workload.
    for scale in E06_SCALES:
        model = make_it_model(scale=scale)
        backends = {
            backend: XQueryCalculusBackend(model, engine=_engine(backend))
            for backend in ("treewalk", "closures")
        }
        for backend in backends.values():
            backend.export  # build the XML export outside the timed region
        ids = {
            name: [n.id for n in backend.run(QUERY)]
            for name, backend in backends.items()
        }
        native_ids = [n.id for n in run_query(QUERY, model)]
        assert ids["treewalk"] == ids["closures"] == native_ids

        best = _interleaved_best(
            {
                name: (lambda b=backend: b.run(QUERY))
                for name, backend in backends.items()
            }
        )
        started = time.perf_counter()
        for _ in range(50):
            run_query(QUERY, model)
        native_seconds = (time.perf_counter() - started) / 50
        ratio = best["treewalk"] / best["closures"]
        guard_ratios[f"e06/{scale}"] = ratio
        assert native_seconds < best["closures"]
        stats = model.stats()
        rows.append(
            (
                f"e06 query n={stats['nodes']}",
                f"{best['treewalk'] * 1000:.1f}ms",
                f"{best['closures'] * 1000:.1f}ms",
                f"{ratio:.2f}x",
                f"{native_seconds * 1000:.2f}ms",
                "same",
            )
        )

    record_result(
        "e13_closure_backend.txt",
        format_table(
            ["workload", "treewalk", "closures", "speedup", "native", "output"],
            rows,
        ),
    )
    record_json(
        "e13_closure_backend.json",
        {
            "experiment": "e13",
            "rows": [
                {
                    "workload": workload,
                    "treewalk_ms": float(treewalk.rstrip("ms")),
                    "closures_ms": float(closures.rstrip("ms")),
                    "speedup": float(speedup.rstrip("x")),
                    "native_ms": float(native.rstrip("ms")),
                    "output": output,
                }
                for workload, treewalk, closures, speedup, native, output in rows
            ],
        },
    )

    # The CI gate: closures must never regress below the treewalk on the
    # small docgen workload (generous 1.0x so machine noise cannot flake it).
    assert guard_ratios["e05/4"] >= 1.0
    # And every measured workload must at least not regress.
    assert all(ratio >= 1.0 for ratio in guard_ratios.values())
