"""E14 — the static analyzer the 2004 toolchain never had.

Two measurements:

1. **Seeded-defect study.** Inject each paper footgun (XQL001 dead trace,
   XQL002 unchecked error value, XQL003 positional surprise, XQL004
   attribute folding) into every clean host unit of the corpus; the
   analyzer must flag ≥90% of the seeded defects while reporting nothing
   on the clean corpus beyond the committed baseline.
2. **Throughput.** Lines of XQuery analyzed per second over the shipped
   corpus — evidence that the missing tooling was cheap to have.
"""

from __future__ import annotations

import time

from conftest import format_table, record_result

from repro.xquery.analysis import (
    analyze_source,
    corpus_units,
    diff_against_baseline,
    lint_corpus,
)

#: per-rule seeds: a defective declaration prepended to a clean host unit,
#: plus a body snippet exercising it (spliced where the host allows).
SEEDS = {
    "XQL001": (
        "declare function local:seeded-trace($x) {\n"
        '  let $probe := trace("seed: ", $x) return $x\n'
        "};\n"
    ),
    "XQL002": (
        "declare function local:seeded-is-error($v)\n"
        "  { count($v) eq 1 and $v instance of element(error) };\n"
        "declare function local:seeded-fallible($x)\n"
        '  { if (empty($x)) then <error>seeded</error> else $x };\n'
        "declare function local:seeded-use($x)\n"
        "  { <seeded-out>{ local:seeded-fallible($x) }</seeded-out> };\n"
    ),
    "XQL003": (
        "declare function local:seeded-pick($a, $b) {\n"
        "  ($a, $b)[2]\n"
        "};\n"
    ),
    "XQL004": (
        "declare function local:seeded-attr($x) {\n"
        '  <seeded>text{ attribute late { $x } }</seeded>\n'
        "};\n"
    ),
}


def _seedable_units():
    # library-style injection works on any unit whose source starts with
    # declarations or a body; prepend is safe for all corpus units because
    # function declarations are prolog-position anywhere before the body.
    return corpus_units()


def _inject(unit_source: str, seed: str) -> str:
    # place the seeded declarations before the first non-prolog content:
    # prepending keeps prolog order legal (declarations before the body).
    return seed + unit_source


class TestSeededDefects:
    def test_detection_rate_per_rule(self):
        rows = []
        for code, seed in SEEDS.items():
            attempted = detected = 0
            for unit in _seedable_units():
                baseline = {
                    d.key for d in analyze_source(unit.source, source_label=unit.label)
                }
                seeded = analyze_source(
                    _inject(unit.source, seed), source_label=unit.label
                )
                fresh_codes = {d.code for d in seeded if d.key not in baseline}
                attempted += 1
                if code in fresh_codes:
                    detected += 1
            rate = detected / attempted
            rows.append((code, attempted, detected, f"{rate:.0%}"))
            assert rate >= 0.9, f"{code}: {detected}/{attempted} detected"
        table = format_table(
            ("rule", "seeded", "detected", "rate"), rows
        )
        record_result("e14_seeded_defects.txt", table)

    def test_clean_corpus_stays_clean(self):
        fresh, stale = diff_against_baseline(lint_corpus())
        assert fresh == [], [d.render() for d in fresh]
        assert stale == set()


class TestThroughput:
    def test_analyzer_throughput(self):
        units = corpus_units()
        total_lines = sum(unit.source.count("\n") + 1 for unit in units)
        repeats = 3
        started = time.perf_counter()
        findings = 0
        for _ in range(repeats):
            for unit in units:
                findings += len(analyze_source(unit.source, source_label=unit.label))
        elapsed = time.perf_counter() - started
        lines_per_second = total_lines * repeats / elapsed
        table = format_table(
            ("units", "lines", "repeats", "findings/pass", "lines/sec"),
            [(
                len(units),
                total_lines,
                repeats,
                findings // repeats,
                f"{lines_per_second:,.0f}",
            )],
        )
        record_result("e14_throughput.txt", table)
        # generous floor: the analyzer must not be orders of magnitude
        # slower than parsing (it re-parses per call)
        assert lines_per_second > 1000
