"""E15 — the query service: closing E6's "preposterously inefficient" gap.

E6 measures the paper's complaint in its rawest form: every query
re-evaluates generated XQuery over the model export, 341–2646× behind the
native interpreter and growing with model size.  E15 measures the same
queries through the serving layer a 2004 deployment could have built
around the very same engine (compare Apache VXQuery's compiled-plan reuse
and data-scan sharing): compiled-plan cache, incremental export, result
cache keyed by export generation, and batch execution that evaluates each
distinct plan once per batch.

Three claims, each asserted:

* **warm repeat queries land within 10× of native** at the largest E6
  size (n=101) — down from 2646× cold in the seed's E6 table (a result
  cache hit is a dict probe + id re-materialization);
* **cold queries are unchanged engine semantics** — a miss runs exactly
  the code E6 measures (same results as native, quirks preserved);
* **the batch API beats the naive per-query loop ≥ 2× on the q=64
  workload** (64 queries, 16 distinct — UI refresh traffic re-issuing
  the same panels), because each distinct plan is evaluated once over
  one shared export snapshot.  On this single-core box the win is
  dedup + shared caches; the thread pool adds concurrency, not
  parallelism (GIL) — the workers column reports that honestly.

Methodology matches E13: interleave competitors in one process, best-of-N,
outputs asserted identical before anything is timed.
"""

import os
import random
import time

from conftest import format_table, record_json, record_result
from repro.querycalc import (
    QueryService,
    XQueryCalculusBackend,
    parse_query_xml,
    run_query,
)
from repro.workloads import make_it_model
from repro.xquery import EngineConfig, XQueryEngine

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

QUERY = parse_query_xml(
    """
    <query>
      <start type="User"/>
      <follow relation="likes"/>
      <follow relation="uses" target-type="Program"/>
      <collect sort-by="label"/>
    </query>
    """
)

SCALES = [8, 24, 48]  # n = 17, 51, 101 nodes — the E6 matrix
BATCH_SCALE = 24
WARM_ROUNDS = 5
COLD_ROUNDS = 2
BATCH_ROUNDS = 2


def _closures_engine():
    return XQueryEngine(EngineConfig(backend="closures"))


def _batch_workload():
    """64 queries, 16 distinct (each re-issued 4×): one UI refresh."""
    sources = []
    for type_name in ("User", "Superuser", "Program", "Server"):
        sources.append(f'<query><start type="{type_name}"/><collect/></query>')
        sources.append(
            f'<query><start type="{type_name}"/><collect order="descending"/></query>'
        )
        sources.append(
            f'<query><start type="{type_name}"/>'
            '<follow relation="likes"/><collect/></query>'
        )
        sources.append(
            f'<query><start type="{type_name}"/>'
            '<filter-property name="birthYear" op="ge" value="1970"/>'
            "<collect/></query>"
        )
    unique = [parse_query_xml(source) for source in sources]
    queries = unique * 4
    random.Random(7).shuffle(queries)
    return queries


def test_e15_smoke_warm_speedup():
    """CI smoke gate: at the smallest size, a warm repeat must beat the
    cold first run by at least 2× (in practice it is hundreds of ×)."""
    model = make_it_model(scale=SCALES[0])
    service = QueryService(model)
    service._snapshot()  # build the export outside the timed region, as E6 does

    started = time.perf_counter()
    cold_nodes = service.run(QUERY)
    cold = time.perf_counter() - started

    started = time.perf_counter()
    warm_nodes = service.run(QUERY)
    warm = time.perf_counter() - started

    assert [n.id for n in cold_nodes] == [n.id for n in warm_nodes]
    assert [n.id for n in cold_nodes] == [n.id for n in run_query(QUERY, model)]
    assert service.metrics()["hits"] == 1
    assert cold / warm >= 2.0, f"warm speedup collapsed: {cold / warm:.1f}x"


def test_e15_query_service_matrix():
    matrix_rows = []
    json_rows = []

    for scale in SCALES:
        model = make_it_model(scale=scale)
        stats = model.stats()
        native_ids = [n.id for n in run_query(QUERY, model)]

        # native reference: the repo's converged implementation.
        started = time.perf_counter()
        for _ in range(50):
            run_query(QUERY, model)
        native_seconds = (time.perf_counter() - started) / 50

        # cold: best of fresh services (plan compile + closure eval; the
        # export is pre-built, matching E6's methodology).
        cold_seconds = float("inf")
        service = None
        for _ in range(COLD_ROUNDS):
            service = QueryService(model)
            service._snapshot()
            started = time.perf_counter()
            cold_result = service.run(QUERY)
            cold_seconds = min(cold_seconds, time.perf_counter() - started)
            assert [n.id for n in cold_result] == native_ids

        # warm: repeat the same query against the unchanged model.
        warm_seconds = float("inf")
        for _ in range(WARM_ROUNDS):
            started = time.perf_counter()
            warm_result = service.run(QUERY)
            warm_seconds = min(warm_seconds, time.perf_counter() - started)
            assert [n.id for n in warm_result] == native_ids

        cold_ratio = cold_seconds / native_seconds
        warm_ratio = warm_seconds / native_seconds
        matrix_rows.append(
            (
                stats["nodes"],
                stats["relations"],
                f"{native_seconds * 1000:.2f}ms",
                f"{cold_seconds * 1000:.1f}ms",
                f"{warm_seconds * 1000:.3f}ms",
                f"{cold_ratio:.0f}x",
                f"{warm_ratio:.2f}x",
            )
        )
        json_rows.append(
            {
                "nodes": stats["nodes"],
                "relations": stats["relations"],
                "native_ms": native_seconds * 1000,
                "cold_ms": cold_seconds * 1000,
                "warm_ms": warm_seconds * 1000,
                "cold_vs_native": cold_ratio,
                "warm_vs_native": warm_ratio,
            }
        )

    # THE headline assertion: warm repeat queries on the XQuery calculus
    # path sit within 10x of native at n=101 (E6 measured 2646x cold).
    assert json_rows[-1]["nodes"] == 101
    assert json_rows[-1]["warm_vs_native"] <= 10.0

    # -- the q=64 batch workload ---------------------------------------------
    model = make_it_model(scale=BATCH_SCALE)
    queries = _batch_workload()
    expected = [[n.id for n in run_query(query, model)] for query in queries]

    # pre-PR baseline: the naive per-query loop over the calculus-to-XQuery
    # backend (same closures engine the service uses, export pre-built).
    naive_seconds = float("inf")
    batch1_seconds = float("inf")
    batch4_seconds = float("inf")
    for _ in range(BATCH_ROUNDS):
        backend = XQueryCalculusBackend(model, engine=_closures_engine())
        backend.export
        started = time.perf_counter()
        naive_results = [[n.id for n in backend.run(query)] for query in queries]
        naive_seconds = min(naive_seconds, time.perf_counter() - started)
        assert naive_results == expected

        for workers, holder in ((1, "batch1"), (4, "batch4")):
            service = QueryService(model)
            service._snapshot()
            started = time.perf_counter()
            batch_results = [
                [n.id for n in nodes]
                for nodes in service.run_batch(queries, workers=workers)
            ]
            elapsed = time.perf_counter() - started
            assert batch_results == expected
            if holder == "batch1":
                batch1_seconds = min(batch1_seconds, elapsed)
            else:
                batch4_seconds = min(batch4_seconds, elapsed)
        batch_metrics = service.metrics()

    batch_rows = [
        ("naive loop", f"{naive_seconds * 1000:.0f}ms",
         f"{len(queries) / naive_seconds:.1f}", "1.00x"),
        ("run_batch w=1", f"{batch1_seconds * 1000:.0f}ms",
         f"{len(queries) / batch1_seconds:.1f}",
         f"{naive_seconds / batch1_seconds:.2f}x"),
        ("run_batch w=4", f"{batch4_seconds * 1000:.0f}ms",
         f"{len(queries) / batch4_seconds:.1f}",
         f"{naive_seconds / batch4_seconds:.2f}x"),
    ]

    # the q=64 gate: batched execution with 4 workers is >= 2x the naive
    # single-thread loop (each of the 16 distinct plans runs once).
    batch_speedup = naive_seconds / batch4_seconds
    assert batch_speedup >= 2.0, f"batch speedup collapsed: {batch_speedup:.2f}x"

    text = (
        format_table(
            ["nodes", "relations", "native", "cold", "warm", "cold/nat", "warm/nat"],
            matrix_rows,
        )
        + "\n\nq=64 batch workload (16 distinct queries x 4, n="
        + str(make_it_model(scale=BATCH_SCALE).stats()["nodes"])
        + ")\n"
        + format_table(["path", "total", "queries/s", "speedup"], batch_rows)
    )
    record_result("e15_query_service.txt", text)

    payload = {
        "experiment": "e15",
        "matrix": json_rows,
        "batch": {
            "workload": "q=64 (16 distinct x 4)",
            "scale": BATCH_SCALE,
            "naive_ms": naive_seconds * 1000,
            "batch_workers1_ms": batch1_seconds * 1000,
            "batch_workers4_ms": batch4_seconds * 1000,
            "speedup_vs_naive": batch_speedup,
            "service_metrics": {
                key: value
                for key, value in batch_metrics.items()
                if key != "backend"
            },
        },
        "headline": {
            "warm_vs_native_at_n101": json_rows[-1]["warm_vs_native"],
            "cold_vs_native_at_n101": json_rows[-1]["cold_vs_native"],
            "e06_seed_slowdown_at_n101": 2646.0,
            "batch_speedup_q64": batch_speedup,
        },
    }
    record_json("e15_query_service.json", payload)
    record_json("BENCH_e15.json", payload, directory=REPO_ROOT)
