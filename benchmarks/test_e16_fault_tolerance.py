"""E16 — fault tolerance: availability and tail latency under injected faults.

E15 showed the serving layer closes the "preposterously inefficient" gap
when everything goes right.  E16 measures what the robustness layer buys
when things go *wrong*: a seeded :class:`FaultInjector` fails 10% of
evaluations, and we measure **availability** (fraction of queries that
still return a correct answer) and **p50/p95 latency** across three
configurations:

* **baseline** — no faults, for reference latency;
* **degraded** — internal faults restricted to the closures backend at a
  10% rate.  Graceful degradation retries each internal failure once on
  the treewalk reference backend, so availability stays ≥ 99% (in
  practice 100%: every fault is absorbed) at the cost of slower retried
  requests in the tail;
* **isolated** — spec (dynamic) faults at a 10% rate.  These are the
  query's own fault, so no retry can save them — availability sits near
  90% — but every failure is a structured per-query error and every
  sibling completes: availability ≈ 1 − fault rate, never 0.

The model is mutated between rounds so the result cache cannot absorb
the fault rate: every round re-evaluates every plan.

Headline assertions (the CI smoke gate re-asserts the first):

* degraded availability ≥ 99% at a 10% injected fault rate;
* isolated availability ≥ 1 − 2×rate (failures stay proportional — one
  bad query never takes out a batch);
* all returned answers match the native interpreter exactly.
"""

import os
import time

from conftest import format_table, record_json, record_result
from repro.querycalc import (
    FaultConfig,
    FaultInjector,
    QueryService,
    parse_query_xml,
    run_query,
)
from repro.workloads import make_it_model

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SCALE = 24
ROUNDS = 8
FAULT_RATE = 0.10
TIMEOUT = 2.0


def _distinct_queries():
    """16 distinct calculus queries — one UI refresh worth of panels."""
    sources = []
    for type_name in ("User", "Superuser", "Program", "Server"):
        sources.append(f'<query><start type="{type_name}"/><collect/></query>')
        sources.append(
            f'<query><start type="{type_name}"/><collect order="descending"/></query>'
        )
        sources.append(
            f'<query><start type="{type_name}"/>'
            '<follow relation="likes"/><collect/></query>'
        )
        sources.append(
            f'<query><start type="{type_name}"/>'
            '<filter-property name="birthYear" op="ge" value="1970"/>'
            "<collect/></query>"
        )
    return [parse_query_xml(source) for source in sources]


def _run_scenario(config, rounds=ROUNDS):
    """Serve rounds × 16 queries under *config*, mutating between rounds.

    Returns (availability, total, metrics, elapsed_seconds).  Every query
    that succeeds is checked against the native interpreter's answer, so
    availability only counts *correct* answers.
    """
    model = make_it_model(scale=SCALE)
    queries = _distinct_queries()
    expected = [[n.id for n in run_query(query, model)] for query in queries]
    injector = FaultInjector(config) if config is not None else None
    service = QueryService(model, fault_injector=injector)
    service._snapshot()  # build the export outside the measured region

    total = ok = 0
    started = time.perf_counter()
    for round_index in range(rounds):
        if round_index:
            # a point mutation bumps the export generation: the result
            # cache cannot shield this round from the injector.  It
            # touches a property none of these queries select on, so the
            # native expectation stays valid.
            model.nodes_of_type("User")[0].set("firstName", f"mut{round_index}")
        for query, expected_ids in zip(queries, expected):
            total += 1
            try:
                item = service.run(query, timeout=TIMEOUT)
            except Exception:
                continue
            assert [n.id for n in item] == expected_ids
            ok += 1
    elapsed = time.perf_counter() - started
    return ok / total, total, service.metrics(), elapsed


def test_e16_smoke_availability():
    """CI smoke gate: ≥ 99% availability at a 10% injected fault rate,
    thanks to degradation onto the treewalk backend."""
    config = FaultConfig(
        eval_failure_rate=FAULT_RATE, eval_backends={"closures"}, seed=13
    )
    availability, _, metrics, _ = _run_scenario(config, rounds=3)
    assert availability >= 0.99, f"availability collapsed: {availability:.3f}"
    assert metrics["fallbacks"] >= 1  # degradation, not luck, absorbed the faults


def test_e16_fault_tolerance_matrix():
    scenarios = [
        ("baseline", None),
        (
            "degraded",
            FaultConfig(
                eval_failure_rate=FAULT_RATE, eval_backends={"closures"}, seed=13
            ),
        ),
        (
            "isolated",
            FaultConfig(
                eval_failure_rate=FAULT_RATE, eval_failure_kind="dynamic", seed=13
            ),
        ),
    ]

    rows = []
    json_rows = []
    results = {}
    for name, config in scenarios:
        availability, total, metrics, elapsed = _run_scenario(config)
        results[name] = (availability, metrics)
        rows.append(
            (
                name,
                total,
                f"{availability * 100:.1f}%",
                metrics["errors"],
                metrics["fallbacks"],
                f"{metrics['p50_ms']:.2f}ms",
                f"{metrics['p95_ms']:.2f}ms",
            )
        )
        json_rows.append(
            {
                "scenario": name,
                "queries": total,
                "availability": availability,
                "errors": metrics["errors"],
                "timeouts": metrics["timeouts"],
                "fallbacks": metrics["fallbacks"],
                "errors_by_kind": metrics["errors_by_kind"],
                "p50_ms": metrics["p50_ms"],
                "p95_ms": metrics["p95_ms"],
                "elapsed_s": elapsed,
            }
        )

    baseline_availability, _ = results["baseline"]
    degraded_availability, degraded_metrics = results["degraded"]
    isolated_availability, isolated_metrics = results["isolated"]

    # headline gates
    assert baseline_availability == 1.0
    assert degraded_availability >= 0.99, (
        f"degradation failed to hold availability: {degraded_availability:.3f}"
    )
    assert degraded_metrics["fallbacks"] >= 1
    # spec faults cannot be retried away, but they stay proportional:
    # availability ≈ 1 - rate, and never collapses below 1 - 2x rate.
    assert isolated_availability >= 1.0 - 2 * FAULT_RATE
    assert isolated_availability < 1.0  # the injector really fired
    assert isolated_metrics["errors_by_kind"].get("dynamic", 0) >= 1

    text = (
        f"E16 — availability under injected faults "
        f"(rate={FAULT_RATE:.0%}, rounds={ROUNDS}, scale n="
        f"{make_it_model(scale=SCALE).stats()['nodes']})\n\n"
        + format_table(
            ["scenario", "queries", "avail", "errors", "fallbacks", "p50", "p95"],
            rows,
        )
    )
    record_result("e16_fault_tolerance.txt", text)

    payload = {
        "experiment": "e16",
        "fault_rate": FAULT_RATE,
        "rounds": ROUNDS,
        "scale": SCALE,
        "scenarios": json_rows,
        "headline": {
            "degraded_availability": degraded_availability,
            "isolated_availability": isolated_availability,
            "degraded_p95_ms": degraded_metrics["p95_ms"],
            "baseline_p95_ms": results["baseline"][1]["p95_ms"],
        },
    }
    record_json("e16_fault_tolerance.json", payload)
    record_json("BENCH_e16.json", payload, directory=REPO_ROOT)
