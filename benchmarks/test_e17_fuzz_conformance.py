"""E17 — generative differential conformance: fuzz the fleet, shrink, pin.

The parity suites replay programs someone thought to write; E17 measures
what the *generated* conformance campaign covers.  One fixed-seed run

* generates ≥ 500 programs across the three kinds (raw XQuery programs
  for the treewalk/closures pair, metamorphic rewrite pairs, and calculus
  queries for the native / via-XQuery / service fleet),
* reports grammar-production coverage (how much of the subset the
  weighted grammar actually exercised),
* asserts **zero unallowlisted divergences** — the licensed quirks
  (html-property schema drift, advisory-metamodel ill-typed stores) are
  the only disagreements the fleet is allowed to have, and
* demonstrates the shrinker end to end: a trigger expression grafted deep
  into a large generated program is reduced to a ≤ 5-line reproducer by
  the structural delta-debugger.

``BENCH_e17.json`` records the campaign stats; the ``fuzz-smoke`` CI job
re-runs the campaign with ``--check`` so any new divergence fails the
build until it is fixed or licensed.
"""

import os
import random

from conftest import format_table, record_json, record_result
from repro.testing.fuzz import graft_trigger, injected_interesting, run_campaign
from repro.testing.generator import ProgramGenerator
from repro.testing.shrinker import shrink_program

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

FULL_BUDGET = 600
SMOKE_BUDGET = 150
#: grammar productions the fixed-seed campaign must reach.
COVERAGE_FLOOR = 0.90


def _shrinker_demo(seed: int) -> dict:
    """Graft a trigger into a big generated program; shrink it back out."""
    generator = ProgramGenerator(random.Random(seed), max_fuel=18)
    program = graft_trigger(generator.program(), "7 idiv 2")
    original = program.render()
    shrunk = shrink_program(program, injected_interesting()).render()
    assert "idiv" in shrunk
    assert len(shrunk.splitlines()) <= 5, shrunk
    return {
        "original_lines": len(original.splitlines()),
        "original_chars": len(original),
        "shrunk_lines": len(shrunk.splitlines()),
        "shrunk_chars": len(shrunk),
        "shrunk_source": shrunk,
    }


def test_e17_smoke(fuzz_seed):
    """CI smoke gate: a short fixed-seed campaign finds nothing new."""
    stats = run_campaign(fuzz_seed, budget=SMOKE_BUDGET, time_limit=30.0)
    assert stats.programs == SMOKE_BUDGET
    assert not stats.unallowlisted, "\n\n".join(
        divergence.describe() for divergence in stats.unallowlisted
    )


def test_e17_fuzz_conformance(fuzz_seed):
    stats = run_campaign(fuzz_seed, budget=FULL_BUDGET)
    assert stats.programs >= 500
    assert not stats.unallowlisted, "\n\n".join(
        divergence.describe() for divergence in stats.unallowlisted
    )
    assert stats.production_coverage >= COVERAGE_FLOOR, sorted(
        name
        for name in ProgramGenerator.PRODUCTIONS
        if not stats.coverage.get(name)
    )
    demo = _shrinker_demo(fuzz_seed)

    rows = [
        ("programs generated", stats.programs),
        ("  xquery pair", stats.by_kind.get("xquery", 0)),
        ("  metamorphic pairs", stats.by_kind.get("metamorphic", 0)),
        ("  calculus fleet", stats.by_kind.get("calculus", 0)),
        (
            "grammar coverage",
            f"{stats.productions_hit}/{len(ProgramGenerator.PRODUCTIONS)} "
            f"({stats.production_coverage:.0%})",
        ),
        ("divergences", len(stats.divergences)),
        ("  unallowlisted", len(stats.unallowlisted)),
        (
            "shrinker demo",
            f"{demo['original_lines']} lines -> {demo['shrunk_lines']} "
            f"({demo['original_chars']} -> {demo['shrunk_chars']} chars)",
        ),
        ("elapsed", f"{stats.elapsed:.1f}s"),
    ]
    table = format_table(("metric", f"seed={stats.seed}"), rows)
    record_result("e17_fuzz_conformance.txt", table)

    payload = stats.to_json()
    payload["shrinker_demo"] = demo
    record_json("e17_fuzz_conformance.json", payload)
    record_json("BENCH_e17.json", payload, directory=REPO_ROOT)
