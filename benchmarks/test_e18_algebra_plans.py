"""E18 — the algebra backend closes the cold-query gap.

E6 established the paper's "lopsided" baseline: the first (cold) query
through the XQuery surface ran ~2646x slower than the native traversal at
n=101, and the treewalk reference evaluator is quadratic on the join-shaped
workload.  E15's service layer fixed the *warm* path with plan/result
caches, but a cold query — new plan, new model generation — still paid the
nested-loop price.

E18 measures what the cost-based algebra backend (PR 6) does to that cold
path.  The matrix runs the same three-hop workload as E6/E15 at the same
scales, comparing per-backend cold times against the native reference:

* ``treewalk``  — the reference evaluator, nested loops (the E6 story);
* ``closures``  — the compiled evaluator, still tuple-at-a-time;
* ``algebra``   — set-at-a-time hash-join plans over the statistics
  catalog collected at export time (the service default cold path).

THE headline (and the CI gate): algebra cold is within 10x of native at
n=101 — against a treewalk cold measured in the *thousands* of x.

Methodology matches E15: the export snapshot is pre-built outside the
timed region (that is E6's convention), cold is the best of several fresh
services so one scheduler hiccup cannot dominate, native is an average of
50 runs.
"""

import gc
import os
import time

from conftest import format_table, record_json, record_result
from repro.querycalc import QueryService, parse_query_xml, run_query
from repro.workloads import make_it_model
from repro.xquery import EngineConfig, XQueryEngine

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

QUERY = parse_query_xml(
    """
    <query>
      <start type="User"/>
      <follow relation="likes"/>
      <follow relation="uses" target-type="Program"/>
      <collect sort-by="label"/>
    </query>
    """
)

SCALES = [8, 24, 48]  # n = 17, 51, 101 nodes — the E6 matrix
NATIVE_ROUNDS = 50
ALGEBRA_COLD_ROUNDS = 7  # the gated number: generous best-of against noise
CLOSURES_COLD_ROUNDS = 2
TREEWALK_COLD_ROUNDS = 1  # quadratic: one round is seconds at n=101
WARM_ROUNDS = 5


def _cold_service(model, backend: str) -> QueryService:
    """A fresh service on *backend* with the export pre-built (E6's rule:
    snapshot construction is export cost, not query cost)."""
    service = QueryService(
        model, engine=XQueryEngine(EngineConfig(backend=backend))
    )
    service._snapshot()
    return service


def _cold_seconds(model, backend: str, rounds: int, expected_ids) -> float:
    best = float("inf")
    for _ in range(rounds):
        service = _cold_service(model, backend)
        # quiesce the collector so a GC pause triggered by the *previous*
        # backend's garbage is not billed to this one's cold run
        gc.collect()
        started = time.perf_counter()
        result = service.run(QUERY)
        best = min(best, time.perf_counter() - started)
        assert [n.id for n in result] == expected_ids
    return best


def test_e18_smoke_algebra_is_default_and_agrees():
    """CI smoke gate: the service's default engine is the algebra backend,
    it agrees with native, and its cold run beats a treewalk cold run."""
    model = make_it_model(scale=SCALES[0])
    service = QueryService(model)
    assert service.engine.config.backend == "algebra"
    service._snapshot()

    started = time.perf_counter()
    result = service.run(QUERY)
    algebra_cold = time.perf_counter() - started
    assert [n.id for n in result] == [n.id for n in run_query(QUERY, model)]

    explanation = service.explain(QUERY)
    assert "HashJoin" in explanation["text"]

    treewalk = _cold_service(model, "treewalk")
    started = time.perf_counter()
    treewalk.run(QUERY)
    treewalk_cold = time.perf_counter() - started
    assert algebra_cold < treewalk_cold


def test_e18_algebra_plans_matrix():
    matrix_rows = []
    json_rows = []

    for scale in SCALES:
        model = make_it_model(scale=scale)
        stats = model.stats()
        native_ids = [n.id for n in run_query(QUERY, model)]

        # native reference: the repo's converged implementation.
        started = time.perf_counter()
        for _ in range(NATIVE_ROUNDS):
            run_query(QUERY, model)
        native_seconds = (time.perf_counter() - started) / NATIVE_ROUNDS

        treewalk_seconds = _cold_seconds(
            model, "treewalk", TREEWALK_COLD_ROUNDS, native_ids
        )
        closures_seconds = _cold_seconds(
            model, "closures", CLOSURES_COLD_ROUNDS, native_ids
        )
        algebra_seconds = _cold_seconds(
            model, "algebra", ALGEBRA_COLD_ROUNDS, native_ids
        )

        # warm: the same algebra-backed service, result cache hit.
        service = _cold_service(model, "algebra")
        warm_seconds = float("inf")
        for _ in range(WARM_ROUNDS + 1):  # first run populates the caches
            started = time.perf_counter()
            warm_result = service.run(QUERY)
            warm_seconds = min(warm_seconds, time.perf_counter() - started)
            assert [n.id for n in warm_result] == native_ids

        row = {
            "nodes": stats["nodes"],
            "relations": stats["relations"],
            "native_ms": native_seconds * 1000,
            "treewalk_cold_ms": treewalk_seconds * 1000,
            "closures_cold_ms": closures_seconds * 1000,
            "algebra_cold_ms": algebra_seconds * 1000,
            "algebra_warm_ms": warm_seconds * 1000,
            "treewalk_cold_vs_native": treewalk_seconds / native_seconds,
            "closures_cold_vs_native": closures_seconds / native_seconds,
            "algebra_cold_vs_native": algebra_seconds / native_seconds,
        }
        json_rows.append(row)
        matrix_rows.append(
            (
                stats["nodes"],
                f"{native_seconds * 1000:.2f}ms",
                f"{treewalk_seconds * 1000:.0f}ms",
                f"{closures_seconds * 1000:.1f}ms",
                f"{algebra_seconds * 1000:.1f}ms",
                f"{row['treewalk_cold_vs_native']:.0f}x",
                f"{row['closures_cold_vs_native']:.0f}x",
                f"{row['algebra_cold_vs_native']:.1f}x",
            )
        )

    # THE headline assertion (the CI gate): a cold algebra query at n=101
    # is within 10x of the native traversal.  E6's seed measured the same
    # workload at 2646x; the treewalk column above keeps that contrast
    # honest run-over-run.
    headline = json_rows[-1]
    assert headline["nodes"] == 101
    assert headline["algebra_cold_vs_native"] <= 10.0, (
        f"algebra cold regressed: {headline['algebra_cold_vs_native']:.1f}x "
        "native at n=101 (gate: 10x)"
    )
    # the lopsidedness contrast: set-at-a-time plans beat the quadratic
    # reference by orders of magnitude on the same cold query.
    assert headline["treewalk_cold_ms"] > 50 * headline["algebra_cold_ms"]

    # the optimized plan the gate just timed, for the record.
    model = make_it_model(scale=SCALES[-1])
    service = QueryService(model)
    explanation = service.explain(QUERY)

    text = (
        format_table(
            [
                "nodes",
                "native",
                "tw-cold",
                "cl-cold",
                "alg-cold",
                "tw/nat",
                "cl/nat",
                "alg/nat",
            ],
            matrix_rows,
        )
        + "\n\noptimized plan at n=101:\n"
        + str(explanation["text"])
    )
    record_result("e18_algebra_plans.txt", text)

    payload = {
        "experiment": "e18",
        "workload": "User -likes-> * -uses-> Program, sort by label",
        "matrix": json_rows,
        "plan_text": explanation["text"],
        "headline": {
            "cold_vs_native_at_n101": headline["algebra_cold_vs_native"],
            "closures_cold_vs_native_at_n101": headline[
                "closures_cold_vs_native"
            ],
            "treewalk_cold_vs_native_at_n101": headline[
                "treewalk_cold_vs_native"
            ],
            "e06_seed_slowdown_at_n101": 2646.0,
        },
    }
    record_json("e18_algebra_plans.json", payload)
    record_json("BENCH_e18.json", payload, directory=REPO_ROOT)
