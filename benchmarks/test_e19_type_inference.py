"""E19 — schema-aware type & path inference (the typed lint the paper skipped).

Three measurements:

1. **Seeded-defect study.** Each typed rule (XQL010 dead path, XQL011
   statically ill-typed operator, XQL012 vacuous predicate) gets ≥3
   seeded defects injected into clean corpus-style hosts; every seed must
   be detected and the clean shipped corpus must stay at zero typed
   findings (no false positives).
2. **Soundness campaign.** A fixed-seed fuzz run of ≥300 raw XQuery
   programs through the type-soundness oracle: every runtime value the
   reference backend produces must inhabit its inferred static type, with
   zero unallowlisted divergences.
3. **Throughput.** Typed analysis lines/second over the shipped corpus —
   the inference pass must stay in the same cheap-tooling regime E14
   established for the untyped rules.

``BENCH_e19.json`` records all three for cross-PR tracking.
"""

from __future__ import annotations

import os
import time

from conftest import format_table, record_json, record_result

from repro.testing.fuzz import run_campaign
from repro.xquery.analysis import analyze_source, corpus_units

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

TYPED_RULES = ("XQL010", "XQL011", "XQL012")

#: per-rule seeded defects: each is a complete defective body fragment the
#: rule must flag.  Hosts provide the surrounding prolog (the external
#: ``$m`` stands in for the bound export document, exactly how the
#: via-xquery templates address it).
SEEDS = {
    "XQL010": [
        # <node> is never a child of <relation> in the export schema.
        "declare variable $m external;\n$m/awb-model/relation/node",
        # the export root has no <widgets> child.
        "declare variable $m external;\n$m/awb-model/widgets",
        # @source lives on <relation>, never on <node>.
        "declare variable $m external;\n$m/awb-model/node/@source",
        # <relation> elements are siblings of <node>, never children.
        "declare variable $m external;\n$m/awb-model/node/relation",
    ],
    "XQL011": [
        # arithmetic on a string literal can only raise XPTY0004.
        '"three" + 1',
        # value comparison across number/string never succeeds.
        '5 lt "five"',
        # unary minus on a string.
        "-'oops'",
        # boolean into arithmetic.
        "true() * 2",
    ],
    "XQL012": [
        # 'string' is deliberately absent from the @type domain (string
        # properties omit the attribute), so this filter is always false.
        "declare variable $m external;\n"
        '$m/awb-model/node/property[@type eq "string"]',
        # @id is required on every <node>: the existence test is vacuous.
        "declare variable $m external;\n$m/awb-model/node[@id]",
        # <relation> never carries @missing: always false.
        "declare variable $m external;\n$m/awb-model/relation[@missing]",
        # domain membership entirely outside {integer,boolean,float,html}.
        "declare variable $m external;\n"
        '$m/awb-model/node/property[@type = ("str", "text")]',
    ],
}

#: soundness campaign parameters (fixed seed → reproducible numbers).
CAMPAIGN_SEED = 20040522
CAMPAIGN_BUDGET = 600  # ≥300 raw xquery programs at the 60% kind weight


def _typed_codes(source: str):
    return {
        d.code
        for d in analyze_source(source, select=TYPED_RULES)
    }


class TestSeededDefects:
    def test_detection_rate_per_rule(self):
        rows = []
        for code, seeds in SEEDS.items():
            detected = sum(1 for seed in seeds if code in _typed_codes(seed))
            rows.append((code, len(seeds), detected, f"{detected / len(seeds):.0%}"))
            assert detected == len(seeds), (
                f"{code}: only {detected}/{len(seeds)} seeded defects detected"
            )
        record_result(
            "e19_seeded_defects.txt",
            format_table(("rule", "seeded", "detected", "rate"), rows),
        )

    def test_zero_false_positives_on_clean_corpus(self):
        findings = []
        for unit in corpus_units():
            findings.extend(
                d
                for d in analyze_source(
                    unit.source, select=TYPED_RULES, source_label=unit.label
                )
            )
        assert findings == [], [d.render() for d in findings]


class TestSoundnessCampaign:
    def test_no_unallowlisted_type_divergences(self):
        stats = run_campaign(CAMPAIGN_SEED, CAMPAIGN_BUDGET, kinds=("xquery",))
        checked = stats.outcomes.get("type-soundness-checked", 0)
        assert checked >= 300, f"only {checked} programs type-checked"
        type_divergences = [
            d for d in stats.divergences if d.kind == "type-soundness"
        ]
        unallowlisted = [d for d in type_divergences if not d.allowlisted]
        assert unallowlisted == [], "\n\n".join(
            d.describe() for d in unallowlisted
        )
        self._record(stats, checked, type_divergences)

    def _record(self, stats, checked, type_divergences):
        seeded_rows = {
            code: len(seeds) for code, seeds in SEEDS.items()
        }
        units = corpus_units()
        total_lines = sum(unit.source.count("\n") + 1 for unit in units)
        started = time.perf_counter()
        findings = 0
        for unit in units:
            findings += len(analyze_source(unit.source, source_label=unit.label))
        elapsed = time.perf_counter() - started
        payload = {
            "experiment": "e19",
            "seeded_defects": {
                code: {"seeded": count, "detected": count}
                for code, count in seeded_rows.items()
            },
            "false_positives_on_clean_corpus": 0,
            "soundness_campaign": {
                "seed": stats.seed,
                "budget": stats.budget,
                "generator_version": stats.generator_version,
                "programs_type_checked": checked,
                "type_divergences": len(type_divergences),
                "unallowlisted_type_divergences": len(
                    [d for d in type_divergences if not d.allowlisted]
                ),
            },
            "typed_analysis_lines_per_second": round(total_lines / elapsed),
        }
        record_json("e19_type_inference.json", payload)
        record_json("BENCH_e19.json", payload, directory=REPO_ROOT)
        record_result(
            "e19_type_inference.txt",
            format_table(
                ("metric", "value"),
                [
                    ("programs type-checked", checked),
                    ("unallowlisted divergences", 0),
                    ("typed lines/sec", payload["typed_analysis_lines_per_second"]),
                ],
            ),
        )
