"""E20 — the shared-nothing serving tier: process workers vs the thread pool.

E15 closed the warm-path gap with caches; its workers column admitted the
honest limitation: a thread pool on CPython adds concurrency, not
parallelism, so the *cold* mix — distinct queries that all miss the
result cache — gains nothing from threads.  E20 measures the tier built
to attack exactly that residue: a pool of worker **processes**, each
holding a full model replica and owning a shard of the start space,
with scatter/gather merges, single-shard routing proofs, a shared
plan-blob store, and admission control in front.

Three sections, each asserted:

* **cold-mix batch throughput** — a 52-query workload of *distinct*
  plans (zero result-cache hits) through thread w=4 vs process
  w=1/2/4.  On a multi-core box the process tier at w=4 must beat the
  thread pool ≥ 1.5× (real parallelism vs GIL time-slicing).  On a
  single-core container that speedup is physically unavailable — the
  gate is then recorded as unenforced (``gate["enforced"]: false``)
  with ``cpu_count`` in the payload, mirroring E15's honesty about its
  workers column.  Parity is asserted before anything is timed.
* **tail latency under open fire** — the loadgen drives ≥100 closed-loop
  clients at a 4-worker tier for a measured window and reports QPS,
  p50/p95/p99, and shed rate.  Availability must be 1.0: every request
  either succeeds or is *deliberately* shed with a structured
  ``XQDY_OVERLOAD`` — never a crash, never an unclassified error.
* **post-burst parity** — whatever state the burst drove the workers
  into, a parity sweep against a thread-mode twin must come back clean.

Methodology matches E13/E15: competitors interleave in one process,
best-of-N rounds, outputs asserted identical before timing.
"""

import os
import time

from conftest import format_table, record_json, record_result
from repro.querycalc import QueryService
from repro.querycalc.ast import (
    Collect,
    FilterProperty,
    FilterType,
    Follow,
    Query,
    Start,
)
from repro.serving.loadgen import parity_sweep, run_load
from repro.workloads import make_it_model

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SCALE = 24  # n = 51 nodes, the E15 batch scale
ROUNDS = 2
CONFIGS = [("thread", 4), ("process", 1), ("process", 2), ("process", 4)]
LOAD_CLIENTS = 100
LOAD_DURATION = 2.5
PROCESS_SPEEDUP_GATE = 1.5


def _cold_workload():
    """52 distinct queries: every one is a plan-cache and result-cache miss.

    Four start types × twelve pipeline/collect shapes, plus four
    all-nodes starts that force the router to scatter.  No duplicates —
    the thread pool's dedup advantage (E15's batch win) is deliberately
    taken off the table so the comparison isolates execution.
    """
    queries = []
    for type_name in ("User", "Superuser", "Program", "Server"):
        start = Start(type=type_name)
        queries.extend(
            [
                Query(start, [], Collect()),
                Query(start, [], Collect(descending=True)),
                Query(start, [], Collect(sort_by="label")),
                Query(start, [], Collect(sort_by="label", descending=True)),
                Query(start, [Follow("likes")], Collect()),
                Query(start, [Follow("likes")], Collect(sort_by="label")),
                Query(start, [Follow("uses")], Collect()),
                Query(
                    start,
                    [Follow("uses", target_type="Program")],
                    Collect(sort_by="label"),
                ),
                Query(
                    start,
                    [FilterProperty("birthYear", "ge", "1970")],
                    Collect(),
                ),
                Query(
                    start,
                    [FilterProperty("birthYear", "lt", "1970")],
                    Collect(descending=True),
                ),
                Query(start, [FilterType("Server")], Collect()),
                Query(start, [Follow("likes"), Follow("uses")], Collect()),
            ]
        )
    for sort_by, descending in (
        (None, False),
        (None, True),
        ("label", False),
        ("label", True),
    ):
        queries.append(
            Query(
                Start(all_nodes=True),
                [],
                Collect(sort_by=sort_by, descending=descending),
            )
        )
    return queries


def _batch_ids(service, queries, workers):
    items = service.run_batch(queries, workers=workers)
    out = []
    for item in items:
        assert item.ok, f"cold-mix query failed: {item.error}"
        out.append([node.id for node in item])
    return out


def test_e20_smoke_serving_tier():
    """CI smoke gate: a 2-worker tier answers identically to the thread
    service, survives a short burst with availability 1.0, and passes a
    post-burst parity sweep."""
    model = make_it_model(scale=8)
    queries = _cold_workload()[:12]
    reference = QueryService(model)
    expected = _batch_ids(reference, queries, workers=2)
    with QueryService(model, mode="process", workers=2) as service:
        assert _batch_ids(service, queries, workers=2) == expected
        report = run_load(service, clients=8, duration=1.0, mix="mixed", seed=3)
        assert report["availability"] == 1.0, report["errors_by_kind"]
        assert report["ok"] >= 1
        assert parity_sweep(model, service, seed=3, count=8) == 0


def test_e20_serving_tier_matrix():
    model = make_it_model(scale=SCALE)
    stats = model.stats()
    queries = _cold_workload()
    cpu_count = os.cpu_count() or 1

    # parity first: every config must produce byte-identical id lists.
    reference = QueryService(model)
    expected = _batch_ids(reference, queries, workers=4)

    results = {}
    route_mixes = {}
    for mode, workers in CONFIGS:
        best = float("inf")
        for _ in range(ROUNDS):
            service = QueryService(model, mode=mode, workers=workers)
            try:
                service._snapshot()  # exports + boots outside the timed region
                started = time.perf_counter()
                got = _batch_ids(service, queries, workers=4)
                elapsed = time.perf_counter() - started
                assert got == expected, f"{mode} w={workers} diverged"
                best = min(best, elapsed)
                if mode == "process":
                    route_mixes[workers] = dict(service.metrics()["routes"])
            finally:
                service.close()
        results[(mode, workers)] = best

    thread_qps = len(queries) / results[("thread", 4)]
    process_qps = {
        workers: len(queries) / results[("process", workers)]
        for mode, workers in CONFIGS
        if mode == "process"
    }
    speedup_w4 = process_qps[4] / thread_qps

    # the tentpole gate — real parallelism needs real cores.  On a
    # single-core container the process tier pays IPC for no extra CPU,
    # so the gate is recorded but not enforced (cpu_count is in the
    # payload; see docs/serving.md).
    gate_enforced = cpu_count >= 2
    if gate_enforced:
        assert speedup_w4 >= PROCESS_SPEEDUP_GATE, (
            f"process w=4 only {speedup_w4:.2f}x thread w=4 "
            f"on {cpu_count} cores"
        )

    # -- tail latency under load ----------------------------------------------
    with QueryService(model, mode="process", workers=4) as service:
        report = run_load(
            service,
            clients=LOAD_CLIENTS,
            duration=LOAD_DURATION,
            mix="mixed",
            seed=20040522,
        )
        # availability 1.0: ok + deliberate sheds cover every request.
        assert report["requests"] >= LOAD_CLIENTS
        assert report["availability"] == 1.0, report["errors_by_kind"]
        assert report["ok"] >= 1
        mismatches = parity_sweep(model, service, seed=20040522, count=24)
        assert mismatches == 0
        post_metrics = service.metrics()

    matrix_rows = [
        (
            f"{mode} w={workers}",
            f"{results[(mode, workers)] * 1000:.0f}ms",
            f"{len(queries) / results[(mode, workers)]:.1f}",
            f"{(len(queries) / results[(mode, workers)]) / thread_qps:.2f}x",
        )
        for mode, workers in CONFIGS
    ]
    load_rows = [
        ("clients", report["clients"]),
        ("window", f"{report['duration_s']:.1f}s"),
        ("requests", report["requests"]),
        ("ok / shed", f"{report['ok']} / {report['shed']}"),
        ("qps", f"{report['qps']:.1f}"),
        ("p50 / p95 / p99", (
            f"{report['p50_ms']:.1f} / {report['p95_ms']:.1f} / "
            f"{report['p99_ms']:.1f} ms"
        )),
        ("shed rate", f"{report['shed_rate'] * 100:.1f}%"),
        ("availability", f"{report['availability'] * 100:.1f}%"),
    ]
    text = (
        f"cold mix: {len(queries)} distinct queries, n={stats['nodes']}, "
        f"cpu_count={cpu_count}\n"
        + format_table(["config", "total", "qps", "vs thread w=4"], matrix_rows)
        + f"\n\nloadgen burst (mixed, {LOAD_CLIENTS} clients)\n"
        + format_table(["metric", "value"], load_rows)
        + f"\n\nprocess-vs-thread gate (>= {PROCESS_SPEEDUP_GATE}x): "
        + ("ENFORCED" if gate_enforced else
           f"recorded only ({cpu_count} core container)")
    )
    record_result("e20_serving_tier.txt", text)

    payload = {
        "experiment": "e20",
        "cpu_count": cpu_count,
        "workload": {
            "distinct_queries": len(queries),
            "nodes": stats["nodes"],
            "relations": stats["relations"],
        },
        "cold_mix": {
            f"{mode}_w{workers}": {
                "total_ms": results[(mode, workers)] * 1000,
                "qps": len(queries) / results[(mode, workers)],
            }
            for mode, workers in CONFIGS
        },
        "routes_by_workers": route_mixes,
        "gate": {
            "process_w4_vs_thread_w4": speedup_w4,
            "threshold": PROCESS_SPEEDUP_GATE,
            "enforced": gate_enforced,
        },
        "loadgen": {
            key: report[key]
            for key in (
                "clients",
                "duration_s",
                "mix",
                "requests",
                "ok",
                "shed",
                "errors",
                "qps",
                "shed_rate",
                "availability",
                "p50_ms",
                "p95_ms",
                "p99_ms",
            )
        },
        "parity_sweep_mismatches": mismatches,
        "post_burst_service": {
            "shed": post_metrics["shed"],
            "routes": post_metrics["routes"],
            "serving": post_metrics["serving"],
        },
    }
    record_json("e20_serving_tier.json", payload)
    record_json("BENCH_e20.json", payload, directory=REPO_ROOT)
