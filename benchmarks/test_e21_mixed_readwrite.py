"""E21 — the write-path cache cliff: a 95/5 read/write mix, maintained vs orphaned.

E15 and E20 made the warm read path essentially free — and left the
write path on a cliff: any mutation moved the model generation, every
result-cache entry was keyed to the old generation, and the next read of
*every* warm query was a cold re-execution.  A 5% write rate was enough
to throw away most of the cache's value.

This experiment drives the same sequential 95/5 mix through two write
paths over identical models:

* **maintained** — writes go through the update sublanguage
  (:meth:`QueryService.apply_update`): the script's footprint is
  intersected with each entry's dependency set, disjoint entries are
  re-keyed, patchable scans are spliced, only genuinely affected
  entries re-execute.
* **orphaned** (the pre-update-language behavior, still reachable) —
  the *same* scripts are applied directly to the model, bypassing the
  service; the generation moves with no footprint, and every warm
  entry silently ages out.  This is exactly what any raw model write
  used to do to the cache.

The read panel deliberately spans the propagation outcomes: patchable
scans of hot and cold types, an all-nodes scan (member-universal, still
patchable), a follow pipeline, and a property filter.  The write cycle
likewise: disjoint inserts, membership inserts, an unrelated relation,
a property overwrite, and a followed-relation insert.

Gates (enforced in thread AND process modes):

* warm-hit rate of the maintained mix **> 90%** — the cliff is gone;
* every read, in both paths, byte-identical to a cold native
  re-execution of the same query over the live model — maintenance
  never trades correctness for hit rate;
* zero skipped propagations — the service never mistook its own writes
  for foreign mutations.

Methodology matches E15/E20: identical workloads, parity asserted on
every single read before any rate is computed, best-of-1 (the metric is
a hit *rate*, not a timing, so rounds add nothing).
"""

import os
import time

from conftest import format_table, record_json, record_result
from repro.querycalc import QueryService
from repro.querycalc.ast import (
    Collect,
    FilterProperty,
    Follow,
    Query,
    Start,
)
from repro.querycalc.native import run_query
from repro.workloads import make_it_model
from repro.xquery.updates import apply_script

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SCALE = 16
OPS = 400          # total operations per (mode, path) cell
WRITE_EVERY = 20   # 1 write per 20 ops = a 95/5 read/write mix
WARM_HIT_GATE = 0.90


def _panel():
    """Eight reads spanning keep/patch/invalidate territory."""
    return [
        Query(Start(type="User"), [], Collect()),
        Query(Start(type="Person"), [], Collect(descending=True)),
        Query(Start(type="Server"), [], Collect()),
        Query(Start(type="Document"), [], Collect()),
        Query(Start(type="Program"), [], Collect()),
        Query(Start(all_nodes=True), [], Collect()),
        Query(Start(type="Person"), [Follow("likes")], Collect()),
        Query(
            Start(type="User"),
            [FilterProperty("birthYear", "ge", "1970")],
            Collect(),
        ),
    ]


def _write_script(model, step):
    """The ``step``-th write of the deterministic 5-script cycle."""
    kind = step % 5
    if kind == 0:
        # disjoint from every panel member type except the all-nodes scan
        # (which is patchable): keep / patch territory.
        return f'insert node Document with (label "e21-doc-{step:03d}")'
    if kind == 1:
        # membership change on the hottest scans: patch territory; also
        # invalidates the birthYear filter (correctly — not patchable).
        return (
            f'insert node User with (label "e21-user-{step:03d}", '
            f"birthYear {1950 + step % 50})"
        )
    if kind == 2:
        # a relation no panel query follows: pure keep.
        sbd = model.nodes_of_type("SystemBeingDesigned")[0]
        doc = model.nodes_of_type("Document")[-1]
        return f"insert relation has from {sbd.id} to {doc.id}"
    if kind == 3:
        # a property overwrite panel readers sort by: invalidate territory
        # (the Server scan and the all-nodes scan re-execute once).
        server = model.nodes_of_type("Server")[0]
        return f'replace value of {server.id}.label with "srv-{step:03d}"'
    # a followed relation: invalidates the follow pipeline only.
    users = model.nodes_of_type("User")
    return f"insert relation likes from {users[step % len(users)].id} to {users[0].id}"


def _run_mix(service, model, ops, maintained):
    """Drive the sequential 95/5 mix; every read is parity-checked
    against a cold native re-execution of the same query.  Returns
    (reads, warm_hits, writes)."""
    panel = _panel()
    for query in panel:  # prime: the cold first pass is not the metric
        service.run(query)
    reads = hits = writes = 0
    read_index = 0
    for op in range(ops):
        if op % WRITE_EVERY == WRITE_EVERY - 1:
            script = _write_script(model, writes)
            if maintained:
                summary = service.apply_update(script)
                assert summary["propagation"]["skipped"] == 0
            else:
                apply_script(script, model)  # the old cliff: no footprint
            writes += 1
        else:
            query = panel[read_index % len(panel)]
            read_index += 1
            item = service.run(query)
            got = [node.id for node in item]
            expected = [node.id for node in run_query(query, model)]
            assert got == expected, f"read diverged from cold native: {query}"
            reads += 1
            hits += bool(item.served_from_cache)
    return reads, hits, writes


def _cell(mode, workers, maintained, ops=OPS, scale=SCALE):
    model = make_it_model(scale=scale)
    kwargs = {"mode": mode, "workers": workers} if mode == "process" else {}
    with QueryService(model, **kwargs) as service:
        started = time.perf_counter()
        reads, hits, writes = _run_mix(service, model, ops, maintained)
        elapsed = time.perf_counter() - started
        metrics = service.metrics()
        return {
            "reads": reads,
            "warm_hits": hits,
            "writes": writes,
            "warm_hit_rate": hits / reads,
            "elapsed_s": elapsed,
            "propagations": dict(metrics["propagations"]),
            "updates": metrics["updates"],
            "serving_deltas": (
                metrics["serving"]["deltas"] if mode == "process" else None
            ),
            "export": service.cache_stats()["export"],
        }


def test_e21_smoke_mixed_readwrite():
    """CI smoke gate: a short maintained mix clears the warm-hit gate in
    both modes with every read byte-identical to cold native."""
    for mode, workers in (("thread", None), ("process", 2)):
        cell = _cell(mode, workers, maintained=True, ops=160, scale=8)
        assert cell["warm_hit_rate"] > WARM_HIT_GATE, (mode, cell)
        assert cell["propagations"]["kept"] + cell["propagations"]["patched"] > 0


def test_e21_mixed_readwrite():
    cells = {}
    for mode, workers in (("thread", None), ("process", 2)):
        for maintained in (True, False):
            key = f"{mode}_{'maintained' if maintained else 'orphaned'}"
            cells[key] = _cell(mode, workers, maintained)

    # the tentpole gate: with maintenance the 95/5 mix stays warm.
    for mode in ("thread", "process"):
        maintained = cells[f"{mode}_maintained"]
        assert maintained["warm_hit_rate"] > WARM_HIT_GATE, (mode, maintained)
        # and the contrast is real: the orphaned path is the cliff.
        orphaned = cells[f"{mode}_orphaned"]
        assert maintained["warm_hit_rate"] > orphaned["warm_hit_rate"]

    rows = [
        (
            key,
            f"{cell['reads']}/{cell['writes']}",
            f"{cell['warm_hit_rate'] * 100:.1f}%",
            cell["propagations"]["kept"],
            cell["propagations"]["patched"],
            cell["propagations"]["invalidated"],
            f"{cell['elapsed_s']:.2f}s",
        )
        for key, cell in cells.items()
    ]
    thread = cells["thread_maintained"]
    text = (
        f"sequential 95/5 mix: {OPS} ops per cell, scale={SCALE}, "
        f"gate: warm-hit > {WARM_HIT_GATE * 100:.0f}%\n"
        + format_table(
            ["cell", "reads/writes", "warm-hit", "kept", "patched", "inval", "wall"],
            rows,
        )
        + "\n\nevery read parity-checked against cold native re-execution\n"
        + (
            f"statistics maintenance (thread): "
            f"{thread['export']['stats_deltas']} deltas, "
            f"{thread['export']['stats_rebuilds']} rebuilds"
        )
    )
    record_result("e21_mixed_readwrite.txt", text)

    payload = {
        "experiment": "e21",
        "workload": {
            "ops_per_cell": OPS,
            "write_every": WRITE_EVERY,
            "scale": SCALE,
            "panel_queries": len(_panel()),
        },
        "gate": {
            "warm_hit_rate_threshold": WARM_HIT_GATE,
            "enforced": True,
        },
        "cells": cells,
    }
    record_json("e21_mixed_readwrite.json", payload)
    record_json("BENCH_e21.json", payload, directory=REPO_ROOT)
