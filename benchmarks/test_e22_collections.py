"""E22 — the document-collection workload: indexed search vs brute scan.

The tentpole claim: over a ≥1,000-document collection, the positional
inverted index answers ``ft:search`` at least **10×** faster than the
unindexed document scan — while every single result stays byte-identical
to the brute-force path (the oracle's currency), and a 95/5 read/write
mix keeps its warm-hit rate above 90% because the result cache keys on
*collection generations*: a write under ``hot/`` cold-starts exactly the
``hot/`` answers and leaves every other collection's entries warm.

Gates:

* **speed** — median indexed query time × 10 ≤ median brute query time
  over the same phrase panel (full run; the CI smoke variant gates 3×
  on a smaller corpus to stay timing-robust on shared runners);
* **byte-identity** — every timed query and every mix read compared
  against an index-off evaluation of the same request;
* **warm mix** — warm-hit rate > 90% under 1 write per 20 operations.

Writes go through the service (incremental index maintenance), never a
rebuild: the store's ``maintenance_ops`` counter is asserted to move by
O(1) per write.
"""

import os
import random
import statistics
import time

from conftest import format_table, record_json, record_result
from repro.collections import DocumentStore, SearchRequest, SearchService
from repro.testing.models import FT_WORDS

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOCS = 1200
MIX_OPS = 400
WRITE_EVERY = 20   # 1 write per 20 ops = the 95/5 mix
WARM_HIT_GATE = 0.90
SPEEDUP_GATE = 10.0
SMOKE_SPEEDUP_GATE = 3.0

#: extra vocabulary so phrases span the selectivity range: "rare-*"
#: tokens hit a handful of documents, FT_WORDS hit many.
RARE_WORDS = [f"rare{i}" for i in range(40)]


def build_store(docs=DOCS, seed=22):
    rng = random.Random(seed)
    store = DocumentStore()
    for index in range(docs):
        prefix = ("docs/", "notes/", "wiki/")[index % 3]
        words = [rng.choice(FT_WORDS) for _ in range(rng.randrange(12, 30))]
        if rng.random() < 0.1:
            words.insert(rng.randrange(len(words)), rng.choice(RARE_WORDS))
        store.put_text(f"{prefix}d{index:05d}.xml", f"<doc>{' '.join(words)}</doc>")
    return store


def phrase_panel(rng):
    panel = [rng.choice(RARE_WORDS) for _ in range(4)]
    panel += [f"{rng.choice(FT_WORDS)} {rng.choice(FT_WORDS)}" for _ in range(4)]
    return panel


def _timed(store, collection, phrase, use_index, repeats=3):
    """Median seconds for one search; result returned for parity checks."""
    was = store.use_index
    store.use_index = use_index
    try:
        times = []
        for _ in range(repeats):
            started = time.perf_counter()
            result = store.search(collection, phrase)
            times.append(time.perf_counter() - started)
        return statistics.median(times), result
    finally:
        store.use_index = was


def run_speed_cell(docs, seed=22):
    store = build_store(docs=docs, seed=seed)
    rng = random.Random(seed)
    indexed_times, brute_times = [], []
    for phrase in phrase_panel(rng):
        for collection in ("", "docs/"):
            indexed_t, indexed_r = _timed(store, collection, phrase, True)
            brute_t, brute_r = _timed(store, collection, phrase, False)
            # byte-identity: same hits, same scores, same order.
            assert indexed_r == brute_r, (collection, phrase)
            indexed_times.append(indexed_t)
            brute_times.append(brute_t)
    return {
        "docs": docs,
        "queries": len(indexed_times),
        "indexed_median_us": statistics.median(indexed_times) * 1e6,
        "brute_median_us": statistics.median(brute_times) * 1e6,
        "speedup": statistics.median(brute_times) / statistics.median(indexed_times),
    }


def run_mix_cell(docs, ops=MIX_OPS, seed=22, shards=2, parity_every=1):
    """The 95/5 read/write mix through the service; returns the cell dict.

    Writes land under ``hot/`` only; the read panel spans the stable
    collections plus one hot entry, so the generation-keyed cache keeps
    everything but the written collection warm.
    """
    store = build_store(docs=docs, seed=seed)
    store.put_text("hot/seed.xml", "<doc>alpha beta hot seed</doc>")
    rng = random.Random(seed + 1)
    panel = [
        SearchRequest(kind="search", collection="docs/", phrase="alpha beta"),
        SearchRequest(kind="search", collection="notes/", phrase="gamma"),
        SearchRequest(kind="search", collection="wiki/", phrase="京都"),
        SearchRequest(kind="kwic", collection="docs/", phrase="kappa", width=20),
        SearchRequest(kind="doc", uri="docs/d00000.xml"),
        SearchRequest(kind="collection", collection="hot/"),
        SearchRequest(kind="search", collection="notes/", phrase="delta omega"),
        SearchRequest(kind="search", collection="wiki/", phrase=RARE_WORDS[0]),
    ]
    with SearchService(store, shards=shards, mode="thread") as service:
        for request in panel:  # prime: the cold first pass is not the metric
            service.run(request)
        reads = hits = writes = 0
        read_index = 0
        for op in range(ops):
            if op % WRITE_EVERY == WRITE_EVERY - 1:
                ops_before = store.index.maintenance_ops
                words = " ".join(rng.choice(FT_WORDS) for _ in range(8))
                service.put_text(f"hot/w{writes % 6}.xml", f"<doc>{words}</doc>")
                # incremental maintenance: O(1) documents per write
                # (authoritative store + at most one thread replica).
                assert store.index.maintenance_ops - ops_before <= 2
                writes += 1
            else:
                request = panel[read_index % len(panel)]
                read_index += 1
                result = service.run(request)
                if reads % parity_every == 0:
                    fresh = service.evaluate_fresh(request, use_index=False)
                    assert result.text == fresh, request.key()
                reads += 1
                hits += bool(result.cached)
        return {
            "docs": docs,
            "reads": reads,
            "writes": writes,
            "warm_hits": hits,
            "warm_hit_rate": hits / reads,
            "metrics": dict(service.metrics),
            "index_stats": store.index.stats(),
        }


def test_e22_smoke_collections():
    """CI smoke gate: a smaller corpus clears a conservative 3× speed
    gate with byte-identity, and the short mix stays >90% warm."""
    speed = run_speed_cell(docs=300)
    assert speed["speedup"] >= SMOKE_SPEEDUP_GATE, speed
    mix = run_mix_cell(docs=300, ops=160)
    assert mix["warm_hit_rate"] > WARM_HIT_GATE, mix


def test_e22_collections():
    speed = run_speed_cell(docs=DOCS)
    assert speed["docs"] >= 1000
    assert speed["speedup"] >= SPEEDUP_GATE, speed

    mix = run_mix_cell(docs=DOCS)
    assert mix["warm_hit_rate"] > WARM_HIT_GATE, mix

    rows = [
        (
            "speed",
            speed["docs"],
            f"{speed['indexed_median_us']:.0f}us",
            f"{speed['brute_median_us']:.0f}us",
            f"{speed['speedup']:.1f}x",
            "-",
        ),
        (
            "95/5 mix",
            mix["docs"],
            f"{mix['reads']} reads",
            f"{mix['writes']} writes",
            "-",
            f"{mix['warm_hit_rate'] * 100:.1f}%",
        ),
    ]
    text = (
        f"E22: {DOCS} documents; gates: indexed >= {SPEEDUP_GATE:.0f}x brute, "
        f"warm-hit > {WARM_HIT_GATE * 100:.0f}%, every answer byte-identical "
        "to index-off evaluation\n"
        + format_table(
            ["cell", "docs", "indexed", "brute", "speedup", "warm-hit"], rows
        )
    )
    record_result("e22_collections.txt", text)

    payload = {
        "experiment": "e22",
        "workload": {
            "docs": DOCS,
            "mix_ops": MIX_OPS,
            "write_every": WRITE_EVERY,
        },
        "gate": {
            "speedup_threshold": SPEEDUP_GATE,
            "warm_hit_rate_threshold": WARM_HIT_GATE,
            "byte_identity": "every timed query and every mix read",
            "enforced": True,
        },
        "speed": speed,
        "mix": mix,
    }
    record_json("e22_collections.json", payload)
    record_json("BENCH_e22.json", payload, directory=REPO_ROOT)
