"""Repo-wide pytest configuration: the centralized fuzz seed.

Every seeded-randomness consumer in the test and benchmark suites draws
its seed from ``--fuzz-seed`` so runs are reproducible by default and
explorable on demand::

    PYTHONPATH=src python -m pytest tests/test_fuzz_regressions.py --fuzz-seed 7

The default is the fixed CI seed, so plain runs always exercise the same
campaign the ``fuzz-smoke`` job gates on.
"""

import pytest

#: the fixed seed CI uses (also the CLI default of ``repro.testing.fuzz``).
DEFAULT_FUZZ_SEED = 20040522


def pytest_addoption(parser):
    parser.addoption(
        "--fuzz-seed",
        type=int,
        default=DEFAULT_FUZZ_SEED,
        help="seed for generative/differential tests (default: the CI seed)",
    )


@pytest.fixture
def fuzz_seed(request):
    return request.config.getoption("--fuzz-seed")
