#!/usr/bin/env python3
"""The original motivation: exercising the data-interchange format.

"We wanted AWB to have some decent abilities for data interchange with
other tools...  The best way to tell whether our data interchange format
was at all usable was to use it for something."

This example plays the role of "System X, the hot new
something-configuration tool of 2007": a completely external consumer that
only ever sees AWB's exported XML.  It

1. builds a model and exports it to text (all that crosses the boundary);
2. re-imports it in a "different process" (a fresh metamodel instance);
3. interrogates the export directly with raw XQuery — no AWB code at all;
4. generates a document from the re-imported model and checks it matches
   one generated from the original.

Run:  python examples/data_interchange.py
"""

from repro.awb import export_model_text, import_model_text, load_metamodel
from repro.docgen import NativeDocumentGenerator
from repro.workloads import make_it_model, simple_list_template
from repro.xmlio import parse_document, serialize
from repro.xquery import XQueryEngine


def main() -> None:
    # 1. the producing side.
    model = make_it_model(scale=6)
    wire_format = export_model_text(model)
    print(f"export: {len(wire_format)} bytes of XML")

    # 2. the consuming side: nothing shared but the text.
    fresh_metamodel = load_metamodel("it-architecture")
    imported = import_model_text(wire_format, fresh_metamodel)
    assert imported.stats()["nodes"] == model.stats()["nodes"]
    assert imported.stats()["relations"] == model.stats()["relations"]
    print(f"re-imported: {imported.stats()}")

    # 3. a third-party tool that only speaks XML + XQuery.
    engine = XQueryEngine()
    document = parse_document(wire_format)
    report = engine.evaluate_to_string(
        """
        for $n in /awb-model/node[@type = ("User", "Superuser")]
        order by string($n/property[@name eq "label"])
        return <user id="{string($n/@id)}">{
          string($n/property[@name eq "label"])
        }</user>
        """,
        context_item=document,
    )
    print("\nexternal tool's view of the users:")
    print(report)

    # 4. document generation agrees across the interchange boundary.
    template = simple_list_template("User")
    original_doc = NativeDocumentGenerator(model).generate(template).document
    imported_doc = NativeDocumentGenerator(imported).generate(template).document
    match = serialize(original_doc) == serialize(imported_doc)
    print(f"\ndocuments from original vs re-imported model match: {match}")
    assert match


if __name__ == "__main__":
    main()
