#!/usr/bin/env python3
"""The paper's debugging story, replayed on this engine.

Act 1 — error() bisection: before trace existed, the only tool was
"strategically-placed error calls [for] a binary search to locate the
source of the program error".  Each probe costs a full run.

Act 2 — trace() arrives... and the optimizer eats it: "Simply adding the
trace introduces a dead variable $dummy, which the Galax compiler
helpfully optimizes away — along with the call to trace."

Act 3 — the workarounds: insinuate the trace into live code, or fix the
optimizer (trace_is_dead_code=False, "the next version").

Run:  python examples/debugging_story.py
"""

from repro.xquery import EngineConfig, XQueryEngine
from repro.xquery.debug import ErrorBisector, make_probe_runner, run_with_trace

TOTAL_STEPS = 24
BUG_AT = 17  # step 17 divides by zero


def program_with_probe(probe_at: int) -> str:
    """An N-step pipeline; step BUG_AT fails; probe inserted before a step."""
    lines = ["let $x0 := 1"]
    for step in range(1, TOTAL_STEPS + 1):
        if step == probe_at:
            lines.append(f'let $probe{step} := error("probe")')
        if step == BUG_AT:
            lines.append(f"let $x{step} := $x{step - 1} idiv 0")
        else:
            lines.append(f"let $x{step} := $x{step - 1} + 1")
    lines.append(f"return $x{TOTAL_STEPS}")
    return "\n".join(lines)


def act_one() -> None:
    print("== Act 1: binary search by error() ==")
    # the optimizer must not delete the probe's let (error is impure).
    engine = XQueryEngine(EngineConfig(optimize=True))
    runner = make_probe_runner(engine, program_with_probe)
    result = ErrorBisector(TOTAL_STEPS, runner).locate()
    print(f"program has {TOTAL_STEPS} steps; the bug is at step {BUG_AT}")
    print(f"bisection found step {result.failing_step} in {result.runs} full runs")
    print(f"probes tried: {result.probes_tried}")


TRACED_PROGRAM = """
let $x := 6 * 7
let $dummy := trace("x=", $x)
let $y := $x idiv 0
return $y
"""


def act_two_and_three() -> None:
    print("\n== Act 2: the optimizer eats the trace ==")
    buggy = XQueryEngine(EngineConfig(optimize=True, trace_is_dead_code=True))
    run = run_with_trace(buggy, TRACED_PROGRAM)
    print(f"program crashed with: {run.error}")
    print(f"traces seen: {run.messages!r}  <- the probe vanished!")

    print("\n== Act 3a: insinuate the trace into non-dead code ==")
    insinuated = TRACED_PROGRAM.replace(
        'let $x := 6 * 7\nlet $dummy := trace("x=", $x)',
        'let $x := trace("x=", 6 * 7)',
    )
    run = run_with_trace(buggy, insinuated)
    print(f"traces seen: {run.messages!r}  (crash still: {run.error is not None})")

    print("\n== Act 3b: 'the optimizer would be fixed in the next version' ==")
    fixed = XQueryEngine(EngineConfig(optimize=True, trace_is_dead_code=False))
    run = run_with_trace(fixed, TRACED_PROGRAM)
    print(f"traces seen: {run.messages!r}")


def main() -> None:
    act_one()
    act_two_and_three()


if __name__ == "__main__":
    main()
