#!/usr/bin/env python3
"""The antique-glass-dealer retarget.

"AWB has retargeted to be a workbench for (1) an antique glass dealer" —
same machinery, entirely different metamodel: glass pieces, makers,
styles, customers; the advisory about SystemBeingDesigned simply does not
exist here, so no warning appears.

Run:  python examples/glass_catalog.py
"""

from repro.awb import all_omissions
from repro.docgen import NativeDocumentGenerator
from repro.querycalc import parse_query_xml, run_query
from repro.workloads import glass_catalog_template, make_glass_catalog
from repro.xmlio import serialize


def main() -> None:
    model = make_glass_catalog(pieces=12)
    print(f"catalogue model: {model.stats()}")

    print("\n== omissions (unpriced pieces, etc.) ==")
    for omission in all_omissions(model):
        print(" -", omission)

    print("\n== which pieces are customers interested in? ==")
    query = parse_query_xml(
        """
        <query>
          <start type="Customer"/>
          <follow relation="interestedIn"/>
          <filter-property name="priceDollars" op="le" value="2000"/>
          <collect sort-by="label"/>
        </query>
        """
    )
    for node in run_query(query, model):
        price = node.get("priceDollars", "?")
        print(f" - {node.label}: ${price}")

    print("\n== the catalogue document ==")
    result = NativeDocumentGenerator(model).generate(glass_catalog_template())
    print(serialize(result.document, indent=False)[:1200], "...")
    print("\nproblems:", [str(problem) for problem in result.problems] or "none")


if __name__ == "__main__":
    main()
