#!/usr/bin/env python3
"""The flagship workload: a System Context document for an IT architecture.

Builds a synthetic engagement model (one SystemBeingDesigned, users,
programs, servers, documents — some deliberately missing their version
information), then generates the System Context document with BOTH
implementations and compares them: output equivalence, problems reported,
the omissions machinery, and wall-clock time.

Run:  python examples/it_architecture_docgen.py [scale]
"""

import sys
import time

from repro.awb import all_omissions
from repro.docgen import NativeDocumentGenerator, XQueryDocumentGenerator
from repro.workloads import make_it_model, system_context_template
from repro.xmlio import serialize


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    model = make_it_model(scale=scale)
    print(f"model: {model.stats()}")

    print("\n== model-level omissions (the Omissions window) ==")
    for omission in all_omissions(model):
        print(" -", omission)

    template = system_context_template()

    started = time.perf_counter()
    native = NativeDocumentGenerator(model).generate(template)
    native_seconds = time.perf_counter() - started

    started = time.perf_counter()
    functional = XQueryDocumentGenerator(model).generate(template)
    xquery_seconds = time.perf_counter() - started

    print("\n== document (native implementation) ==")
    print(serialize(native.document, indent=False)[:800], "...")

    print("\n== generation problems ==")
    print("native :", [str(problem) for problem in native.problems] or "none")
    print("xquery :", [str(problem) for problem in functional.problems] or "none")

    print("\n== comparison ==")
    print(f"table of contents  : {[entry.text for entry in native.toc]}")
    same_visited = sorted(native.visited_node_ids) == sorted(
        functional.visited_node_ids
    )
    print(f"visited sets agree : {same_visited}")
    print(f"native time        : {native_seconds * 1000:8.1f} ms (2 phases)")
    print(
        f"xquery time        : {xquery_seconds * 1000:8.1f} ms "
        f"({functional.metrics['phases']} phases, "
        f"{functional.metrics['bytes_copied_total']} bytes re-serialized)"
    )
    print(f"slowdown           : {xquery_seconds / max(native_seconds, 1e-9):8.1f}x")


if __name__ == "__main__":
    main()
