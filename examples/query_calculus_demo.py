#!/usr/bin/env python3
"""One query language, two interpreters — and why the team kept one.

"It would, of course, be insane to have two implementations of the same
query language, an XQuery one for document generation and a Java one for
the UI.  Calling XQuery from Java to evaluate queries was preposterously
inefficient."

This demo runs the same calculus queries through both backends, checks
they agree, and times them the way the UI would experience them (many
small queries against one model).

Run:  python examples/query_calculus_demo.py [scale] [queries]
"""

import sys
import time

from repro.querycalc import XQueryCalculusBackend, parse_query_xml, run_query
from repro.workloads import make_it_model

QUERIES = [
    # the paper's example: follow R1, then R2 restricted to programs.
    """<query>
         <start type="User"/>
         <follow relation="likes"/>
         <follow relation="uses" target-type="Program"/>
         <collect sort-by="label"/>
       </query>""",
    """<query>
         <start type="SystemBeingDesigned"/>
         <follow relation="has"/>
         <filter-type type="Person"/>
         <collect sort-by="label"/>
       </query>""",
    """<query>
         <start type="User"/>
         <filter-property name="birthYear" op="lt" value="1970"/>
         <collect sort-by="label" order="descending"/>
       </query>""",
]


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    rounds = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    model = make_it_model(scale=scale)
    print(f"model: {model.stats()}; running {len(QUERIES)} queries x {rounds} rounds")

    parsed = [parse_query_xml(source) for source in QUERIES]
    backend = XQueryCalculusBackend(model)

    for index, query in enumerate(parsed, start=1):
        native = [node.id for node in run_query(query, model)]
        via = [node.id for node in backend.run(query)]
        agreement = "agree" if native == via else "DISAGREE"
        print(f"query {index}: {len(native)} results, backends {agreement}")

    started = time.perf_counter()
    for _ in range(rounds):
        for query in parsed:
            run_query(query, model)
    native_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(rounds):
        for query in parsed:
            backend.run(query)
    xquery_seconds = time.perf_counter() - started

    total = rounds * len(QUERIES)
    print(f"\nnative backend : {native_seconds / total * 1000:8.2f} ms/query")
    print(f"xquery backend : {xquery_seconds / total * 1000:8.2f} ms/query")
    print(f"slowdown       : {xquery_seconds / max(native_seconds, 1e-9):8.0f}x")
    print("\n(the paper: 'preposterously inefficient, and would have made")
    print(" the workbench unusably slow')")


if __name__ == "__main__":
    main()
