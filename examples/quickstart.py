#!/usr/bin/env python3
"""Quickstart: the public API in five minutes.

1. Run XQuery with the embedded engine (including the paper's quirks).
2. Build an AWB model and export it as XML.
3. Ask a calculus query both ways (native graph vs compiled-to-XQuery).
4. Generate a document with both generator implementations.

Run:  python examples/quickstart.py
"""

from repro.awb import Model, export_model_text, load_metamodel
from repro.docgen import NativeDocumentGenerator, XQueryDocumentGenerator
from repro.querycalc import XQueryCalculusBackend, parse_query_xml, run_query
from repro.xmlio import serialize
from repro.xquery import XQueryEngine


def demo_xquery() -> None:
    print("== 1. XQuery engine ==")
    engine = XQueryEngine()
    print("squares:", engine.evaluate_to_string("for $i in 1 to 5 return $i * $i"))
    # the existential '=' the paper warns about:
    print("1 = (1,2,3)  ->", engine.evaluate_to_string("1 = (1,2,3)"))
    print("(1,2) != (1,2) ->", engine.evaluate_to_string("(1,2) != (1,2)"))
    # sequence flattening washes structure out:
    print("flattening:", engine.evaluate_to_string("(1,(2,3),(),(4,(5)))"))
    # attribute folding:
    print(
        "attribute folding:",
        engine.evaluate_to_string(
            "let $x := attribute troubles {1} return <el> {$x} </el>"
        ),
    )


def build_model() -> Model:
    print("\n== 2. An AWB model ==")
    model = Model(load_metamodel("it-architecture"), name="quickstart")
    system = model.create_node("SystemBeingDesigned", label="Payroll")
    alice = model.create_node("User", label="Alice", firstName="Alice")
    bob = model.create_node("Superuser", label="Bob")
    ledger = model.create_node("Program", label="LedgerD", version="2.1")
    model.connect(system, "has", alice)
    model.connect(system, "has", bob)
    model.connect(system, "runs", ledger)
    model.connect(alice, "favors", bob)
    model.connect(bob, "uses", ledger)  # advisory violation, allowed
    print(export_model_text(model)[:400], "...")
    return model


def demo_calculus(model: Model) -> None:
    print("\n== 3. The query calculus, twice ==")
    query = parse_query_xml(
        """
        <query>
          <start type="User"/>
          <follow relation="uses" target-type="Program"/>
          <collect sort-by="label"/>
        </query>
        """
    )
    print("native  :", [node.label for node in run_query(query, model)])
    backend = XQueryCalculusBackend(model)
    print("xquery  :", [node.label for node in backend.run(query)])
    print("compiled to:\n", backend.compile_to_xquery(query)[:200], "...")


def demo_docgen(model: Model) -> None:
    print("\n== 4. Document generation, twice ==")
    template = """<html>
    <section><heading>Users of <for nodes="all.SystemBeingDesigned"><label/></for></heading>
      <ul>
        <for nodes="all.User" sort="label">
          <li><if><test><focus-is-type type="Superuser"/></test>
               <then><b><label/></b></then><else><label/></else></if></li>
        </for>
      </ul>
    </section>
    </html>"""
    native = NativeDocumentGenerator(model).generate(template)
    functional = XQueryDocumentGenerator(model).generate(template)
    print("native   :", serialize(native.document)[:200], "...")
    print("xquery   :", serialize(functional.document)[:200], "...")
    print("metrics  :", functional.metrics["bytes_per_phase"])


def main() -> None:
    demo_xquery()
    model = build_model()
    demo_calculus(model)
    demo_docgen(model)


if __name__ == "__main__":
    main()
