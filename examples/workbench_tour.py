#!/usr/bin/env python3
"""A tour of the workbench itself: metamodel, editors, Omissions window.

Shows the AWB substrate features the paper describes around the document
generator: the suggestive-not-prescriptive philosophy (violations warn),
ad-hoc user properties, the editors declared in the metamodel, the
always-visible Omissions window, and the third retarget — AWB describing
itself.

Run:  python examples/workbench_tour.py
"""

from repro.awb import Model, load_metamodel, render_omissions_window
from repro.workloads import make_awb_self_model


def tour_philosophy() -> None:
    print("== suggestive, not prescriptive ==")
    model = Model(load_metamodel("it-architecture"), name="tour")
    person = model.create_node("Person", label="Pat")
    program = model.create_node("Program", label="LedgerD")

    # "the user can make a Person use a Program, even if the metamodel
    # prefers to phrase that as the Person use System and System runs
    # Program" — it connects, with a meek warning.
    model.connect(person, "uses", program)

    # "A user can add a new property to a particular node"
    person.set("middleName", "Quincy")

    # even a type the metamodel has never heard of:
    model.create_node("Llama", label="Untyped Larry")

    for warning in model.warnings:
        print("  warning:", warning)
    print("  Pat's ad-hoc middleName:", person.get("middleName"))


def tour_editors() -> None:
    print("\n== editors from the metamodel ==")
    metamodel = load_metamodel("it-architecture")
    for type_name in ("SystemBeingDesigned", "Server", "User"):
        editors = ", ".join(
            f"{editor.name}({editor.widget})"
            for editor in metamodel.editors_for(type_name)
        )
        print(f"  {type_name}: {editors}")


def tour_omissions_window() -> None:
    print("\n== the Omissions window ==")
    model = Model(load_metamodel("it-architecture"), name="draft")
    model.create_node("Document", label="System Context Document")
    # no SystemBeingDesigned yet, and the document has no version:
    print(render_omissions_window(model, width=68))


def tour_awb_itself() -> None:
    print("\n== AWB retargeted to itself ==")
    model = make_awb_self_model()
    for node_def in model.nodes_of_type("NodeTypeDef"):
        parents = [r.target.label for r in model.outgoing(node_def, "extends")]
        extends = f" extends {parents[0]}" if parents else ""
        print(f"  NodeTypeDef {node_def.label}{extends}")
    print(f"  (model: {model.stats()})")


def main() -> None:
    tour_philosophy()
    tour_editors()
    tour_omissions_window()
    tour_awb_itself()


if __name__ == "__main__":
    main()
