(: The paper's running example domain: a catalog of glass types.
   Run with:
     python -m repro.xquery -f examples/xq/glass_catalog.xq --doc catalog=...
   Lint with:
     python -m repro.xquery.lint examples/xq/glass_catalog.xq :)

declare function local:rank($glass) {
  if ($glass/@thermal-class eq "A") then 1
  else if ($glass/@thermal-class eq "B") then 2
  else 3
};

<catalog-report>{
  for $glass in doc("catalog")/catalog/glass
  let $rank := local:rank($glass)
  where $rank le 2
  order by $rank, string($glass/@name)
  return
    <glass name="{ $glass/@name }" rank="{ $rank }">{
      string($glass/description)
    }</glass>
}</catalog-report>
