(: E1-safe sequence indexing: every part of the concatenation is
   exactly one item, so [2] is stable no matter how parts flatten.
   Contrast with the E1 table in benchmarks/test_e01_sequence_table.py. :)

declare variable $second external;

let $first := <item n="1"/>
let $third := <item n="3"/>
let $row := ($first, exactly-one($second), $third)
return <picked>{ $row[2] }</picked>
