(: A small report generator: FLWOR over an external model, computed
   attributes placed before content (the safe E2 ordering), and a live
   trace probe — the binding is USED, so the dead-code pass keeps it. :)

declare variable $model external;

declare function local:status($node) {
  if (exists($node/@status)) then string($node/@status) else "unknown"
};

<status-report count="{ count($model/child::element()) }">{
  for $entry in $model/child::element()
  let $status := trace("status: ", local:status($entry))
  return
    element entry {
      attribute name { name($entry) },
      attribute status { $status },
      string($entry)
    }
}</status-report>
