"""Reproduction of Bard Bloom's SIGMOD 2005 experience paper
"Lopsided Little Languages: Experience with XQuery in a Document Generation
Subsystem".

The package contains every system the paper describes:

* :mod:`repro.xdm` / :mod:`repro.xmlio` — the XQuery Data Model and a
  from-scratch XML parser/serializer.
* :mod:`repro.xquery` — an XQuery/XPath 2.0 subset engine with the
  draft-era quirks the paper analyses (existential ``=``, flattening
  sequences, attribute folding, a ``trace``-eating optimizer).
* :mod:`repro.awb` — the Architect's Workbench substrate: metamodel,
  annotated multigraph, XML export, suggestive validation.
* :mod:`repro.querycalc` — the AWB query calculus with native and
  XQuery-backed interpreters.
* :mod:`repro.docgen` — the document generator, implemented twice: in
  XQuery source run by our engine, and "Java-style" with exceptions and
  mutation.
* :mod:`repro.xslt` — the small XSLT-ish post-processor used to split
  output streams.
* :mod:`repro.littlelang` — the paper's seven little-language lessons as a
  scorable audit.
* :mod:`repro.workloads` — deterministic synthetic models and templates
  for the benchmark harness.
"""

__version__ = "1.0.0"
