"""The Architect's Workbench (AWB) substrate.

A directed, annotated multigraph with a configurable metamodel, XML
export/import, and suggestive (never compulsory) validation.
"""

from .metamodel import (
    Advisory,
    EditorDecl,
    Metamodel,
    MetamodelError,
    NodeType,
    PropertyDecl,
    RelationType,
)
from .model import Model, ModelNode, ModelWarning, RelationObject
from .validate import (
    Omission,
    all_omissions,
    check_advisories,
    render_omissions_window,
)
from .xml_io import (
    IncrementalExporter,
    ModelImportError,
    export_metamodel,
    export_model,
    export_model_text,
    import_model,
    import_model_text,
)
from .metamodels import BUILTIN_METAMODELS, load as load_metamodel

__all__ = [
    "Advisory",
    "EditorDecl",
    "IncrementalExporter",
    "BUILTIN_METAMODELS",
    "Metamodel",
    "MetamodelError",
    "Model",
    "ModelImportError",
    "ModelNode",
    "ModelWarning",
    "NodeType",
    "Omission",
    "PropertyDecl",
    "RelationObject",
    "RelationType",
    "all_omissions",
    "check_advisories",
    "render_omissions_window",
    "export_metamodel",
    "export_model",
    "export_model_text",
    "import_model",
    "import_model_text",
    "load_metamodel",
]
