"""The AWB metamodel: node types, properties, relations, and advisories.

"Most AWB structures are defined in a pile of files: what kinds of entities
AWB will talk about, what sorts of editors it will use to manipulate them,
and so on."  Node types form a single-inheritance hierarchy; relations are
hierarchically typed too, and their source/target types are *advisory* —
"the types on relations are advisory, not compulsory: the user can make a
Person use a Program" even when the metamodel prefers otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

#: scalar property types the paper mentions (string, integer, HTML, ...).
PROPERTY_TYPES = ("string", "integer", "boolean", "float", "html")


@dataclass
class PropertyDecl:
    """A scalar-typed property declaration on a node or relation type."""

    name: str
    type: str = "string"
    required: bool = False
    default: Optional[object] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.type not in PROPERTY_TYPES:
            raise ValueError(
                f"unknown property type {self.type!r}; expected one of {PROPERTY_TYPES}"
            )


class TypeDef:
    """Common behaviour of node types and relation types (a hierarchy)."""

    def __init__(self, name: str, parent: Optional["TypeDef"], description: str = ""):
        self.name = name
        self.parent = parent
        self.description = description
        self.children: List["TypeDef"] = []
        if parent is not None:
            parent.children.append(self)

    def ancestors(self) -> Iterable["TypeDef"]:
        current = self
        while current is not None:
            yield current
            current = current.parent

    def is_subtype_of(self, other_name: str) -> bool:
        return any(ancestor.name == other_name for ancestor in self.ancestors())

    def descendants(self) -> Iterable["TypeDef"]:
        yield self
        for child in self.children:
            yield from child.descendants()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class NodeType(TypeDef):
    """A node type with declared scalar properties (inherited down)."""

    def __init__(
        self,
        name: str,
        parent: Optional["NodeType"] = None,
        properties: Optional[List[PropertyDecl]] = None,
        description: str = "",
    ):
        super().__init__(name, parent, description)
        self.properties: List[PropertyDecl] = list(properties or [])

    def all_properties(self) -> Dict[str, PropertyDecl]:
        """Own and inherited property declarations, nearest wins."""
        merged: Dict[str, PropertyDecl] = {}
        for ancestor in reversed(list(self.ancestors())):
            for declaration in ancestor.properties:
                merged[declaration.name] = declaration
        return merged

    def property_decl(self, name: str) -> Optional[PropertyDecl]:
        return self.all_properties().get(name)


class RelationType(TypeDef):
    """A relation type with *advisory* endpoint types.

    ``endpoints`` lists (source_type, target_type) pairs the metamodel
    writer intends — "A System has Servers, Subsystems, Users, and many
    other things".  Violations are warnings, never errors.
    """

    def __init__(
        self,
        name: str,
        parent: Optional["RelationType"] = None,
        endpoints: Optional[List[Tuple[str, str]]] = None,
        properties: Optional[List[PropertyDecl]] = None,
        description: str = "",
    ):
        super().__init__(name, parent, description)
        self.endpoints: List[Tuple[str, str]] = list(endpoints or [])
        self.properties: List[PropertyDecl] = list(properties or [])

    def all_endpoints(self) -> List[Tuple[str, str]]:
        merged: List[Tuple[str, str]] = []
        for ancestor in self.ancestors():
            merged.extend(ancestor.endpoints)
        return merged


@dataclass
class EditorDecl:
    """An editor declaration: how the workbench edits a node type.

    "what sorts of editors it will use to manipulate them" — part of the
    metamodel pile.  ``widget`` names the UI style; the diagram editors
    the paper mentions as "the only IT-specific components" would be
    declared here with ``widget="diagram"``.
    """

    name: str
    node_type: str
    widget: str = "form"
    description: str = ""


@dataclass
class Advisory:
    """A suggestion about model shape — AWB shows "a meek warning message".

    ``kind`` is one of:

    * ``exactly-one-node`` — there should be exactly one node of ``type``
      (the SystemBeingDesigned rule);
    * ``required-property`` — nodes of ``type`` should have a non-empty
      ``property`` (the "document without version information" rule).
    """

    kind: str
    type: str
    property: Optional[str] = None
    message: str = ""


class MetamodelError(ValueError):
    """The metamodel itself is malformed (unknown parent type, etc.)."""


class Metamodel:
    """A complete metamodel: type hierarchies plus advisories."""

    def __init__(self, name: str, label_property: str = "label"):
        self.name = name
        #: every node implicitly carries this property; used for display.
        self.label_property = label_property
        self.node_types: Dict[str, NodeType] = {}
        self.relation_types: Dict[str, RelationType] = {}
        self.advisories: List[Advisory] = []
        self.editors: List[EditorDecl] = []

    # -- construction -------------------------------------------------------

    def add_node_type(
        self,
        name: str,
        parent: Optional[str] = None,
        properties: Optional[List[PropertyDecl]] = None,
        description: str = "",
    ) -> NodeType:
        if name in self.node_types:
            raise MetamodelError(f"duplicate node type {name!r}")
        parent_type = None
        if parent is not None:
            parent_type = self.node_types.get(parent)
            if parent_type is None:
                raise MetamodelError(f"unknown parent node type {parent!r}")
        node_type = NodeType(name, parent_type, properties, description)
        self.node_types[name] = node_type
        return node_type

    def add_relation_type(
        self,
        name: str,
        parent: Optional[str] = None,
        endpoints: Optional[List[Tuple[str, str]]] = None,
        properties: Optional[List[PropertyDecl]] = None,
        description: str = "",
    ) -> RelationType:
        if name in self.relation_types:
            raise MetamodelError(f"duplicate relation type {name!r}")
        parent_type = None
        if parent is not None:
            parent_type = self.relation_types.get(parent)
            if parent_type is None:
                raise MetamodelError(f"unknown parent relation type {parent!r}")
        relation_type = RelationType(name, parent_type, endpoints, properties, description)
        self.relation_types[name] = relation_type
        return relation_type

    def advise(
        self, kind: str, type: str, property: Optional[str] = None, message: str = ""
    ) -> Advisory:
        advisory = Advisory(kind=kind, type=type, property=property, message=message)
        self.advisories.append(advisory)
        return advisory

    def add_editor(
        self, name: str, node_type: str, widget: str = "form", description: str = ""
    ) -> EditorDecl:
        """Declare an editor for a node type."""
        if node_type not in self.node_types:
            raise MetamodelError(f"unknown node type {node_type!r} for editor")
        editor = EditorDecl(name, node_type, widget, description)
        self.editors.append(editor)
        return editor

    def editors_for(self, type_name: str) -> List[EditorDecl]:
        """Editors applicable to a node type (its own and inherited).

        The most specifically-typed editors come first.
        """
        applicable = [
            editor
            for editor in self.editors
            if self.is_node_subtype(type_name, editor.node_type)
        ]

        def depth(editor: EditorDecl) -> int:
            node_type = self.node_types.get(editor.node_type)
            return -len(list(node_type.ancestors())) if node_type else 0

        applicable.sort(key=depth)
        return applicable

    # -- queries ---------------------------------------------------------------

    def node_type(self, name: str) -> Optional[NodeType]:
        return self.node_types.get(name)

    def relation_type(self, name: str) -> Optional[RelationType]:
        return self.relation_types.get(name)

    def is_node_subtype(self, name: str, ancestor: str) -> bool:
        """True if node type *name* is *ancestor* or derives from it.

        Unknown types (user inventions — allowed!) are subtypes of nothing
        but themselves.
        """
        if name == ancestor:
            return True
        node_type = self.node_types.get(name)
        return node_type is not None and node_type.is_subtype_of(ancestor)

    def is_relation_subtype(self, name: str, ancestor: str) -> bool:
        if name == ancestor:
            return True
        relation_type = self.relation_types.get(name)
        return relation_type is not None and relation_type.is_subtype_of(ancestor)

    def node_subtype_names(self, name: str) -> List[str]:
        """The named type and all its declared descendants."""
        node_type = self.node_types.get(name)
        if node_type is None:
            return [name]
        return [descendant.name for descendant in node_type.descendants()]

    def relation_subtype_names(self, name: str) -> List[str]:
        relation_type = self.relation_types.get(name)
        if relation_type is None:
            return [name]
        return [descendant.name for descendant in relation_type.descendants()]

    def endpoint_allowed(
        self, relation_name: str, source_type: str, target_type: str
    ) -> bool:
        """Does the metamodel *advise* this relation between these types?

        Always True for relations with no declared endpoints (anything
        goes) and for unknown relations (user inventions).
        """
        relation_type = self.relation_types.get(relation_name)
        if relation_type is None:
            return True
        endpoints = relation_type.all_endpoints()
        if not endpoints:
            return True
        return any(
            self.is_node_subtype(source_type, allowed_source)
            and self.is_node_subtype(target_type, allowed_target)
            for allowed_source, allowed_target in endpoints
        )
