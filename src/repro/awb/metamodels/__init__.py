"""Built-in metamodels: the three retargets the paper mentions."""

from . import awb_itself, glass, it_architecture

BUILTIN_METAMODELS = {
    "it-architecture": it_architecture.build,
    "glass-catalog": glass.build,
    "awb-itself": awb_itself.build,
}


def load(name: str):
    """Build a fresh metamodel instance by name."""
    try:
        return BUILTIN_METAMODELS[name]()
    except KeyError:
        raise KeyError(
            f"unknown metamodel {name!r}; available: {sorted(BUILTIN_METAMODELS)}"
        ) from None
