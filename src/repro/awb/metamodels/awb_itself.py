"""AWB retargeted to itself — the second retarget the paper mentions.

A workbench for maintaining workbench metamodels: node types describing
node types, relation types, editors, and the pile of metamodel files.
"""

from __future__ import annotations

from ..metamodel import Metamodel, PropertyDecl


def build() -> Metamodel:
    """Construct the AWB-describing-AWB metamodel."""
    mm = Metamodel("awb-itself")

    mm.add_node_type(
        "MetaElement",
        properties=[PropertyDecl("label", "string"), PropertyDecl("doc", "html")],
    )
    mm.add_node_type(
        "NodeTypeDef",
        parent="MetaElement",
        properties=[PropertyDecl("abstract", "boolean", default=False)],
    )
    mm.add_node_type(
        "RelationTypeDef",
        parent="MetaElement",
        properties=[PropertyDecl("advisory", "boolean", default=True)],
    )
    mm.add_node_type(
        "PropertyDef",
        parent="MetaElement",
        properties=[PropertyDecl("scalarType", "string", default="string")],
    )
    mm.add_node_type(
        "EditorDef",
        parent="MetaElement",
        properties=[PropertyDecl("widget", "string", default="form")],
    )
    mm.add_node_type(
        "MetamodelFile",
        parent="MetaElement",
        properties=[PropertyDecl("path", "string")],
    )
    mm.add_node_type("AdvisoryDef", parent="MetaElement")

    mm.add_relation_type("extends", endpoints=[("NodeTypeDef", "NodeTypeDef"),
                                               ("RelationTypeDef", "RelationTypeDef")])
    mm.add_relation_type("declaresProperty", endpoints=[("NodeTypeDef", "PropertyDef")])
    mm.add_relation_type("editedBy", endpoints=[("NodeTypeDef", "EditorDef")])
    mm.add_relation_type("definedIn", endpoints=[("MetaElement", "MetamodelFile")])
    mm.add_relation_type("connectsFrom", endpoints=[("RelationTypeDef", "NodeTypeDef")])
    mm.add_relation_type("connectsTo", endpoints=[("RelationTypeDef", "NodeTypeDef")])

    mm.advise(
        "required-property",
        "MetamodelFile",
        property="path",
        message="metamodel files need a path to be loadable",
    )
    return mm
