"""The antique-glass-dealer metamodel.

"AWB has retargeted to be a workbench for (1) an antique glass dealer" —
this is that retarget.  Note the paper's point that "the glass catalog
doesn't have a SystemBeingDesigned node at all, nor a warning about it":
the advisory set is entirely different.
"""

from __future__ import annotations

from ..metamodel import Metamodel, PropertyDecl


def build() -> Metamodel:
    """Construct the antique-glass-catalog metamodel."""
    mm = Metamodel("glass-catalog")

    mm.add_node_type(
        "CatalogEntry",
        properties=[
            PropertyDecl("label", "string"),
            PropertyDecl("notes", "html"),
        ],
    )
    mm.add_node_type(
        "GlassPiece",
        parent="CatalogEntry",
        properties=[
            PropertyDecl("year", "integer"),
            PropertyDecl("priceDollars", "integer"),
            PropertyDecl("condition", "string", default="good"),
        ],
    )
    mm.add_node_type("Vase", parent="GlassPiece")
    mm.add_node_type("Goblet", parent="GlassPiece")
    mm.add_node_type("Paperweight", parent="GlassPiece")
    mm.add_node_type(
        "Maker",
        parent="CatalogEntry",
        properties=[PropertyDecl("country", "string"), PropertyDecl("founded", "integer")],
    )
    mm.add_node_type("Style", parent="CatalogEntry")
    mm.add_node_type(
        "Customer",
        parent="CatalogEntry",
        properties=[PropertyDecl("email", "string")],
    )
    mm.add_node_type(
        "Appraisal",
        parent="CatalogEntry",
        properties=[
            PropertyDecl("appraisedValue", "integer"),
            PropertyDecl("date", "string"),
        ],
    )

    mm.add_relation_type("madeBy", endpoints=[("GlassPiece", "Maker")])
    mm.add_relation_type("inStyle", endpoints=[("GlassPiece", "Style")])
    mm.add_relation_type("soldTo", endpoints=[("GlassPiece", "Customer")])
    mm.add_relation_type("interestedIn", endpoints=[("Customer", "GlassPiece")])
    mm.add_relation_type("appraised", endpoints=[("Appraisal", "GlassPiece")])
    mm.add_relation_type(
        "influenced", endpoints=[("Maker", "Maker"), ("Style", "Style")]
    )

    mm.advise(
        "required-property",
        "GlassPiece",
        property="priceDollars",
        message="pieces without prices cannot be catalogued for sale",
    )
    return mm
