"""The IT-architecture metamodel — AWB's home domain.

Types and relations assembled from the paper's examples: System has
Servers, Subsystems, Users; Person likes/favors Person; Person uses
System; System runs Program; exactly one SystemBeingDesigned; documents
should have version information.
"""

from __future__ import annotations

from ..metamodel import Metamodel, PropertyDecl


def build() -> Metamodel:
    """Construct the IT-architecture metamodel."""
    mm = Metamodel("it-architecture")

    mm.add_node_type(
        "Element",
        properties=[
            PropertyDecl("label", "string", description="display name"),
            PropertyDecl("description", "html", description="free-form notes"),
        ],
        description="root of the node-type hierarchy",
    )
    mm.add_node_type(
        "System",
        parent="Element",
        properties=[PropertyDecl("status", "string", default="proposed")],
    )
    mm.add_node_type(
        "SystemBeingDesigned",
        parent="System",
        description="the one system this workbench instance is designing",
    )
    mm.add_node_type("Subsystem", parent="System")
    mm.add_node_type(
        "Server",
        parent="Element",
        properties=[
            PropertyDecl("cpuCount", "integer", default=1),
            PropertyDecl("memoryGb", "integer", default=4),
        ],
    )
    mm.add_node_type("Computer", parent="Element")
    mm.add_node_type(
        "Program",
        parent="Element",
        properties=[PropertyDecl("version", "string")],
    )
    mm.add_node_type(
        "Person",
        parent="Element",
        properties=[
            PropertyDecl("firstName", "string"),
            PropertyDecl("lastName", "string"),
            PropertyDecl("birthYear", "integer"),
            PropertyDecl("biography", "html"),
        ],
    )
    mm.add_node_type("User", parent="Person")
    mm.add_node_type(
        "Superuser",
        parent="User",
        description="users whose entries get bolded in documents",
    )
    mm.add_node_type(
        "Document",
        parent="Element",
        properties=[
            PropertyDecl("version", "string", description="documents should carry one"),
            PropertyDecl("author", "string"),
        ],
    )
    mm.add_node_type(
        "PerformanceRequirement",
        parent="Element",
        properties=[PropertyDecl("metric", "string"), PropertyDecl("target", "string")],
    )
    mm.add_node_type("Location", parent="Element")

    # "The IT architecture system uses the relation has in dozens of ways."
    mm.add_relation_type(
        "has",
        endpoints=[
            ("System", "Server"),
            ("System", "Subsystem"),
            ("System", "User"),
            ("System", "Document"),
            ("System", "PerformanceRequirement"),
            ("Subsystem", "Program"),
            ("Server", "Program"),
            ("Element", "Document"),
        ],
        description="generic containment/ownership, read naturally",
    )
    mm.add_relation_type(
        "likes", endpoints=[("Person", "Person")], description="social preference"
    )
    mm.add_relation_type(
        "favors", parent="likes", description="a stronger form of likes"
    )
    mm.add_relation_type(
        "uses",
        endpoints=[("Person", "System"), ("System", "Server")],
        description="the metamodel prefers Person uses System",
    )
    mm.add_relation_type(
        "runs", endpoints=[("System", "Program"), ("Server", "Program")]
    )
    mm.add_relation_type("locatedAt", endpoints=[("Server", "Location")])

    # "the only IT-specific components are a few editors for kinds of
    # diagrams that IT architects draw"
    mm.add_editor("SystemContextDiagram", "System", widget="diagram")
    mm.add_editor("DeploymentDiagram", "Server", widget="diagram")
    mm.add_editor("ElementForm", "Element", widget="form")

    mm.advise(
        "exactly-one-node",
        "SystemBeingDesigned",
        message=(
            "you might want to ensure that there is exactly one "
            "SystemBeingDesigned node"
        ),
    )
    mm.advise(
        "required-property",
        "Document",
        property="version",
        message="documents are supposed to have version information",
    )
    return mm
