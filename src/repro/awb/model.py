"""The AWB model: a directed, annotated multigraph.

"AWB sees the universe as a directed, annotated multigraph.  The nodes of
the graph have a type and a number of properties...  The edges of the
multigraph are called relation objects, and are categorized into
relations."

Design points straight from the paper:

* users may add ad-hoc properties to individual nodes (``middleName`` on
  one Person) — so properties live on the instance, not the type;
* relation endpoint types are advisory; violations are recorded as
  warnings on the model, never rejected;
* nodes of unknown types are allowed (again with a warning).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from .metamodel import Metamodel

#: Mutation event kinds delivered to :meth:`Model.add_listener` callbacks.
MUTATION_KINDS = (
    "node-added",
    "node-changed",
    "node-removed",
    "relation-added",
    "relation-changed",
    "relation-removed",
)


class PropertyBag(dict):
    """A property dict that tells its owner's model about every write.

    AWB code (and user code) mutates ``node.properties`` directly, so dirty
    tracking cannot rely on everyone calling :meth:`ModelNode.set` — the bag
    itself reports writes.  Reads stay plain ``dict`` speed.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner):
        super().__init__()
        self._owner = owner

    def _touched(self) -> None:
        self._owner._mark_changed()

    def __setitem__(self, key, value):
        # Value-unchanged writes are generation-neutral: they cannot move
        # the export a byte, so they must not flush warm caches.  The type
        # check keeps the comparison honest — ``True == 1`` and
        # ``1 == 1.0`` are Python-equal but export differently.
        if key in self:
            current = super().__getitem__(key)
            if type(current) is type(value) and current == value:
                return
        super().__setitem__(key, value)
        self._touched()

    def __delitem__(self, key):
        super().__delitem__(key)
        self._touched()

    def pop(self, *args):
        existed = bool(args) and args[0] in self
        result = super().pop(*args)
        if existed:
            self._touched()
        return result

    def popitem(self):
        result = super().popitem()
        self._touched()
        return result

    def clear(self):
        if self:
            super().clear()
            self._touched()

    def update(self, *args, **kwargs):
        # Route through __setitem__ so no-op suppression applies per key.
        for key, value in dict(*args, **kwargs).items():
            self[key] = value

    def setdefault(self, key, default=None):
        if key in self:
            return self[key]
        self[key] = default
        return default


@dataclass
class ModelWarning:
    """A meek warning in the corner of the screen."""

    kind: str
    message: str
    subject_id: Optional[str] = None

    def __str__(self) -> str:
        subject = f" [{self.subject_id}]" if self.subject_id else ""
        return f"{self.kind}{subject}: {self.message}"


class ModelNode:
    """A node: a type name, a property bag, and graph membership."""

    __slots__ = ("id", "type_name", "properties", "model")

    def __init__(self, node_id: str, type_name: str, model: "Model"):
        self.id = node_id
        self.type_name = type_name
        self.model = model
        self.properties: Dict[str, object] = PropertyBag(self)

    def _mark_changed(self) -> None:
        self.model._notify("node-changed", self.id)

    @property
    def label(self) -> str:
        value = self.properties.get(self.model.metamodel.label_property)
        return str(value) if value is not None else self.id

    @label.setter
    def label(self, value: str) -> None:
        self.properties[self.model.metamodel.label_property] = value

    def get(self, name: str, default: object = None) -> object:
        return self.properties.get(name, default)

    def set(self, name: str, value: object) -> None:
        """Set a property; ad-hoc names are allowed, per AWB philosophy."""
        self.properties[name] = value

    def is_type(self, type_name: str) -> bool:
        """True if this node's type is *type_name* or a subtype of it."""
        return self.model.metamodel.is_node_subtype(self.type_name, type_name)

    def __repr__(self) -> str:
        return f"<node {self.id} {self.type_name} {self.label!r}>"


class RelationObject:
    """An edge: a relation name, endpoints, and its own property bag."""

    __slots__ = ("id", "relation_name", "source", "target", "properties")

    def __init__(
        self,
        relation_id: str,
        relation_name: str,
        source: ModelNode,
        target: ModelNode,
    ):
        self.id = relation_id
        self.relation_name = relation_name
        self.source = source
        self.target = target
        self.properties: Dict[str, object] = PropertyBag(self)

    def _mark_changed(self) -> None:
        self.source.model._notify("relation-changed", self.id)

    def set(self, name: str, value: object) -> None:
        """Set a property; ad-hoc names are allowed, per AWB philosophy."""
        self.properties[name] = value

    def get(self, name: str, default: object = None) -> object:
        return self.properties.get(name, default)

    def is_relation(self, relation_name: str) -> bool:
        return self.source.model.metamodel.is_relation_subtype(
            self.relation_name, relation_name
        )

    def __repr__(self) -> str:
        return (
            f"<relation {self.id} {self.source.id} "
            f"-{self.relation_name}-> {self.target.id}>"
        )


class Model:
    """A directed annotated multigraph governed (advisorily) by a metamodel."""

    def __init__(self, metamodel: Metamodel, name: str = "model"):
        self.metamodel = metamodel
        self.name = name
        self.nodes: Dict[str, ModelNode] = {}
        self.relations: Dict[str, RelationObject] = {}
        self.warnings: List[ModelWarning] = []
        self._node_counter = itertools.count(1)
        self._relation_counter = itertools.count(1)
        #: node id → {relation id → relation}, insertion-ordered.  Keyed by
        #: relation id so unlinking one relation is an O(1) dict delete; the
        #: old list-based index made removing a high-fan-out hub quadratic
        #: (``list.remove`` is O(degree) per relation).
        self._outgoing: Dict[str, Dict[str, RelationObject]] = {}
        self._incoming: Dict[str, Dict[str, RelationObject]] = {}
        #: Monotonically increasing mutation counter.  Consumers (export
        #: caches, the query service's result cache) use it as a cheap
        #: "has anything changed since I looked?" fingerprint.
        self.generation = 0
        self._listeners: List[Callable[[str, str], None]] = []

    # -- mutation tracking ------------------------------------------------------

    def add_listener(self, listener: Callable[[str, str], None]) -> None:
        """Register a callback ``listener(kind, entity_id)`` for mutations.

        ``kind`` is one of :data:`MUTATION_KINDS`.  Listeners observe every
        structural change and every property write (including direct
        ``node.properties[...] = value`` mutation, which AWB allows).
        """
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[str, str], None]) -> None:
        self._listeners.remove(listener)

    def _notify(self, kind: str, entity_id: str) -> None:
        self.generation += 1
        for listener in self._listeners:
            listener(kind, entity_id)

    # -- construction -----------------------------------------------------------

    def create_node(
        self,
        type_name: str,
        label: Optional[str] = None,
        node_id: Optional[str] = None,
        apply_defaults: bool = True,
        **properties,
    ) -> ModelNode:
        """Create a node.  Unknown types are allowed, with a warning.

        ``apply_defaults=False`` skips seeding declared property defaults;
        importers rebuilding a node from a faithful export use it so a
        property the user *deleted* from the live node does not resurrect
        as its metamodel default in the replica.
        """
        if node_id is None:
            node_id = f"N{next(self._node_counter)}"
        if node_id in self.nodes:
            raise ValueError(f"duplicate node id {node_id!r}")
        if self.metamodel.node_type(type_name) is None:
            self.warnings.append(
                ModelWarning(
                    "unknown-node-type",
                    f"node type {type_name!r} is not in the metamodel",
                    node_id,
                )
            )
        node = ModelNode(node_id, type_name, self)
        declared = (
            self.metamodel.node_type(type_name).all_properties()
            if self.metamodel.node_type(type_name)
            else {}
        )
        if apply_defaults:
            for declaration in declared.values():
                if declaration.default is not None:
                    node.properties[declaration.name] = declaration.default
        if label is not None:
            node.label = label
        for name, value in properties.items():
            node.set(name, value)
        self.nodes[node_id] = node
        self._outgoing[node_id] = {}
        self._incoming[node_id] = {}
        self._notify("node-added", node_id)
        return node

    def connect(
        self,
        source: ModelNode,
        relation_name: str,
        target: ModelNode,
        relation_id: Optional[str] = None,
        **properties,
    ) -> RelationObject:
        """Connect two nodes.  Advisory endpoint violations only warn."""
        if (
            self.nodes.get(source.id) is not source
            or self.nodes.get(target.id) is not target
        ):
            raise ValueError("both endpoints must belong to this model")
        if relation_id is None:
            relation_id = f"R{next(self._relation_counter)}"
        if relation_id in self.relations:
            raise ValueError(f"duplicate relation id {relation_id!r}")
        if self.metamodel.relation_type(relation_name) is None:
            self.warnings.append(
                ModelWarning(
                    "unknown-relation-type",
                    f"relation type {relation_name!r} is not in the metamodel",
                    relation_id,
                )
            )
        elif not self.metamodel.endpoint_allowed(
            relation_name, source.type_name, target.type_name
        ):
            self.warnings.append(
                ModelWarning(
                    "advisory-endpoint-violation",
                    f"{relation_name!r} between {source.type_name} and "
                    f"{target.type_name} is not what the metamodel intends",
                    relation_id,
                )
            )
        relation = RelationObject(relation_id, relation_name, source, target)
        for name, value in properties.items():
            relation.properties[name] = value
        self.relations[relation_id] = relation
        self._outgoing[source.id][relation_id] = relation
        self._incoming[target.id][relation_id] = relation
        self._notify("relation-added", relation_id)
        return relation

    def retype_node(self, node: ModelNode, type_name: str) -> ModelNode:
        """Change a node's type in place (the update language's ``rename``).

        Relations keep their endpoints; properties are untouched (ad-hoc
        properties are allowed, so nothing needs dropping).  Unknown new
        types warn, like :meth:`create_node`.  Renaming a node to its
        current type is a no-op and generation-neutral.
        """
        if self.nodes.get(node.id) is not node:
            raise ValueError(f"node {node.id!r} does not belong to this model")
        if node.type_name == type_name:
            return node
        if self.metamodel.node_type(type_name) is None:
            self.warnings.append(
                ModelWarning(
                    "unknown-node-type",
                    f"node type {type_name!r} is not in the metamodel",
                    node.id,
                )
            )
        node.type_name = type_name
        self._notify("node-changed", node.id)
        return node

    def retype_relation(
        self, relation: RelationObject, relation_name: str
    ) -> RelationObject:
        """Change a relation's type in place."""
        if self.relations.get(relation.id) is not relation:
            raise ValueError(
                f"relation {relation.id!r} does not belong to this model"
            )
        if relation.relation_name == relation_name:
            return relation
        if self.metamodel.relation_type(relation_name) is None:
            self.warnings.append(
                ModelWarning(
                    "unknown-relation-type",
                    f"relation type {relation_name!r} is not in the metamodel",
                    relation.id,
                )
            )
        relation.relation_name = relation_name
        self._notify("relation-changed", relation.id)
        return relation

    def remove_relation(self, relation: RelationObject) -> None:
        del self.relations[relation.id]
        del self._outgoing[relation.source.id][relation.id]
        del self._incoming[relation.target.id][relation.id]
        self._notify("relation-removed", relation.id)

    def remove_node(self, node: ModelNode) -> None:
        """Remove a node and every relation touching it."""
        for relation in list(self._outgoing[node.id].values()):
            self.remove_relation(relation)
        for relation in list(self._incoming[node.id].values()):
            self.remove_relation(relation)
        del self._outgoing[node.id]
        del self._incoming[node.id]
        del self.nodes[node.id]
        self._notify("node-removed", node.id)

    # -- queries --------------------------------------------------------------------

    def node(self, node_id: str) -> ModelNode:
        return self.nodes[node_id]

    def nodes_of_type(
        self, type_name: str, include_subtypes: bool = True
    ) -> List[ModelNode]:
        """All nodes of a type (by default including declared subtypes)."""
        if include_subtypes:
            return [n for n in self.nodes.values() if n.is_type(type_name)]
        return [n for n in self.nodes.values() if n.type_name == type_name]

    def all_nodes(self) -> List[ModelNode]:
        return list(self.nodes.values())

    def outgoing(
        self,
        node: ModelNode,
        relation_name: Optional[str] = None,
        include_subrelations: bool = True,
    ) -> List[RelationObject]:
        return self._filter_relations(
            self._outgoing[node.id].values(), relation_name, include_subrelations
        )

    def incoming(
        self,
        node: ModelNode,
        relation_name: Optional[str] = None,
        include_subrelations: bool = True,
    ) -> List[RelationObject]:
        return self._filter_relations(
            self._incoming[node.id].values(), relation_name, include_subrelations
        )

    def _filter_relations(
        self,
        relations: Iterable[RelationObject],
        relation_name: Optional[str],
        include_subrelations: bool,
    ) -> List[RelationObject]:
        if relation_name is None:
            return list(relations)
        if include_subrelations:
            return [r for r in relations if r.is_relation(relation_name)]
        return [r for r in relations if r.relation_name == relation_name]

    def targets(
        self, node: ModelNode, relation_name: Optional[str] = None
    ) -> List[ModelNode]:
        """Nodes reached by following *relation_name* forward from *node*."""
        return [r.target for r in self.outgoing(node, relation_name)]

    def sources(
        self, node: ModelNode, relation_name: Optional[str] = None
    ) -> List[ModelNode]:
        """Nodes reaching *node* via *relation_name*."""
        return [r.source for r in self.incoming(node, relation_name)]

    def stats(self) -> Dict[str, int]:
        return {
            "nodes": len(self.nodes),
            "relations": len(self.relations),
            "warnings": len(self.warnings),
        }
