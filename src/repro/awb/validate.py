"""Suggestive validation: the Omissions window.

"One useful feature of the Workbench is 'Omissions' — a window listing
incomplete parts of the model...  a document without any version
information appears, with a suitable flag, in the Omissions folder."

Validation never fails a model; it produces suggestions.  The rules come
from the metamodel's advisories plus structural checks (advisory endpoint
violations, unknown types) already recorded on the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .metamodel import Advisory
from .model import Model


@dataclass
class Omission:
    """One entry in the Omissions window."""

    kind: str
    message: str
    subject_id: Optional[str] = None
    advisory: Optional[Advisory] = None

    def __str__(self) -> str:
        subject = f" [{self.subject_id}]" if self.subject_id else ""
        return f"{self.kind}{subject}: {self.message}"


def check_advisories(model: Model) -> List[Omission]:
    """Evaluate the metamodel's advisories against the model."""
    omissions: List[Omission] = []
    for advisory in model.metamodel.advisories:
        if advisory.kind == "exactly-one-node":
            omissions.extend(_check_exactly_one(model, advisory))
        elif advisory.kind == "required-property":
            omissions.extend(_check_required_property(model, advisory))
        else:
            omissions.append(
                Omission(
                    "unknown-advisory",
                    f"advisory kind {advisory.kind!r} is not understood",
                    advisory=advisory,
                )
            )
    return omissions


def _check_exactly_one(model: Model, advisory: Advisory) -> List[Omission]:
    matches = model.nodes_of_type(advisory.type)
    if len(matches) == 1:
        return []
    base = advisory.message or (
        f"you might want to ensure that there is exactly one {advisory.type} node"
    )
    message = f"{base} (found {len(matches)})"
    return [
        Omission(
            "exactly-one-node",
            message,
            subject_id=matches[0].id if matches else None,
            advisory=advisory,
        )
    ]


def _check_required_property(model: Model, advisory: Advisory) -> List[Omission]:
    omissions: List[Omission] = []
    for node in model.nodes_of_type(advisory.type):
        value = node.get(advisory.property)
        if value is None or (isinstance(value, str) and not value.strip()):
            message = advisory.message or (
                f"{advisory.type} {node.label!r} has no {advisory.property}"
            )
            omissions.append(
                Omission(
                    "required-property",
                    message,
                    subject_id=node.id,
                    advisory=advisory,
                )
            )
    return omissions


def all_omissions(model: Model) -> List[Omission]:
    """Advisory omissions plus the structural warnings the model recorded."""
    omissions = check_advisories(model)
    for warning in model.warnings:
        omissions.append(
            Omission(warning.kind, warning.message, subject_id=warning.subject_id)
        )
    return omissions


def render_omissions_window(model: Model, width: int = 72) -> str:
    """The Omissions window, as text: "always visible" in the UI.

    A meek listing — suggestions, never errors — grouped by kind, with the
    subject node's label where one exists.
    """
    omissions = all_omissions(model)
    lines = ["Omissions".center(width, "─")]
    if not omissions:
        lines.append("  (nothing to suggest)")
    by_kind = {}
    for omission in omissions:
        by_kind.setdefault(omission.kind, []).append(omission)
    for kind in sorted(by_kind):
        lines.append(f"  {kind}:")
        for omission in by_kind[kind]:
            subject = ""
            if omission.subject_id and omission.subject_id in model.nodes:
                subject = f" [{model.nodes[omission.subject_id].label}]"
            elif omission.subject_id:
                subject = f" [{omission.subject_id}]"
            lines.append(f"    • {omission.message}{subject}")
    lines.append("─" * width)
    return "\n".join(lines)
