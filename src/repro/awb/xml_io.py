"""AWB's "nice, clean XML format" — model export and import.

The document generator (both implementations) consumes this export rather
than live models: "we decided to do an external document generator — a
program which simply used AWB's exported data".

Format::

    <awb-model name="..." metamodel="...">
      <node id="N1" type="Person">
        <property name="label">Alice</property>
        <property name="birthYear" type="integer">1970</property>
        <property name="biography" type="html"><p>...</p></property>
      </node>
      <relation id="R1" type="has" source="N1" target="N2">
        <property name="since" type="integer">1999</property>
      </relation>
    </awb-model>

Scalar properties serialize as text; ``html``-typed property values are
embedded as child elements (the paper's "embarrassing historical reasons"
schema drift — AWB stored them as strings internally but exported XML).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..xdm import DocumentNode, ElementNode, Node, TextNode
from ..xmlio import parse_document, parse_element, serialize
from .metamodel import Metamodel
from .model import Model, ModelNode, RelationObject


def export_model(model: Model) -> DocumentNode:
    """Export a model to its XML document form."""
    root = ElementNode("awb-model")
    root.set_attribute("name", model.name)
    root.set_attribute("metamodel", model.metamodel.name)
    for node in model.nodes.values():
        root.append(_export_node(node))
    for relation in model.relations.values():
        root.append(_export_relation(relation))
    return DocumentNode([root])


def export_model_text(model: Model, indent: bool = True) -> str:
    """Export a model to XML text."""
    return serialize(export_model(model), indent=indent, xml_declaration=True)


def _export_node(node: ModelNode) -> ElementNode:
    out = ElementNode("node")
    out.set_attribute("id", node.id)
    out.set_attribute("type", node.type_name)
    _export_properties(out, node.properties, node)
    return out


def _export_relation(relation: RelationObject) -> ElementNode:
    out = ElementNode("relation")
    out.set_attribute("id", relation.id)
    out.set_attribute("type", relation.relation_name)
    out.set_attribute("source", relation.source.id)
    out.set_attribute("target", relation.target.id)
    _export_properties(out, relation.properties, None)
    return out


def _export_properties(
    parent: ElementNode, properties: Dict[str, object], node: Optional[ModelNode]
) -> None:
    for name, value in properties.items():
        prop = ElementNode("property")
        prop.set_attribute("name", name)
        type_name = _value_type(value, name, node)
        if type_name != "string":
            prop.set_attribute("type", type_name)
        if type_name == "html":
            # HTML-valued properties export as child elements, not text —
            # the schema drift the paper describes.
            try:
                prop.append(parse_element(f"<html-value>{value}</html-value>"))
            except Exception:
                prop.append(TextNode(str(value)))
        elif isinstance(value, bool):
            prop.append(TextNode("true" if value else "false"))
        else:
            prop.append(TextNode(str(value)))
        parent.append(prop)


def _value_type(value: object, name: str, node: Optional[ModelNode]) -> str:
    if node is not None:
        node_type = node.model.metamodel.node_type(node.type_name)
        if node_type is not None:
            declaration = node_type.property_decl(name)
            if declaration is not None:
                return declaration.type
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "float"
    return "string"


#: subtree-delta log entries retained past this many pairs start a new
#: epoch instead (consumers fall back to one full walk) — the log exists
#: to make *small* deltas cheap, not to replay unbounded history.
_DELTA_LOG_CAP = 1024


class IncrementalExporter:
    """Maintains a live XML export of a model under mutation.

    The first :meth:`export` call builds the full document (exactly
    :func:`export_model`); afterwards the exporter listens to the model's
    mutation events and, on the next :meth:`export`, re-exports only the
    *dirty* ``<node>``/``<relation>`` subtrees — replacing, inserting, or
    removing the affected elements in place.  A point mutation therefore
    costs one subtree, not a whole-model rebuild.

    The maintained document is kept byte-identical to a fresh
    :func:`export_model` (the property-based suite asserts this under
    random mutation sequences).  The invariant that makes it work: the
    root's children are exactly the node elements in ``model.nodes`` dict
    order followed by the relation elements in ``model.relations`` order,
    and Python dicts mutate order the same way the exporter does (deletes
    keep order, inserts append).
    """

    def __init__(self, model: Model):
        self.model = model
        self._document: Optional[DocumentNode] = None
        self._node_elements: Dict[str, ElementNode] = {}
        self._relation_elements: Dict[str, ElementNode] = {}
        # dicts used as ordered sets: iteration order = event order, which
        # for brand-new entities equals their model-dict insertion order.
        self._dirty_nodes: Dict[str, None] = {}
        self._dirty_relations: Dict[str, None] = {}
        self._removed_nodes: Dict[str, None] = {}
        self._removed_relations: Dict[str, None] = {}
        self._needs_full = True
        #: ``model.generation`` as of the current document's state.
        self.generation = -1
        self.full_exports = 0
        self.subtree_exports = 0
        # the subtree-delta log: ``(old_element, new_element)`` pairs (None
        # for pure inserts/removals) in application order, all direct
        # children of the root.  Export-time consumers — the statistics
        # catalog — subtract the old subtree and add the new one instead of
        # re-walking the document.  A full rebuild starts a new epoch;
        # cursors from an older epoch answer None.
        self._delta_log: List[Tuple[Optional[ElementNode], Optional[ElementNode]]] = []
        self._delta_epoch = 0
        model.add_listener(self._observe)

    # -- event intake -----------------------------------------------------------

    def _observe(self, kind: str, entity_id: str) -> None:
        # NB: an add after a remove does *not* cancel the pending removal:
        # re-adding an id moves it to the end of its dict, so the old
        # element must be physically removed and a fresh one appended.
        if kind in ("node-added", "node-changed"):
            self._dirty_nodes[entity_id] = None
        elif kind == "node-removed":
            self._removed_nodes[entity_id] = None
            self._dirty_nodes.pop(entity_id, None)
        elif kind in ("relation-added", "relation-changed"):
            self._dirty_relations[entity_id] = None
        elif kind == "relation-removed":
            self._removed_relations[entity_id] = None
            self._dirty_relations.pop(entity_id, None)

    def _has_pending(self) -> bool:
        return bool(
            self._dirty_nodes
            or self._dirty_relations
            or self._removed_nodes
            or self._removed_relations
        )

    # -- export -----------------------------------------------------------------

    def export(self) -> DocumentNode:
        """The up-to-date export document (applying any pending changes)."""
        if self._document is None or self._needs_full:
            self._rebuild()
        elif self._has_pending():
            self._apply_pending()
        self.generation = self.model.generation
        return self._document

    def invalidate(self) -> None:
        """Force a full rebuild on the next :meth:`export` call."""
        self._needs_full = True

    def detach(self) -> None:
        """Stop listening to the model (the exporter is then inert)."""
        self.model.remove_listener(self._observe)

    def stats(self) -> Dict[str, int]:
        return {
            "full_exports": self.full_exports,
            "subtree_exports": self.subtree_exports,
            "generation": self.generation,
        }

    # -- subtree-delta log -------------------------------------------------------

    def delta_cursor(self) -> Tuple[int, int]:
        """An opaque position in the subtree-delta log.

        Take one after reading the export, and pass it to
        :meth:`delta_since` later to get exactly the subtree replacements
        applied in between.
        """
        return (self._delta_epoch, len(self._delta_log))

    def delta_since(
        self, cursor: Optional[Tuple[int, int]]
    ) -> Optional[List[Tuple[Optional[ElementNode], Optional[ElementNode]]]]:
        """The ``(old, new)`` subtree pairs applied since *cursor*.

        Returns ``None`` when the log does not cover the span — a full
        rebuild happened, the log was truncated at its cap, or the cursor
        is from an older epoch — and the caller must re-derive whatever it
        maintains from the document itself.
        """
        if cursor is None:
            return None
        epoch, start = cursor
        if epoch != self._delta_epoch or start > len(self._delta_log):
            return None
        return self._delta_log[start:]

    def _delta_break(self) -> None:
        """Invalidate every outstanding delta cursor (rebuild/cap/rename)."""
        self._delta_epoch += 1
        self._delta_log.clear()

    def _clear_pending(self) -> None:
        self._dirty_nodes.clear()
        self._dirty_relations.clear()
        self._removed_nodes.clear()
        self._removed_relations.clear()

    def _rebuild(self) -> None:
        self._document = export_model(self.model)
        root = self._document.document_element()
        self._node_elements = dict(
            zip(self.model.nodes.keys(), root.child_elements("node"))
        )
        self._relation_elements = dict(
            zip(self.model.relations.keys(), root.child_elements("relation"))
        )
        self._needs_full = False
        self.full_exports += 1
        self._delta_break()
        self._clear_pending()

    def _apply_pending(self) -> None:
        root = self._document.document_element()
        if root.get_attribute("name") != self.model.name:
            # a root-attribute change is not a subtree pair: break the log
            # so delta consumers re-derive from the document once.
            root.set_attribute("name", self.model.name)
            self._delta_break()
        for node_id in self._removed_nodes:
            element = self._node_elements.pop(node_id, None)
            if element is not None:
                root.remove(element)
                self._delta_log.append((element, None))
        for relation_id in self._removed_relations:
            element = self._relation_elements.pop(relation_id, None)
            if element is not None:
                root.remove(element)
                self._delta_log.append((element, None))
        for node_id in self._dirty_nodes:
            node = self.model.nodes.get(node_id)
            if node is None:
                continue  # created and removed between exports
            fresh = _export_node(node)
            old = self._node_elements.get(node_id)
            if old is not None:
                root.replace_child(old, [fresh])
            else:
                # new nodes go at the end of the node block (before the
                # first relation element), mirroring dict-append order.
                root.insert(len(self._node_elements), fresh)
            self._delta_log.append((old, fresh))
            self._node_elements[node_id] = fresh
            self.subtree_exports += 1
        for relation_id in self._dirty_relations:
            relation = self.model.relations.get(relation_id)
            if relation is None:
                continue
            fresh = _export_relation(relation)
            old = self._relation_elements.get(relation_id)
            if old is not None:
                root.replace_child(old, [fresh])
            else:
                root.append(fresh)
            self._delta_log.append((old, fresh))
            self._relation_elements[relation_id] = fresh
            self.subtree_exports += 1
        if len(self._delta_log) > _DELTA_LOG_CAP:
            self._delta_break()
        self._clear_pending()


def export_metamodel(metamodel: Metamodel) -> ElementNode:
    """Export a metamodel's type hierarchies as XML.

    The XQuery document generator needs this to answer subtype questions
    (``Superuser`` is a ``User``) over the exported model, where nodes only
    carry their concrete type name::

        <metamodel name="it-architecture" label-property="label">
          <node-type name="User" parent="Person"/>
          <relation-type name="favors" parent="likes"/>
        </metamodel>
    """
    root = ElementNode("metamodel")
    root.set_attribute("name", metamodel.name)
    root.set_attribute("label-property", metamodel.label_property)
    for node_type in metamodel.node_types.values():
        entry = ElementNode("node-type")
        entry.set_attribute("name", node_type.name)
        if node_type.parent is not None:
            entry.set_attribute("parent", node_type.parent.name)
        root.append(entry)
    for relation_type in metamodel.relation_types.values():
        entry = ElementNode("relation-type")
        entry.set_attribute("name", relation_type.name)
        if relation_type.parent is not None:
            entry.set_attribute("parent", relation_type.parent.name)
        root.append(entry)
    for advisory in metamodel.advisories:
        entry = ElementNode("advisory")
        entry.set_attribute("kind", advisory.kind)
        entry.set_attribute("type", advisory.type)
        if advisory.property is not None:
            entry.set_attribute("property", advisory.property)
        if advisory.message:
            entry.set_attribute("message", advisory.message)
        root.append(entry)
    return root


class ModelImportError(ValueError):
    """The XML is not a well-formed AWB model export."""


def import_model(
    document: Node, metamodel: Metamodel, apply_defaults: bool = True
) -> Model:
    """Rebuild a model from its XML export.

    ``apply_defaults=False`` makes the import *faithful* rather than
    constructive: nodes carry exactly the properties the export recorded,
    and declared defaults deleted from the source model stay deleted.  The
    serving tier's worker replicas import this way so their query results
    match the front-end's live model byte for byte.
    """
    root = (
        document.document_element()
        if isinstance(document, DocumentNode)
        else document
    )
    if root is None or root.name != "awb-model":
        raise ModelImportError("expected an <awb-model> document")
    model = Model(metamodel, name=root.get_attribute("name") or "model")
    for node_element in root.child_elements("node"):
        node_id = node_element.get_attribute("id")
        type_name = node_element.get_attribute("type")
        if node_id is None or type_name is None:
            raise ModelImportError("<node> requires id and type attributes")
        node = model.create_node(
            type_name, node_id=node_id, apply_defaults=apply_defaults
        )
        for name, value in _read_properties(node_element):
            node.set(name, value)
    for relation_element in root.child_elements("relation"):
        source_id = relation_element.get_attribute("source")
        target_id = relation_element.get_attribute("target")
        type_name = relation_element.get_attribute("type")
        relation_id = relation_element.get_attribute("id")
        if None in (source_id, target_id, type_name, relation_id):
            raise ModelImportError(
                "<relation> requires id, type, source and target attributes"
            )
        try:
            source = model.node(source_id)
            target = model.node(target_id)
        except KeyError as exc:
            raise ModelImportError(f"relation endpoint {exc} is not in the model") from exc
        relation = model.connect(source, type_name, target, relation_id=relation_id)
        for name, value in _read_properties(relation_element):
            relation.properties[name] = value
    return model


def import_model_text(
    text: str, metamodel: Metamodel, apply_defaults: bool = True
) -> Model:
    return import_model(parse_document(text), metamodel, apply_defaults=apply_defaults)


def _read_properties(parent: ElementNode):
    for prop in parent.child_elements("property"):
        name = prop.get_attribute("name")
        if name is None:
            raise ModelImportError("<property> requires a name attribute")
        type_name = prop.get_attribute("type") or "string"
        if type_name == "html":
            wrapper = prop.first_child_element("html-value")
            if wrapper is not None:
                value = "".join(serialize(child) for child in wrapper.children)
            else:
                value = prop.string_value()
        elif type_name == "integer":
            value = int(prop.string_value().strip() or 0)
        elif type_name == "float":
            value = float(prop.string_value().strip() or 0.0)
        elif type_name == "boolean":
            value = prop.string_value().strip() == "true"
        else:
            value = prop.string_value()
        yield name, value
