"""Multi-document collections with full-text search.

The paper's engine queries exactly one exported AWB document; this package
is the repository's next scenario class — a persisted store of *many*
documents (AWB exports plus generated XDM documents), addressable from
queries through ``fn:doc($uri)`` / ``fn:collection($uri)``, with an
inverted full-text index behind ``ft:search`` / ``ft:score`` / ``ft:kwic``
builtins modeled on eXist-db's keyword-search-with-KWIC idiom.

Layout:

* :mod:`.fulltext` — unicode tokenizer, positional inverted index with
  incremental maintenance, and the brute-force phrase scan the index is
  differentially pinned against;
* :mod:`.kwic` — keyword-in-context snippet extraction;
* :mod:`.store` — :class:`DocumentStore`: the persisted uri → document
  map with per-collection generations and index maintenance hooked into
  the update pipeline;
* :mod:`.partition` — crc32 document partitioning and routing proofs
  (uri-addressed ``fn:doc`` is provably single-shard, ``fn:collection``
  and ``ft:search`` scatter);
* :mod:`.service` — :class:`SearchService`: the request-level front-end
  with a result cache keyed on collection generation, thread- or
  process-sharded execution, and scatter/gather merge;
* :mod:`.worker` — the shard worker process for ``mode="process"``.
"""

from __future__ import annotations

from .fulltext import InvertedIndex, count_phrase, tokenize
from .kwic import kwic_snippets
from .partition import SearchRoute, doc_shard, route_request
from .service import SearchRequest, SearchService
from .store import DocumentStore, validate_uri

__all__ = [
    "DocumentStore",
    "validate_uri",
    "InvertedIndex",
    "SearchRequest",
    "SearchRoute",
    "SearchService",
    "count_phrase",
    "doc_shard",
    "kwic_snippets",
    "route_request",
    "tokenize",
]
