"""Tokenizer, positional inverted index, and the brute-force phrase scan.

The index is the eXist-db shape: token → document → sorted positions
(token ordinals, not character offsets), so a multi-token phrase is an
adjacency join over position lists.  Scoring is deliberately the dumbest
thing that is *deterministic and shard-independent*: the number of phrase
occurrences in the document.  No idf, no length normalization — a
collection-frequency score would make a shard's partial result depend on
the other shards' contents and break both the scatter/gather merge and
the indexed-vs-brute-force byte-identity the oracle pins.

Everything the index answers is also answerable by :func:`count_phrase`
over the raw text; the differential oracle and E22 hold the two paths to
byte-identical results.
"""

from __future__ import annotations

import re
from collections.abc import Mapping
from typing import Dict, Iterable, Iterator, List, Tuple

__all__ = [
    "DocumentFrequencyView",
    "InvertedIndex",
    "count_phrase",
    "phrase_positions",
    "tokenize",
    "tokens_of",
]

#: ``\w+`` under ``re.UNICODE``: letters (any script), digits, underscore.
#: Python strings are code points, so multi-byte characters tokenize the
#: same way regardless of their UTF-8 length.
_TOKEN_RE = re.compile(r"\w+", re.UNICODE)


def tokenize(text: str) -> List[Tuple[str, int, int]]:
    """``(token, start, end)`` triples; tokens are casefolded.

    ``start``/``end`` are character offsets into *text* (KWIC needs them);
    casefolding rather than ``lower()`` so e.g. ``"Straße"`` matches
    ``"STRASSE"`` the way a search user expects.
    """
    return [
        (match.group().casefold(), match.start(), match.end())
        for match in _TOKEN_RE.finditer(text)
    ]


def tokens_of(text: str) -> List[str]:
    """Just the casefolded tokens, in order."""
    return [match.group().casefold() for match in _TOKEN_RE.finditer(text)]


def phrase_positions(tokens: List[str], phrase_tokens: List[str]) -> List[int]:
    """Start ordinals (token indexes) where *phrase_tokens* occurs.

    Overlapping occurrences all count: ``a a a`` contains ``a a`` twice.
    """
    if not phrase_tokens:
        return []
    k = len(phrase_tokens)
    return [
        i
        for i in range(len(tokens) - k + 1)
        if tokens[i : i + k] == phrase_tokens
    ]


def count_phrase(text: str, phrase: str) -> int:
    """Occurrences of *phrase* in *text* — the index-free reference path."""
    return len(phrase_positions(tokens_of(text), tokens_of(phrase)))


class DocumentFrequencyView(Mapping):
    """A live ``token → document frequency`` mapping over an index.

    df is ``len(postings[token])``, which add/remove already keep exact —
    this view exposes it without materializing the vocabulary, so a
    statistics refresh after a write stays O(changed document) instead of
    O(corpus vocabulary).
    """

    __slots__ = ("_index",)

    def __init__(self, index: "InvertedIndex") -> None:
        self._index = index

    def __getitem__(self, token: str) -> int:
        entry = self._index._postings.get(token)
        if entry is None:
            raise KeyError(token)
        return len(entry)

    def __contains__(self, token: object) -> bool:
        return token in self._index._postings

    def __iter__(self) -> Iterator[str]:
        return iter(self._index._postings)

    def __len__(self) -> int:
        return len(self._index._postings)


class InvertedIndex:
    """Positional inverted index over ``uri → text``, incrementally kept.

    ``add``/``remove``/``replace`` touch only the named document's
    postings — O(document), never O(corpus) — which is the property the
    rebuild-vs-incremental property test pins after random update
    scripts.
    """

    __slots__ = ("_postings", "_doc_terms", "_doc_lengths", "maintenance_ops")

    def __init__(self) -> None:
        #: token → uri → sorted token ordinals where the token occurs
        self._postings: Dict[str, Dict[str, List[int]]] = {}
        #: uri → the distinct tokens it contributed (for O(doc) removal)
        self._doc_terms: Dict[str, Tuple[str, ...]] = {}
        #: uri → token count (reserved for future length-aware ranking)
        self._doc_lengths: Dict[str, int] = {}
        #: incremental add/remove operations applied (observability)
        self.maintenance_ops = 0

    # -- maintenance -------------------------------------------------------

    def add(self, uri: str, text: str) -> None:
        """Index *uri*; replaces any previous postings for it."""
        if uri in self._doc_terms:
            self.remove(uri)
        tokens = tokens_of(text)
        by_token: Dict[str, List[int]] = {}
        for position, token in enumerate(tokens):
            by_token.setdefault(token, []).append(position)
        for token, positions in by_token.items():
            self._postings.setdefault(token, {})[uri] = positions
        self._doc_terms[uri] = tuple(sorted(by_token))
        self._doc_lengths[uri] = len(tokens)
        self.maintenance_ops += 1

    def remove(self, uri: str) -> None:
        """Drop *uri*'s postings; a no-op for an unindexed uri."""
        terms = self._doc_terms.pop(uri, None)
        if terms is None:
            return
        for token in terms:
            entry = self._postings.get(token)
            if entry is not None:
                entry.pop(uri, None)
                if not entry:
                    del self._postings[token]
        self._doc_lengths.pop(uri, None)
        self.maintenance_ops += 1

    @classmethod
    def rebuild(cls, texts: Iterable[Tuple[str, str]]) -> "InvertedIndex":
        """A fresh index over ``(uri, text)`` pairs — the from-scratch path."""
        index = cls()
        for uri, text in texts:
            index.add(uri, text)
        return index

    # -- queries -----------------------------------------------------------

    def search(self, phrase: str) -> Dict[str, int]:
        """``uri → occurrence count`` for documents containing *phrase*."""
        phrase_tokens = tokens_of(phrase)
        if not phrase_tokens:
            return {}
        first = self._postings.get(phrase_tokens[0])
        if first is None:
            return {}
        if len(phrase_tokens) == 1:
            return {uri: len(positions) for uri, positions in first.items()}
        # adjacency join: candidates must hold every token, then positions
        # must line up consecutively.
        candidates = set(first)
        for token in phrase_tokens[1:]:
            entry = self._postings.get(token)
            if entry is None:
                return {}
            candidates &= set(entry)
            if not candidates:
                return {}
        scores: Dict[str, int] = {}
        for uri in candidates:
            starts = set(first[uri])
            for offset, token in enumerate(phrase_tokens[1:], start=1):
                positions = self._postings[token][uri]
                starts &= {position - offset for position in positions}
                if not starts:
                    break
            if starts:
                scores[uri] = len(starts)
        return scores

    def document_frequency(self, token: str) -> int:
        entry = self._postings.get(token.casefold())
        return len(entry) if entry is not None else 0

    @property
    def doc_count(self) -> int:
        return len(self._doc_terms)

    @property
    def term_count(self) -> int:
        return len(self._postings)

    # -- identity ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Tuple[int, ...]]]:
        """A canonical, order-independent image of the postings.

        The property test compares the incrementally-maintained index's
        snapshot against a from-scratch rebuild's — dict insertion order
        (which differs between the two histories) must not leak in.
        """
        return {
            token: {uri: tuple(positions) for uri, positions in sorted(entry.items())}
            for token, entry in sorted(self._postings.items())
        }

    def stats(self) -> Dict[str, int]:
        return {
            "documents": self.doc_count,
            "terms": self.term_count,
            "maintenance_ops": self.maintenance_ops,
        }
