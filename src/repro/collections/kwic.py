"""Keyword-in-context snippet extraction.

Modeled on eXist-db's ``kwic`` module as used by the exemplar
``search.xql``: every match renders as a fixed-width window — up to
``width`` characters of preceding text, the matched phrase, up to
``width`` characters of following text.  eXist's defaults (40 chars per
side for table display, 120 for summaries) are kept.

Matches are found over the *tokenized* text (the same tokenizer the
index uses), so a snippet exists exactly when ``ft:search`` would count
an occurrence — including overlapping and adjacent matches, each of
which gets its own snippet.  Offsets are character offsets on the
Python string, so multi-byte characters never split.
"""

from __future__ import annotations

from typing import List, Tuple

from .fulltext import tokenize, tokens_of

__all__ = ["CHARS_KWIC", "CHARS_SUMMARY", "kwic_snippets"]

#: eXist-db's display widths (characters of context on each side).
CHARS_KWIC = 40
CHARS_SUMMARY = 120

#: snippet delimiters: unlikely in document text, stable to serialize.
_OPEN, _CLOSE = "«", "»"  # « »
_ELLIPSIS = "…"  # …


def kwic_snippets(text: str, phrase: str, width: int = CHARS_KWIC) -> List[str]:
    """One ``before«match»after`` string per occurrence of *phrase*.

    ``before``/``after`` are at most *width* characters, with an ellipsis
    marking truncation; a match at the document start or end simply has
    an empty (un-ellipsized) side.  Zero occurrences — including an
    empty or token-free phrase — yield an empty list.
    """
    spans = match_spans(text, phrase)
    snippets = []
    for start, end in spans:
        before = text[max(0, start - width) : start]
        if start - width > 0:
            before = _ELLIPSIS + before
        after = text[end : end + width]
        if end + width < len(text):
            after = after + _ELLIPSIS
        snippets.append(f"{before}{_OPEN}{text[start:end]}{_CLOSE}{after}")
    return snippets


def match_spans(text: str, phrase: str) -> List[Tuple[int, int]]:
    """Character ``(start, end)`` spans of every phrase occurrence.

    The span runs from the first phrase token's start to the last one's
    end, so whatever separated the tokens in the document (spaces,
    newlines, punctuation) is preserved inside the highlighted match.
    """
    phrase_tokens = tokens_of(phrase)
    if not phrase_tokens:
        return []
    doc_tokens = tokenize(text)
    k = len(phrase_tokens)
    spans = []
    for i in range(len(doc_tokens) - k + 1):
        if [token for token, _, _ in doc_tokens[i : i + k]] == phrase_tokens:
            spans.append((doc_tokens[i][1], doc_tokens[i + k - 1][2]))
    return spans
