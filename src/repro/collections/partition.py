"""Document partitioning and routing proofs for the search tier.

The serving tier's :mod:`repro.serving.partition` proves routing
decisions for *calculus* queries; this module is the same discipline for
the collection workload.  Documents partition by ``crc32(uri) % shards``
(the same stable hash family the node-id partitioner uses), so:

* a uri-addressed ``fn:doc`` request is *provably* single-shard — the
  owner is a pure function of the uri, no catalog needed;
* ``fn:collection`` and ``ft:search`` requests touch an unknowable
  subset of members and must scatter, with the front-end merging the
  per-shard partials by ``(score desc, uri)``.

Every :class:`SearchRoute` carries a human-auditable ``reason`` string,
mirroring the serving tier's ``Route`` proofs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

__all__ = ["SearchRoute", "doc_shard", "route_request"]


def doc_shard(uri: str, shards: int) -> int:
    """The shard owning *uri*: stable, spread, and python-version-proof."""
    if shards <= 1:
        return 0
    return zlib.crc32(uri.encode("utf-8")) % shards


@dataclass(frozen=True)
class SearchRoute:
    """A routing decision plus the proof it rests on."""

    kind: str  # "single" | "scatter"
    shard: Optional[int]  # set iff kind == "single"
    reason: str

    def describe(self) -> str:
        target = f"shard {self.shard}" if self.kind == "single" else "all shards"
        return f"{self.kind} -> {target} ({self.reason})"


def route_request(request, shards: int) -> SearchRoute:
    """Route one :class:`~repro.collections.service.SearchRequest`.

    ``doc`` requests go to the uri's owner; everything else scatters —
    unless the tier has one shard, where every request is trivially
    single-shard.
    """
    if shards <= 1:
        return SearchRoute("single", 0, "one-shard-tier")
    if request.kind == "doc":
        return SearchRoute(
            "single",
            doc_shard(request.uri, shards),
            f"doc-uri-owner crc32({request.uri!r}) % {shards}",
        )
    return SearchRoute(
        "scatter", None, f"{request.kind}-over-collection {request.collection!r}"
    )
