"""The search front-end: requests, routing, caching, scatter/gather.

A :class:`SearchRequest` is the service's little language — ``doc``
fetches, ``collection`` listings, ``search`` hit lists, and ``kwic``
snippet pages — and each request *compiles to an XQuery program* over
the collection builtins (mirroring how the calculus service compiles
queries to XQuery).  The engine is the only evaluator; the service adds
the serving-tier concerns:

* **routing with proofs** — uri-addressed ``doc`` requests go to the
  crc32 owner shard, ``collection``/``search``/``kwic`` scatter, and
  every decision carries its reason (:mod:`.partition`);
* **scatter/gather** — per-shard partials are merge-sorted by
  ``(score desc, uri asc)``, the same key the per-shard ``ft:search``
  ordered by, so sharded bytes equal unsharded bytes;
* **a result cache keyed on collection generation** — the cache key is
  ``(request key, generation of the touched scope)``, where a ``doc``
  request's scope is its document and anything else's is its collection.
  A write under ``docs/a/`` therefore leaves cached answers about
  ``notes/`` warm, which is what keeps the E22 95/5 read/write mix
  warm without an invalidation sweep;
* **process isolation** (``mode="process"``) — real shard workers behind
  pipes, with worker failures crossing back as structured
  ``RemoteQueryError`` (``FODC0002`` included).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from itertools import count
from typing import Dict, List, Optional, Tuple

from ..querycalc.service.errors import RemoteQueryError
from ..xquery import EngineConfig, XQueryEngine, serialize_result
from ..xquery.algebra import StatisticsCatalog
from .kwic import CHARS_KWIC
from .partition import SearchRoute, doc_shard, route_request
from .store import DocumentStore, collection_prefixes, normalize_collection
from .worker import (
    CollectionWorkerConfig,
    collection_worker_main,
    extract_rows,
    merge_rows,
)

__all__ = ["SearchRequest", "SearchResult", "SearchService"]

REQUEST_KINDS = ("doc", "collection", "search", "kwic")

_BOOT_TIMEOUT = 30.0
_REQUEST_TIMEOUT = 60.0


def _lit(value: str) -> str:
    """An XQuery string literal (quotes escape by doubling)."""
    return '"' + value.replace('"', '""') + '"'


@dataclass(frozen=True)
class SearchRequest:
    """One request in the service's little language."""

    kind: str
    uri: str = ""
    collection: str = ""
    phrase: str = ""
    width: int = CHARS_KWIC
    limit: int = 0

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ValueError(
                f"unknown request kind {self.kind!r}; expected one of {REQUEST_KINDS}"
            )

    def key(self) -> str:
        """The normalized cache/diagnostic key."""
        if self.kind == "doc":
            return f"doc:{self.uri}"
        collection = normalize_collection(self.collection)
        if self.kind == "collection":
            return f"collection:{collection}:{self.limit}"
        if self.kind == "search":
            return f"search:{collection}:{self.phrase}:{self.limit}"
        return f"kwic:{collection}:{self.phrase}:{self.width}:{self.limit}"

    def source(self) -> str:
        """The XQuery program this request compiles to.

        Hit elements carry ``uri`` and ``score`` attributes so the
        scatter merge can re-sort partials by the exact key the
        per-shard ``ft:search`` ordered by.
        """
        if self.kind == "doc":
            return f"fn:doc({_lit(self.uri)})"
        collection = _lit(normalize_collection(self.collection))
        if self.kind == "collection":
            hits = f"fn:collection({collection})"
            if self.limit:
                hits = f"subsequence({hits}, 1, {self.limit})"
            return (
                f"for $d in {hits}\n"
                "return element member {\n"
                "  attribute uri { ft:uri($d) },\n"
                "  $d\n"
                "}"
            )
        phrase = _lit(self.phrase)
        hits = f"ft:search({collection}, {phrase})"
        if self.limit:
            hits = f"subsequence({hits}, 1, {self.limit})"
        if self.kind == "search":
            return (
                f"for $d in {hits}\n"
                "return element hit {\n"
                "  attribute uri { ft:uri($d) },\n"
                f"  attribute score {{ ft:score($d, {phrase}) }}\n"
                "}"
            )
        return (
            f"for $d in {hits}\n"
            "return element kwic {\n"
            "  attribute uri { ft:uri($d) },\n"
            f"  attribute score {{ ft:score($d, {phrase}) }},\n"
            f"  for $s in ft:kwic($d, {phrase}, {self.width})\n"
            "  return element snippet { $s }\n"
            "}"
        )


@dataclass
class SearchResult:
    """One answered request: payload text plus serving metadata."""

    text: str
    cached: bool
    route: SearchRoute
    generation: int


class _WorkerHandle:
    """One shard worker process plus the parent end of its pipe."""

    def __init__(self, ctx, config: CollectionWorkerConfig):
        self.shard = config.shard
        self._lock = threading.Lock()
        self._req_ids = count()
        self._poisoned = False
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=collection_worker_main, args=(child_conn, config), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        if not self.conn.poll(_BOOT_TIMEOUT):
            self.process.terminate()
            raise RuntimeError(f"collection worker {self.shard} failed to boot")
        status, _, payload = self.conn.recv()
        if status != "ok":
            self.process.join(timeout=5.0)
            raise RemoteQueryError(payload)

    def request(self, op: str, payload: dict, timeout: float = _REQUEST_TIMEOUT):
        with self._lock:
            if self._poisoned:
                raise RuntimeError(
                    f"collection worker {self.shard} broke protocol; restart the service"
                )
            req_id = next(self._req_ids)
            self.conn.send((op, req_id, payload))
            deadline = time.monotonic() + timeout
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self.conn.poll(remaining):
                    # the worker may still answer after the deadline; that
                    # stale reply is drained (reply_id < expected) by the
                    # next request instead of wedging the handle.
                    raise RuntimeError(
                        f"collection worker {self.shard} missed its "
                        f"{timeout:.1f}s deadline"
                    )
                status, reply_id, body = self.conn.recv()
                if reply_id == req_id:
                    break
                if isinstance(reply_id, int) and reply_id < req_id:
                    continue  # late answer to a request that timed out
                self._poisoned = True
                raise RuntimeError(
                    f"collection worker {self.shard} answered {reply_id!r}, "
                    f"expected {req_id}"
                )
        if status == "err":
            raise RemoteQueryError(body)
        return body

    def close(self) -> None:
        try:
            self.request("shutdown", {}, timeout=5.0)
        except Exception:
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()


class SearchService:
    """Request-level front-end over one authoritative DocumentStore.

    ``mode="thread"`` keeps shard replicas in-process (sub-stores of the
    authoritative store); ``mode="process"`` runs each shard in a real
    worker process.  Either way the authoritative store takes every
    write first — single-writer, shared-nothing readers — and replicas
    see the write as a per-document index patch, never a rebuild.
    """

    def __init__(
        self,
        store: DocumentStore,
        shards: int = 1,
        mode: str = "thread",
        backend: str = "algebra",
        result_cache_size: int = 512,
    ):
        if mode not in ("thread", "process"):
            raise ValueError(f"mode must be 'thread' or 'process', not {mode!r}")
        self.store = store
        self.shards = max(1, shards)
        self.mode = mode
        self.backend = backend
        self.engine = XQueryEngine(EngineConfig(backend=backend))
        #: guards service bookkeeping only — result cache, metrics,
        #: statistics reference.  Never held across an evaluation, so
        #: concurrent reads overlap instead of queueing on the service.
        self._lock = threading.RLock()
        #: serializes writers (and ``evaluate_fresh``, which temporarily
        #: reconfigures the authoritative store) against each other.
        self._write_gate = threading.RLock()
        #: writes bump this (under ``_lock``) once when they start and
        #: once when they finish; a read that overlaps a write — odd
        #: epoch at start, or any movement by the end — returns its text
        #: but skips the cache insert, so a half-replicated state can
        #: never be cached under the post-write generation.
        self._write_epoch = 0
        self._results: "OrderedDict[Tuple[str, int], str]" = OrderedDict()
        self._result_cache_size = result_cache_size
        self._statistics = self._fresh_statistics()
        self.metrics: Dict[str, int] = {
            "requests": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "executed": 0,
            "errors": 0,
            "single": 0,
            "scatter": 0,
            "writes": 0,
        }
        shard_uris: List[List[str]] = [[] for _ in range(self.shards)]
        for uri in store.uris():
            shard_uris[doc_shard(uri, self.shards)].append(uri)
        self._workers: List[_WorkerHandle] = []
        self._shard_stores: List[DocumentStore] = []
        if mode == "process":
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - platform without fork
                ctx = multiprocessing.get_context("spawn")
            known = store.known_collections()
            for shard in range(self.shards):
                config = CollectionWorkerConfig(
                    shard=shard,
                    shards=self.shards,
                    texts=[(uri, store.text_of(uri)) for uri in shard_uris[shard]],
                    collections=known,
                    use_index=store.use_index,
                    backend=backend,
                )
                self._workers.append(_WorkerHandle(ctx, config))
        elif self.shards == 1:
            # one shard in thread mode is the store itself: no replica copy.
            self._shard_stores = [store]
        else:
            self._shard_stores = [store.subset(uris) for uris in shard_uris]
        #: per-replica locks (thread mode): a read of shard *i* and the
        #: write patching shard *i* serialize, different shards overlap.
        self._replica_locks = [threading.Lock() for _ in self._shard_stores]
        #: guards direct evaluation over the authoritative store; when
        #: shard 0 *is* the store (one-shard thread mode) they share a lock.
        if self._shard_stores and self._shard_stores[0] is store:
            self._authoritative_lock = self._replica_locks[0]
        else:
            self._authoritative_lock = threading.Lock()
        self._closed = False

    # -- statistics --------------------------------------------------------

    def _fresh_statistics(self) -> StatisticsCatalog:
        catalog = StatisticsCatalog()
        catalog.set_fulltext(self.store.fulltext_stats())
        return catalog

    # -- reads -------------------------------------------------------------

    def scope_generation(self, request: SearchRequest) -> int:
        """The generation of the state this request can observe.

        ``doc`` requests depend only on their document; everything else
        depends on the touched collection.  This is the cache key's
        freshness half: a write bumps exactly the scopes it changed.
        """
        if request.kind == "doc":
            return self.store.document_generation(request.uri)
        return self.store.collection_generation(request.collection)

    def run(self, request: SearchRequest) -> SearchResult:
        """Answer one request (cache → route → execute → cache).

        The service lock covers only the cache probe and the post-run
        insert; the evaluation itself runs unlocked, so N clients drive
        N shard pipes (or replica locks) concurrently instead of
        queueing behind one global lock.
        """
        with self._lock:
            self.metrics["requests"] += 1
            generation = self.scope_generation(request)
            route = route_request(request, self.shards)
            key = (request.key(), generation)
            cached = self._results.get(key)
            if cached is not None:
                self._results.move_to_end(key)
                self.metrics["cache_hits"] += 1
                return SearchResult(cached, True, route, generation)
            self.metrics[route.kind] += 1
            epoch = self._write_epoch
            statistics = self._statistics
        try:
            if route.kind == "single":
                text = self._run_single(request, route.shard, statistics)
            else:
                text = self._run_scatter(request, statistics)
        except Exception:
            with self._lock:
                self.metrics["errors"] += 1
            raise
        with self._lock:
            self.metrics["cache_misses"] += 1
            self.metrics["executed"] += 1
            # cache only write-quiescent runs: an evaluation that
            # overlapped a write may have seen a half-replicated state.
            if epoch % 2 == 0 and self._write_epoch == epoch:
                self._results[key] = text
                if len(self._results) > self._result_cache_size:
                    self._results.popitem(last=False)
            return SearchResult(text, False, route, generation)

    def _run_single(
        self, request: SearchRequest, shard: int, statistics: StatisticsCatalog
    ) -> str:
        if self.mode == "process":
            body = self._workers[shard].request(
                "run",
                {"source": request.source(), "structured": False, "key": request.key()},
            )
            return body["text"]
        with self._replica_locks[shard]:
            result = self._execute(request, self._shard_stores[shard], statistics)
        return serialize_result(result)

    def _run_scatter(
        self, request: SearchRequest, statistics: StatisticsCatalog
    ) -> str:
        partials: List[List[Tuple[int, str, str]]] = []
        if self.mode == "process":
            payload = {
                "source": request.source(),
                "structured": True,
                "key": request.key(),
            }
            for worker in self._workers:
                partials.append(
                    [tuple(row) for row in worker.request("run", payload)["rows"]]
                )
        else:
            for shard, shard_store in enumerate(self._shard_stores):
                with self._replica_locks[shard]:
                    rows = extract_rows(
                        self._execute(request, shard_store, statistics)
                    )
                partials.append(rows)
        return merge_rows(partials, limit=request.limit)

    def _execute(
        self,
        request: SearchRequest,
        store: DocumentStore,
        statistics: Optional[StatisticsCatalog] = None,
    ):
        compiled = self.engine.compile(request.source())
        return compiled.run(
            collections=store,
            statistics=statistics if statistics is not None else self._statistics,
        )

    def evaluate_fresh(
        self, request: SearchRequest, use_index: Optional[bool] = None
    ) -> str:
        """Bypass cache and shards: one unsharded run over the live store.

        ``use_index=False`` is the brute-force parity reference the
        oracle and E22 compare every served byte against.
        """
        with self._write_gate, self._authoritative_lock:
            previous = self.store.use_index
            if use_index is not None:
                self.store.use_index = use_index
            try:
                result = self.engine.compile(request.source()).run(
                    collections=self.store, statistics=self._statistics
                )
            finally:
                self.store.use_index = previous
            return serialize_result(result)

    # -- writes ------------------------------------------------------------

    def put_text(self, uri: str, text: str) -> None:
        """Write one document; replicas patch that document only."""
        with self._write_gate:
            self._begin_write()
            ok = False
            try:
                new_prefixes = self._new_prefixes(uri)
                with self._authoritative_lock:
                    self.store.put_text(uri, text)
                self._replicate_put(uri, new_prefixes)
                ok = True
            finally:
                self._end_write(ok)

    def delete(self, uri: str) -> None:
        with self._write_gate:
            self._begin_write()
            ok = False
            try:
                with self._authoritative_lock:
                    self.store.remove(uri)
                if self.mode == "process":
                    self._owner(uri).request("delete", {"uri": uri})
                elif self._shard_stores and self._shard_stores[0] is not self.store:
                    shard = doc_shard(uri, self.shards)
                    with self._replica_locks[shard]:
                        self._shard_stores[shard].remove(uri)
                ok = True
            finally:
                self._end_write(ok)

    def apply_update(self, uri: str, script: str):
        """Run an update-language script against a model-backed document.

        The authoritative store applies it through the incremental
        update/export pipeline; replicas replay the *result* (the
        patched document text), so their index maintenance is the same
        per-document patch.
        """
        with self._write_gate:
            self._begin_write()
            ok = False
            try:
                new_prefixes = self._new_prefixes(uri)
                with self._authoritative_lock:
                    result = self.store.apply_update(uri, script)
                self._replicate_put(uri, new_prefixes)
                ok = True
                return result
            finally:
                self._end_write(ok)

    def _new_prefixes(self, uri: str) -> List[str]:
        """The collection prefixes this write is about to create."""
        return [
            prefix
            for prefix in collection_prefixes(uri)
            if prefix not in self.store._collection_gens
        ]

    def _replicate_put(self, uri: str, new_prefixes: List[str]) -> None:
        """Patch the owner replica; tell *every* replica about new prefixes.

        Only the owner shard holds the document, but a collection created
        by this write must become *known* tier-wide, or scatter requests
        over it would raise FODC0002 from every non-owner shard.
        """
        if self.mode == "process":
            owner = doc_shard(uri, self.shards)
            self._workers[owner].request(
                "put", {"uri": uri, "text": self.store.text_of(uri)}
            )
            if new_prefixes:
                for shard, worker in enumerate(self._workers):
                    if shard != owner:
                        worker.request("register", {"collections": new_prefixes})
        elif self._shard_stores and self._shard_stores[0] is not self.store:
            owner = doc_shard(uri, self.shards)
            with self._replica_locks[owner]:
                self._shard_stores[owner].put_text(uri, self.store.text_of(uri))
            if new_prefixes:
                for shard, shard_store in enumerate(self._shard_stores):
                    if shard != owner:
                        with self._replica_locks[shard]:
                            shard_store.register_collections(new_prefixes)

    def _owner(self, uri: str) -> _WorkerHandle:
        return self._workers[doc_shard(uri, self.shards)]

    def _begin_write(self) -> None:
        with self._lock:
            self._write_epoch += 1

    def _end_write(self, ok: bool = True) -> None:
        with self._lock:
            self._write_epoch += 1
            if ok:
                self.metrics["writes"] += 1
                # generation-keyed cache entries for the touched scopes are
                # now unreachable; they age out of the LRU, never swept.
                self._statistics = self._fresh_statistics()

    # -- lifecycle ---------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        with self._lock:
            payload: Dict[str, object] = {
                "metrics": dict(self.metrics),
                "mode": self.mode,
                "shards": self.shards,
                "result_cache": len(self._results),
                "store": self.store.stats(),
                "compile_cache": self.engine.cache_info(),
            }
        if self.mode == "process":
            payload["workers"] = [
                worker.request("stats", {}) for worker in self._workers
            ]
        return payload

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for worker in self._workers:
                worker.close()

    def __enter__(self) -> "SearchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
