"""The persisted multi-document store behind ``fn:doc``/``fn:collection``.

A :class:`DocumentStore` maps URIs — POSIX-style relative paths such as
``docs/0001.xml`` — to parsed :class:`~repro.xdm.DocumentNode` trees.  A
*collection* is a ``/``-terminated URI prefix (``docs/``); a document
belongs to every ancestor collection, and ``""`` names the whole store.

Three document flavors coexist:

* plain XDM documents (``put_text``) — parsed once, the raw source kept
  for persistence and for shipping shard replicas to worker processes;
* AWB model exports (``put_model``) — backed by a live
  :class:`~repro.awb.Model` plus the update pipeline's
  :class:`~repro.awb.xml_io.IncrementalExporter`, so an update script
  applied through :meth:`apply_update` re-exports only dirty subtrees
  and re-indexes only that one document;
* persisted documents (``open``/``save``) — one file per URI under a
  directory, plus a ``manifest.json`` carrying the generation counter.

Every mutation bumps the global generation *and* the generation of each
ancestor collection; the service keys its result cache on the latter, so
a write to ``docs/a/`` leaves cached answers over ``notes/`` warm.  The
inverted index is maintained in the same mutation path — add/replace/
remove of one document's postings, never a corpus rebuild.

Missing or unparseable URIs raise :class:`XQueryDynamicError` with the
spec's ``FODC0002`` ("error retrieving resource"), which the service
taxonomy classifies as a structured dynamic error — including across the
process-worker pipe.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

from ..awb import Model
from ..awb.xml_io import IncrementalExporter
from ..xdm import DocumentNode
from ..xmlio import parse_document, serialize
from ..xquery.errors import XQueryDynamicError
from ..xquery.updates.apply import apply_script
from .fulltext import DocumentFrequencyView, InvertedIndex, count_phrase

__all__ = [
    "DocumentStore",
    "collection_prefixes",
    "normalize_collection",
    "validate_uri",
]

_MANIFEST = "manifest.json"


def validate_uri(uri: str) -> None:
    """Reject URIs that cannot be stored (or persisted) safely.

    ``save``/``open`` map URIs straight onto filesystem paths under the
    store directory, so a URI must be a clean relative POSIX path: no
    empty/``.``/``..`` segments (no escaping the directory), no leading
    slash, no backslashes, and not the reserved manifest name.
    """
    reason = None
    if not uri:
        reason = "empty"
    elif uri.startswith("/"):
        reason = "absolute path"
    elif uri.endswith("/"):
        reason = "trailing '/' names a collection, not a document"
    elif "\\" in uri:
        reason = "backslash"
    elif uri == _MANIFEST:
        reason = f"reserved store name {_MANIFEST!r}"
    elif any(segment in ("", ".", "..") for segment in uri.split("/")):
        reason = "empty, '.', or '..' path segment"
    if reason is not None:
        raise XQueryDynamicError(
            f"document URI {uri!r} is not storable: {reason}", code="FODC0002"
        )


def normalize_collection(uri: str) -> str:
    """Collection URIs are ``/``-terminated prefixes; ``""`` is everything."""
    uri = uri.strip()
    if uri in ("", "/"):
        return ""
    return uri if uri.endswith("/") else uri + "/"


def collection_prefixes(uri: str) -> List[str]:
    """Every ancestor collection of a document URI, outermost first.

    ``a/b/c.xml`` → ``["", "a/", "a/b/"]``.
    """
    prefixes = [""]
    position = uri.find("/")
    while position != -1:
        prefixes.append(uri[: position + 1])
        position = uri.find("/", position + 1)
    return prefixes


def _missing(uri: str) -> XQueryDynamicError:
    return XQueryDynamicError(
        f"document {uri!r} is not available", code="FODC0002"
    )


class DocumentStore:
    """URI-addressed documents + collections + the full-text index."""

    def __init__(self, use_index: bool = True):
        #: when False, ``search`` takes the brute-force document-scan path
        #: (the differential oracle and E22 toggle this; results must be
        #: byte-identical either way).
        self.use_index = use_index
        self.index = InvertedIndex()
        self.generation = 0
        self._docs: Dict[str, DocumentNode] = {}
        #: raw XML per URI — persistence + worker-replica shipping.
        self._texts: Dict[str, str] = {}
        #: model-backed documents: live model + its incremental exporter.
        self._models: Dict[str, Tuple[Model, IncrementalExporter]] = {}
        self._uri_by_doc: Dict[int, str] = {}
        #: collection prefix → generation of the last write under it.
        self._collection_gens: Dict[str, int] = {"": 0}
        #: collection prefix → live member count, maintained per write so
        #: statistics never rescan the corpus.
        self._collection_counts: Dict[str, int] = {"": 0}
        #: document URI → generation of its last write (or delete).
        self._uri_gens: Dict[str, int] = {}

    # -- mutation ----------------------------------------------------------

    def put_text(self, uri: str, text: str) -> DocumentNode:
        """Parse and store *text* under *uri* (replacing any previous doc).

        An unparseable document is a resource-retrieval failure: the spec
        code is ``FODC0002``, same as a missing URI, so the error is
        structured wherever it surfaces (lint, service, worker pipe).
        """
        try:
            document = parse_document(text)
        except Exception as exc:
            raise XQueryDynamicError(
                f"document {uri!r} is not parseable: {exc}", code="FODC0002"
            ) from exc
        self._models.pop(uri, None)
        self._install(uri, document, text)
        return document

    def put_document(self, uri: str, document: DocumentNode, text: Optional[str] = None) -> None:
        """Store an already-built document tree under *uri*."""
        self._models.pop(uri, None)
        self._install(uri, document, text if text is not None else serialize(document))

    def put_model(self, uri: str, model: Model) -> DocumentNode:
        """Store a live AWB model's export under *uri*.

        The document stays bound to the model through the update
        pipeline's incremental exporter: :meth:`apply_update` re-exports
        dirty subtrees instead of rebuilding, and only this URI's index
        postings are replaced.
        """
        exporter = IncrementalExporter(model)
        document = exporter.export()
        self._install(uri, document, serialize(document))
        self._models[uri] = (model, exporter)
        return document

    def apply_update(self, uri: str, script: str, check: str = "error"):
        """Run one update-language script against a model-backed document.

        Returns the :class:`~repro.xquery.updates.apply.UpdateResult`.
        The write path is incremental end to end: the exporter patches
        dirty subtrees, and the index replaces this document's postings
        only — the other N-1 documents' postings are untouched.
        """
        entry = self._models.get(uri)
        if entry is None:
            raise _missing(uri)
        model, exporter = entry
        result = apply_script(script, model, check=check)
        document = exporter.export()
        self._install(uri, document, serialize(document))
        self._models[uri] = (model, exporter)
        return result

    def remove(self, uri: str) -> None:
        """Delete *uri*; its collections stay known (and get a new generation)."""
        document = self._docs.pop(uri, None)
        if document is None:
            raise _missing(uri)
        self._texts.pop(uri, None)
        self._models.pop(uri, None)
        self._uri_by_doc.pop(id(document), None)
        self.index.remove(uri)
        for prefix in collection_prefixes(uri):
            self._collection_counts[prefix] = max(
                0, self._collection_counts.get(prefix, 0) - 1
            )
        self._bump(uri)

    def _install(self, uri: str, document: DocumentNode, text: str) -> None:
        validate_uri(uri)
        previous = self._docs.get(uri)
        if previous is not None:
            self._uri_by_doc.pop(id(previous), None)
        else:
            for prefix in collection_prefixes(uri):
                self._collection_counts[prefix] = (
                    self._collection_counts.get(prefix, 0) + 1
                )
        self._docs[uri] = document
        self._texts[uri] = text
        self._uri_by_doc[id(document)] = uri
        self.index.add(uri, document.string_value())
        self._bump(uri)

    def _bump(self, uri: str) -> None:
        self.generation += 1
        self._uri_gens[uri] = self.generation
        for prefix in collection_prefixes(uri):
            self._collection_gens[prefix] = self.generation

    # -- lookup ------------------------------------------------------------

    def get(self, uri: str) -> Optional[DocumentNode]:
        return self._docs.get(uri)

    def resolve(self, uri: str) -> DocumentNode:
        document = self._docs.get(uri)
        if document is None:
            raise _missing(uri)
        return document

    def __contains__(self, uri: str) -> bool:
        return uri in self._docs

    def __len__(self) -> int:
        return len(self._docs)

    def uris(self) -> List[str]:
        return sorted(self._docs)

    def uri_of(self, document: DocumentNode) -> str:
        """The URI a stored document lives under (FODC0002 if unknown)."""
        uri = self._uri_by_doc.get(id(document))
        if uri is None or self._docs.get(uri) is not document:
            raise XQueryDynamicError(
                "node does not belong to a stored document", code="FODC0002"
            )
        return uri

    def text_of(self, uri: str) -> str:
        text = self._texts.get(uri)
        if text is None:
            raise _missing(uri)
        return text

    def model_of(self, uri: str) -> Model:
        entry = self._models.get(uri)
        if entry is None:
            raise _missing(uri)
        return entry[0]

    # -- collections -------------------------------------------------------

    def collection_uris(self, collection: str = "") -> List[str]:
        """Member URIs of *collection*, sorted (FODC0002 if unknown).

        A collection is *known* once any document has ever been written
        under it; deleting every member leaves an empty — not missing —
        collection, so readers racing writers see ``()`` rather than an
        error flicker.
        """
        prefix = normalize_collection(collection)
        if prefix not in self._collection_gens:
            raise XQueryDynamicError(
                f"collection {collection!r} is not available", code="FODC0002"
            )
        return sorted(uri for uri in self._docs if uri.startswith(prefix))

    def collection(self, collection: str = "") -> List[Tuple[str, DocumentNode]]:
        return [(uri, self._docs[uri]) for uri in self.collection_uris(collection)]

    def collections(self) -> List[str]:
        return sorted(self._collection_gens)

    def collection_generation(self, collection: str = "") -> int:
        prefix = normalize_collection(collection)
        return self._collection_gens.get(prefix, 0)

    def document_generation(self, uri: str) -> int:
        return self._uri_gens.get(uri, 0)

    # -- search ------------------------------------------------------------

    def search(self, collection: str, phrase: str) -> List[Tuple[str, int]]:
        """``(uri, score)`` ordered by score desc then uri — deterministic.

        Score is the phrase occurrence count.  ``use_index`` picks the
        postings path or the brute-force scan over every member; the two
        are differentially pinned to identical output.
        """
        members = self.collection_uris(collection)
        if self.use_index:
            scores = self.index.search(phrase)
            hits = [(uri, scores[uri]) for uri in members if uri in scores]
        else:
            hits = []
            for uri in members:
                score = count_phrase(self._docs[uri].string_value(), phrase)
                if score:
                    hits.append((uri, score))
        hits.sort(key=lambda hit: (-hit[1], hit[0]))
        return hits

    def fulltext_stats(self) -> Dict[str, object]:
        """Catalog food for the algebra's ``FullTextScan`` selectivity.

        Document frequencies come from the index even when ``use_index``
        is off — the estimate steers the plan display and cost model, not
        the result.  Both ``collection_docs`` and ``doc_frequency`` are
        *live views* over incrementally-maintained state, so refreshing a
        catalog after a write is O(1), not O(corpus vocabulary).
        """
        return {
            "total_docs": len(self._docs),
            "collection_docs": self._collection_counts,
            "doc_frequency": DocumentFrequencyView(self.index),
        }

    # -- sharding ----------------------------------------------------------

    def subset(self, uris: List[str]) -> "DocumentStore":
        """A new store holding only *uris* (collections stay known).

        Shard replicas are built this way; every known collection is
        carried over so a scatter over an empty-on-this-shard collection
        answers ``()`` instead of FODC0002.
        """
        shard = DocumentStore(use_index=self.use_index)
        for uri in sorted(uris):
            shard.put_text(uri, self.text_of(uri))
        shard.register_collections(self._collection_gens)
        return shard

    def texts(self) -> List[Tuple[str, str]]:
        """``(uri, raw xml)`` pairs — the picklable replica payload."""
        return [(uri, self._texts[uri]) for uri in sorted(self._docs)]

    def known_collections(self) -> List[str]:
        return sorted(self._collection_gens)

    def register_collections(self, prefixes: Iterable[str]) -> None:
        """Make *prefixes* known (empty, generation 0) without a write.

        The serving tier broadcasts this after a write that creates a new
        collection, so every shard replica answers ``()`` for it instead
        of FODC0002 — only the owner shard actually holds the document.
        """
        for prefix in prefixes:
            self._collection_gens.setdefault(prefix, 0)
            self._collection_counts.setdefault(prefix, 0)

    # -- persistence -------------------------------------------------------

    def save(self, directory: str) -> None:
        """Write one file per document plus ``manifest.json``."""
        os.makedirs(directory, exist_ok=True)
        for uri in self.uris():
            path = os.path.join(directory, *uri.split("/"))
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(self._texts[uri])
        manifest = {
            "generation": self.generation,
            "uris": self.uris(),
            "collections": self.known_collections(),
        }
        with open(os.path.join(directory, _MANIFEST), "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)

    @classmethod
    def open(cls, directory: str, use_index: bool = True) -> "DocumentStore":
        """Load a saved store; without a manifest, scan for ``*.xml`` files.

        A file that does not parse raises ``FODC0002`` naming its URI —
        the structured flavor of "error retrieving resource".
        """
        store = cls(use_index=use_index)
        manifest_path = os.path.join(directory, _MANIFEST)
        manifest: Dict[str, object] = {}
        if os.path.exists(manifest_path):
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            uris = list(manifest.get("uris", []))
        else:
            uris = []
            for root, _dirs, files in os.walk(directory):
                for name in files:
                    if not name.endswith(".xml"):
                        continue
                    path = os.path.join(root, name)
                    uris.append(os.path.relpath(path, directory).replace(os.sep, "/"))
            uris.sort()
        for uri in uris:
            path = os.path.join(directory, *uri.split("/"))
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    text = handle.read()
            except OSError as exc:
                raise XQueryDynamicError(
                    f"document {uri!r} is not available: {exc}", code="FODC0002"
                ) from exc
            store.put_text(uri, text)
        store.register_collections(manifest.get("collections", []))
        store.generation = max(store.generation, int(manifest.get("generation", 0)))
        return store

    def stats(self) -> Dict[str, object]:
        return {
            "documents": len(self._docs),
            "model_backed": len(self._models),
            "collections": len(self._collection_gens),
            "generation": self.generation,
            "index": self.index.stats(),
            "use_index": self.use_index,
        }
