"""The collection shard worker: one process, one document-shard replica.

``SearchService(mode="process")`` spawns one of these per shard.  Each
worker rebuilds its shard's :class:`~repro.collections.store.DocumentStore`
from the picklable ``(uri, raw xml)`` payload, owns its own engine (plan
LRU included), and serves the same pipe protocol the calculus serving
tier uses: the parent sends ``(op, req_id, payload)`` and the worker
answers ``("ok", req_id, result)`` or ``("err", req_id, QueryError)``.

Failures cross the pipe *classified*: a missing or unparseable document
raises ``FODC0002`` inside the worker, :func:`classify_error` wraps it
into a structured :class:`~repro.querycalc.service.errors.QueryError`,
and the front-end re-raises it as a ``RemoteQueryError`` that still
advertises ``kind="dynamic"`` / ``code="FODC0002"`` — the error taxonomy
does not degrade at the process boundary.

Ops: ``run`` (evaluate one request program, serialized or as merge
rows), ``put`` / ``delete`` / ``update`` (replica maintenance; the index
patch is per-document, never a rebuild), ``stats``, ``ping``,
``shutdown``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..querycalc.service.errors import classify_error
from ..xdm import ElementNode
from ..xmlio import serialize
from ..xquery import EngineConfig, XQueryEngine, serialize_result
from ..xquery.algebra import StatisticsCatalog
from .store import DocumentStore

__all__ = [
    "CollectionWorker",
    "CollectionWorkerConfig",
    "collection_worker_main",
    "extract_rows",
]


def extract_rows(result) -> List[Tuple[int, str, str]]:
    """``(score, uri, serialized fragment)`` merge rows from a result.

    Request programs emit elements carrying ``uri`` and ``score``
    attributes precisely so the scatter/gather merge can re-sort partials
    by the same ``(score desc, uri asc)`` key the per-shard ``ft:search``
    used — making the merged bytes identical to an unsharded run.
    """
    rows: List[Tuple[int, str, str]] = []
    for item in result:
        if not isinstance(item, ElementNode):
            continue
        uri = item.get_attribute("uri") or ""
        score_text = item.get_attribute("score")
        try:
            score = int(score_text) if score_text else 0
        except ValueError:
            score = 0
        rows.append((score, uri, serialize(item)))
    return rows


def merge_rows(
    partials: List[List[Tuple[int, str, str]]], limit: int = 0
) -> str:
    """Merge per-shard rows by ``(score desc, uri asc)`` into one payload."""
    merged = sorted(
        (row for rows in partials for row in rows),
        key=lambda row: (-row[0], row[1]),
    )
    if limit:
        merged = merged[:limit]
    return "".join(fragment for _score, _uri, fragment in merged)


@dataclass
class CollectionWorkerConfig:
    """Everything a worker process needs to build its replica (picklable)."""

    shard: int
    shards: int
    texts: List[Tuple[str, str]] = field(default_factory=list)
    #: every collection the tier knows, so a shard holding no member of
    #: one still answers ``()`` instead of FODC0002.
    collections: List[str] = field(default_factory=list)
    use_index: bool = True
    backend: str = "algebra"


class CollectionWorker:
    """The in-process half of one worker: replica store + engine."""

    def __init__(self, config: CollectionWorkerConfig):
        self.shard = config.shard
        self.store = DocumentStore(use_index=config.use_index)
        for uri, text in config.texts:
            self.store.put_text(uri, text)
        self.store.register_collections(config.collections)
        self.engine = XQueryEngine(EngineConfig(backend=config.backend))
        self.runs = 0
        self.writes = 0
        self.errors = 0
        self._statistics = self._fresh_statistics()

    def _fresh_statistics(self) -> StatisticsCatalog:
        catalog = StatisticsCatalog()
        catalog.set_fulltext(self.store.fulltext_stats())
        return catalog

    # -- evaluation --------------------------------------------------------

    def run(self, payload: Dict) -> Dict:
        """Evaluate one request program over the shard replica.

        ``payload``: ``source`` (the XQuery text), ``structured`` (True →
        reply with merge rows for scatter/gather, False → the serialized
        result for a single-shard answer), ``key`` (cache/diagnostic key).
        """
        self.runs += 1
        compiled = self.engine.compile(payload["source"])
        result = compiled.run(
            collections=self.store, statistics=self._statistics
        )
        if payload.get("structured"):
            return {"rows": extract_rows(result), "shard": self.shard}
        return {"text": serialize_result(result), "shard": self.shard}

    # -- replica maintenance ----------------------------------------------

    def put(self, payload: Dict) -> Dict:
        self.store.put_text(payload["uri"], payload["text"])
        self.writes += 1
        self._statistics = self._fresh_statistics()
        return {"documents": len(self.store)}

    def delete(self, payload: Dict) -> Dict:
        self.store.remove(payload["uri"])
        self.writes += 1
        self._statistics = self._fresh_statistics()
        return {"documents": len(self.store)}

    def register(self, payload: Dict) -> Dict:
        """Learn collection prefixes created by a write on another shard.

        A non-owner replica holds no document of the new collection, but
        must *know* it so a scattered read answers ``()``, not FODC0002.
        """
        self.store.register_collections(payload["collections"])
        return {"collections": len(self.store.known_collections())}

    def stats(self) -> Dict[str, object]:
        return {
            "shard": self.shard,
            "runs": self.runs,
            "writes": self.writes,
            "errors": self.errors,
            "store": self.store.stats(),
            "compile_cache": self.engine.cache_info(),
        }


def collection_worker_main(conn, config: CollectionWorkerConfig) -> None:
    """Worker process entry point — a request loop over one Pipe end."""
    worker = None
    try:
        worker = CollectionWorker(config)
        conn.send(
            ("ok", "boot", {"shard": worker.shard, "documents": len(worker.store)})
        )
    except Exception as exc:  # a broken boot must still answer the parent
        conn.send(("err", "boot", classify_error(exc)))
        conn.close()
        return
    while True:
        try:
            op, req_id, payload = conn.recv()
        except (EOFError, OSError):
            break
        try:
            if op == "run":
                conn.send(("ok", req_id, worker.run(payload)))
            elif op == "put":
                conn.send(("ok", req_id, worker.put(payload)))
            elif op == "delete":
                conn.send(("ok", req_id, worker.delete(payload)))
            elif op == "register":
                conn.send(("ok", req_id, worker.register(payload)))
            elif op == "stats":
                conn.send(("ok", req_id, worker.stats()))
            elif op == "ping":
                conn.send(("ok", req_id, {"time": time.monotonic()}))
            elif op == "shutdown":
                conn.send(("ok", req_id, {}))
                break
            else:
                raise ValueError(f"unknown collection worker op {op!r}")
        except Exception as exc:
            worker.errors += 1
            try:
                conn.send(
                    (
                        "err",
                        req_id,
                        classify_error(
                            exc,
                            payload.get("key")
                            if isinstance(payload, dict)
                            else None,
                        ),
                    )
                )
            except (BrokenPipeError, OSError):
                break
    conn.close()
