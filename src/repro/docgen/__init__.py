"""The document generation subsystem — implemented twice.

* :class:`~repro.docgen.native.NativeDocumentGenerator` — "Java-style":
  exceptions (:class:`GenTrouble`), mutable accumulators, skeleton-then-
  fill tables, one generation pass plus a small mutation phase.
* :class:`~repro.docgen.xquery_impl.XQueryDocumentGenerator` — the
  functional original: XQuery sources run by :mod:`repro.xquery`,
  error-as-``<error>``-value convention, five whole-document phases
  communicating through ``<INTERNAL-DATA>`` tags, and an XSLT stream
  split at the end.

Both consume the same template language (:mod:`repro.docgen.template`)
and produce the same :class:`GenerationResult` shape, which is what makes
the paper's comparison measurable.
"""

from .errors import GenTrouble
from .native import NativeDocumentGenerator
from .template import (
    DIRECTIVE_TAGS,
    GenerationResult,
    Problem,
    TemplateError,
    TocEntry,
    load_template,
    parse_node_spec,
)
from .xquery_impl import XQueryDocumentGenerator

__all__ = [
    "DIRECTIVE_TAGS",
    "GenTrouble",
    "GenerationResult",
    "NativeDocumentGenerator",
    "Problem",
    "TemplateError",
    "TocEntry",
    "XQueryDocumentGenerator",
    "load_template",
    "parse_node_spec",
]
