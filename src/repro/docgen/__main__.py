"""Command-line document generator.

Usage::

    python -m repro.docgen --model model.xml --metamodel it-architecture \
        --template template.xml [--impl native|xquery] [-o out.html]

Reads an AWB model export and a document template, runs one of the two
generator implementations, writes the document, and prints the problems
report (the second output stream) to stderr.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..awb import import_model_text, load_metamodel
from ..xmlio import serialize
from .native import NativeDocumentGenerator
from .xquery_impl import XQueryDocumentGenerator


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.docgen",
        description="Generate a document from an AWB model and a template.",
    )
    parser.add_argument("--model", required=True, help="AWB model XML export")
    parser.add_argument(
        "--metamodel",
        default="it-architecture",
        help="builtin metamodel name (default: it-architecture)",
    )
    parser.add_argument("--template", required=True, help="document template XML")
    parser.add_argument(
        "--impl",
        choices=("native", "xquery"),
        default="native",
        help="which implementation to run (default: native)",
    )
    parser.add_argument("-o", "--output", help="write the document here")
    parser.add_argument(
        "--stats", action="store_true", help="print timing and phase metrics"
    )
    args = parser.parse_args(argv)

    with open(args.model, "r", encoding="utf-8") as handle:
        model = import_model_text(handle.read(), load_metamodel(args.metamodel))
    with open(args.template, "r", encoding="utf-8") as handle:
        template = handle.read()

    if args.impl == "native":
        generator = NativeDocumentGenerator(model)
    else:
        generator = XQueryDocumentGenerator(model)

    started = time.perf_counter()
    result = generator.generate(template)
    elapsed = time.perf_counter() - started

    text = serialize(result.document, indent=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)

    for problem in result.problems:
        print(str(problem), file=sys.stderr)
    if args.stats:
        print(
            f"implementation={args.impl} time={elapsed * 1000:.1f}ms "
            f"metrics={result.metrics}",
            file=sys.stderr,
        )
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
