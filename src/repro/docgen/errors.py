"""GenTrouble: the exception that made the Java rewrite pleasant.

"We chose to allow nearly every function to throw our own GenTrouble
exception.  GenTrouble was an exception carrying quite a bit of data — a
string describing what the error was, plus the inputs that went into
causing the error."

The native generator raises :class:`GenTrouble` from any depth and catches
it only at the top, which is what collapses the paper's half-dozen-line
error idiom back to one line per call.
"""

from __future__ import annotations

from typing import Optional

from ..xdm import ElementNode


class GenTrouble(Exception):
    """Trouble while generating a document, with full context attached."""

    def __init__(
        self,
        message: str,
        template_element: Optional[ElementNode] = None,
        focus=None,
        severity: str = "error",
    ):
        self.bare_message = message
        self.template_element = template_element
        self.focus = focus
        self.severity = severity
        super().__init__(self.describe())

    def describe(self) -> str:
        parts = [self.bare_message]
        if self.template_element is not None:
            parts.append(f"while processing <{self.template_element.name}>")
        if self.focus is not None:
            label = getattr(self.focus, "label", None) or getattr(self.focus, "id", "?")
            parts.append(f"with focus on {label!r}")
        return ", ".join(parts)

    @property
    def focus_id(self) -> Optional[str]:
        return getattr(self.focus, "id", None)
