"""The Java-style generator: exceptions, mutation, skeleton-then-fill."""

from .generator import NativeDocumentGenerator
from .mutate import build_omissions, build_toc, fill_omissions, fill_toc, replace_phrase
from .state import GenState, required_attribute, required_child, required_focus
from .tables import build_relation_table

__all__ = [
    "GenState",
    "NativeDocumentGenerator",
    "build_omissions",
    "build_relation_table",
    "build_toc",
    "fill_omissions",
    "fill_toc",
    "replace_phrase",
    "required_attribute",
    "required_child",
    "required_focus",
]
