"""The "Java-style" document generator: exceptions, mutation, one pass.

"The heart of the document generator is a quite straightforward recursive
walk over the XML structure of the template, inspecting each XML element
in turn.  AWB directives like for, if, and focus-is-type are dispatched to
special-purpose code for execution; everything else is simply copied."

Error handling is the GenTrouble regime: utilities throw, the walk
catches per directive, records a problem, and carries on.  "Java-style
exceptions, used a bit carefully, let us pretend that the utility
functions never have errors."
"""

from __future__ import annotations

from typing import List

from ...awb.model import Model, ModelNode
from ...querycalc import parse_query_xml, run_query
from ...xdm import ElementNode, Node, TextNode
from ...xmlio import parse_element
from ..errors import GenTrouble
from ..template import (
    DIRECTIVE_TAGS,
    GenerationResult,
    Problem,
    TemplateError,
    TocEntry,
    load_template,
    parse_node_spec,
)
from .mutate import (
    OMISSIONS_PLACEHOLDER,
    TOC_PLACEHOLDER,
    fill_omissions,
    fill_toc,
    replace_phrase,
)
from .state import GenState, required_attribute, required_child, required_focus
from .tables import build_relation_table


class NativeDocumentGenerator:
    """Generates documents from templates over a live AWB model."""

    def __init__(self, model: Model):
        self.model = model

    def generate(self, template_source) -> GenerationResult:
        """Run the full pipeline: one generation pass + the mutation phase."""
        template = load_template(template_source)
        state = GenState(self.model)

        # Pass 1: the recursive walk.  The template root is copied like any
        # passthrough element.
        produced = self._gen_element(template, state)
        if len(produced) == 1 and isinstance(produced[0], ElementNode):
            document = produced[0]
        else:
            document = ElementNode("document")
            for node in produced:
                document.append(node)

        # Pass 2: a very modest mutation phase.
        toc_filled = fill_toc(document, state.toc)
        omissions_filled = fill_omissions(
            document, list(state.visited), self.model
        )
        phrases_replaced = 0
        for phrase, replacement in state.replacements:
            count = replace_phrase(document, phrase, replacement)
            if count == 0:
                state.problem(
                    f"phrase {phrase!r} was never found in the document",
                    severity="warning",
                    directive="replace-phrase",
                )
            phrases_replaced += count

        return GenerationResult(
            document=document,
            problems=state.problems,
            toc=list(state.toc),
            visited_node_ids=list(state.visited),
            metrics={
                "implementation": "native",
                "phases": 2,
                "toc_placeholders_filled": toc_filled,
                "omissions_placeholders_filled": omissions_filled,
                "phrases_replaced": phrases_replaced,
            },
        )

    # -- the recursive walk ---------------------------------------------------

    def _gen_content(self, nodes: List[Node], state: GenState) -> List[Node]:
        output: List[Node] = []
        for node in nodes:
            output.extend(self._gen_node(node, state))
        return output

    def _gen_node(self, node: Node, state: GenState) -> List[Node]:
        if node.kind == "text":
            return [node.copy()]
        if node.kind == "comment":
            return []  # template comments do not reach the document
        if node.kind != "element":
            return [node.copy()]
        return self._gen_element(node, state)

    def _gen_element(self, element: ElementNode, state: GenState) -> List[Node]:
        if element.name in DIRECTIVE_TAGS:
            handler = _DIRECTIVES[element.name]
            try:
                return handler(self, element, state)
            except GenTrouble as trouble:
                # the single top-ish catch: record and move on, so one bad
                # directive does not take the whole document down.
                state.problem(
                    trouble.describe(),
                    severity=trouble.severity,
                    directive=element.name,
                )
                return [_problem_marker(element.name, trouble.bare_message)]
        # passthrough HTML: copy the element, generate the children.
        copied = ElementNode(element.name)
        for attribute in element.attributes:
            copied.set_attribute(attribute.name, attribute.value)
        for child in self._gen_content(list(element.children), state):
            copied.append(child)
        return [copied]

    # -- directive handlers ------------------------------------------------------

    def _gen_for(self, element: ElementNode, state: GenState) -> List[Node]:
        query_child = element.first_child_element("query")
        if query_child is not None:
            nodes = run_query(parse_query_xml(query_child), self.model)
            body = [
                child for child in element.children if child is not query_child
            ]
        else:
            spec = required_attribute(element, "nodes", state)
            nodes = self._resolve_node_spec(spec, element, state)
            body = list(element.children)
        sort_property = element.get_attribute("sort")
        if sort_property is not None:
            nodes = sorted(
                nodes, key=lambda n: (str(n.get(sort_property, n.label)), n.id)
            )
        output: List[Node] = []
        previous_focus = state.focus
        try:
            for node in nodes:
                state.focus = node
                state.visit(node)
                output.extend(self._gen_content(body, state))
        finally:
            state.focus = previous_focus
        return output

    def _resolve_node_spec(
        self, spec: str, element: ElementNode, state: GenState
    ) -> List[ModelNode]:
        try:
            kind, argument = parse_node_spec(spec)
        except TemplateError as exc:
            raise GenTrouble(str(exc), template_element=element, focus=state.focus)
        if kind == "all":
            return sorted(
                self.model.nodes_of_type(argument),
                key=lambda n: (n.label, n.id),
            )
        focus = required_focus(element, state)
        if kind == "follow":
            return self.model.targets(focus, argument)
        return self.model.sources(focus, argument)

    def _gen_if(self, element: ElementNode, state: GenState) -> List[Node]:
        test = required_child(element, "test", state)
        then_branch = required_child(element, "then", state)
        else_branch = element.first_child_element("else")
        condition = self._eval_test_container(test, state)
        if condition:
            return self._gen_content(list(then_branch.children), state)
        if else_branch is not None:
            return self._gen_content(list(else_branch.children), state)
        return []

    def _eval_test_container(self, container: ElementNode, state: GenState) -> bool:
        tests = container.child_elements()
        if len(tests) != 1:
            raise GenTrouble(
                f"<{container.name}> must contain exactly one test element",
                template_element=container,
                focus=state.focus,
            )
        return self._eval_test(tests[0], state)

    def _eval_test(self, test: ElementNode, state: GenState) -> bool:
        name = test.name
        if name == "focus-is-type":
            focus = required_focus(test, state)
            return focus.is_type(required_attribute(test, "type", state))
        if name == "has-property":
            focus = required_focus(test, state)
            return focus.get(required_attribute(test, "name", state)) is not None
        if name == "property-equals":
            focus = required_focus(test, state)
            value = focus.get(required_attribute(test, "name", state))
            return value is not None and str(value) == required_attribute(
                test, "value", state
            )
        if name == "has-relation":
            focus = required_focus(test, state)
            relation = required_attribute(test, "relation", state)
            if test.get_attribute("direction") == "backward":
                return bool(self.model.incoming(focus, relation))
            return bool(self.model.outgoing(focus, relation))
        if name == "not":
            return not self._eval_test_container(test, state)
        if name == "and":
            return all(self._eval_test(t, state) for t in test.child_elements())
        if name == "or":
            return any(self._eval_test(t, state) for t in test.child_elements())
        raise GenTrouble(
            f"unknown test element <{name}>",
            template_element=test,
            focus=state.focus,
        )

    def _gen_label(self, element: ElementNode, state: GenState) -> List[Node]:
        focus = required_focus(element, state)
        state.visit(focus)
        return [TextNode(focus.label)]

    def _gen_focus_id(self, element: ElementNode, state: GenState) -> List[Node]:
        focus = required_focus(element, state)
        return [TextNode(focus.id)]

    def _gen_property_value(
        self, element: ElementNode, state: GenState
    ) -> List[Node]:
        focus = required_focus(element, state)
        name = required_attribute(element, "name", state)
        value = focus.get(name)
        if value is None:
            default = element.get_attribute("default")
            if default is not None:
                return [TextNode(default)]
            state.problem(
                f"node {focus.label!r} has no property {name!r}",
                severity="warning",
                directive=element.name,
            )
            return []
        state.visit(focus)
        declaration = None
        node_type = self.model.metamodel.node_type(focus.type_name)
        if node_type is not None:
            declaration = node_type.property_decl(name)
        if declaration is not None and declaration.type == "html":
            return self._parse_html_value(str(value), element, state)
        return [TextNode(str(value))]

    def _parse_html_value(
        self, value: str, element: ElementNode, state: GenState
    ) -> List[Node]:
        try:
            wrapper = parse_element(f"<span class=\"html-value\">{value}</span>")
        except Exception as exc:
            raise GenTrouble(
                f"HTML property value does not parse: {exc}",
                template_element=element,
                focus=state.focus,
            ) from exc
        return [child.copy() for child in wrapper.children] or [TextNode(value)]

    def _gen_section(self, element: ElementNode, state: GenState) -> List[Node]:
        heading = required_child(element, "heading", state)
        state.section_depth += 1
        try:
            level = min(state.section_depth, 6)
            anchor = state.next_anchor()
            heading_content = self._gen_content(list(heading.children), state)
            heading_text = "".join(n.string_value() for n in heading_content)
            state.toc.append(TocEntry(level=level, text=heading_text, anchor=anchor))
            heading_element = ElementNode(f"h{level}")
            heading_element.set_attribute("class", "awb-heading")
            heading_element.set_attribute("id", anchor)
            for node in heading_content:
                heading_element.append(node)
            body = [
                child for child in element.children if child is not heading
            ]
            section = ElementNode("div")
            section.set_attribute("class", "section")
            for node in self._gen_content(body, state):
                section.append(node)
            return [heading_element, section]
        finally:
            state.section_depth -= 1

    def _gen_toc(self, element: ElementNode, state: GenState) -> List[Node]:
        return [ElementNode(TOC_PLACEHOLDER)]

    def _gen_omissions(self, element: ElementNode, state: GenState) -> List[Node]:
        placeholder = ElementNode(OMISSIONS_PLACEHOLDER)
        types = element.get_attribute("types")
        if types is not None:
            placeholder.set_attribute("types", types)
        return [placeholder]

    def _gen_table(self, element: ElementNode, state: GenState) -> List[Node]:
        rows = self._resolve_node_spec(
            required_attribute(element, "rows", state), element, state
        )
        cols = self._resolve_node_spec(
            required_attribute(element, "cols", state), element, state
        )
        relation = required_attribute(element, "relation", state)
        mark = element.get_attribute("mark") or "✓"
        for node in rows:
            state.visit(node)
        for node in cols:
            state.visit(node)
        return [build_relation_table(rows, cols, relation, self.model, mark=mark)]

    def _gen_replace_phrase(
        self, element: ElementNode, state: GenState
    ) -> List[Node]:
        phrase = required_attribute(element, "phrase", state)
        replacement = self._gen_content(list(element.children), state)
        state.replacements.append((phrase, replacement))
        return []

    def _gen_model_check(self, element: ElementNode, state: GenState) -> List[Node]:
        from ...awb.validate import check_advisories

        for omission in check_advisories(self.model):
            state.problems.append(
                Problem(
                    message=omission.message,
                    severity="warning",
                    node_id=omission.subject_id,
                    directive="model-check",
                )
            )
        return []

    def _gen_query(self, element: ElementNode, state: GenState) -> List[Node]:
        nodes = run_query(parse_query_xml(element), self.model)
        listing = ElementNode("ul")
        listing.set_attribute("class", "query-result")
        for node in nodes:
            state.visit(node)
            item = ElementNode("li")
            item.append(TextNode(node.label))
            listing.append(item)
        return [listing]


def _problem_marker(directive: str, message: str) -> Node:
    marker = ElementNode("span")
    marker.set_attribute("class", "generation-problem")
    marker.set_attribute("data-directive", directive)
    marker.append(TextNode(f"[problem in <{directive}>: {message}]"))
    return marker


_DIRECTIVES = {
    "for": NativeDocumentGenerator._gen_for,
    "if": NativeDocumentGenerator._gen_if,
    "label": NativeDocumentGenerator._gen_label,
    "focus-id": NativeDocumentGenerator._gen_focus_id,
    "property-value": NativeDocumentGenerator._gen_property_value,
    "section": NativeDocumentGenerator._gen_section,
    "table-of-contents": NativeDocumentGenerator._gen_toc,
    "table-of-omissions": NativeDocumentGenerator._gen_omissions,
    "table": NativeDocumentGenerator._gen_table,
    "replace-phrase": NativeDocumentGenerator._gen_replace_phrase,
    "query": NativeDocumentGenerator._gen_query,
    "model-check": NativeDocumentGenerator._gen_model_check,
}
