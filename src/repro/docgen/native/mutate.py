"""The mutation phase: ToC, omissions, and phrase replacement, in place.

"A very modest second phase of computation lets us modify the produced
document, cramming in the tables at the appropriate places by modifying
the in-memory XML data structures."
"""

from __future__ import annotations

from typing import List

from ...awb.model import Model
from ...xdm import ElementNode, Node, TextNode
from ..template import TocEntry

TOC_PLACEHOLDER = "toc-placeholder"
OMISSIONS_PLACEHOLDER = "omissions-placeholder"


def fill_toc(root: ElementNode, toc: List[TocEntry]) -> int:
    """Replace every ToC placeholder with the assembled list.  In place."""
    placeholders = _find_elements(root, TOC_PLACEHOLDER)
    for placeholder in placeholders:
        placeholder.parent.replace_child(placeholder, [build_toc(toc)])
    return len(placeholders)


def build_toc(toc: List[TocEntry]) -> ElementNode:
    container = ElementNode("div")
    container.set_attribute("class", "table-of-contents")
    listing = ElementNode("ul")
    container.append(listing)
    for entry in toc:
        item = ElementNode("li")
        item.set_attribute("class", f"toc-level-{entry.level}")
        link = ElementNode("a")
        link.set_attribute("href", f"#{entry.anchor}")
        link.append(TextNode(entry.text))
        item.append(link)
        listing.append(item)
    return container


def fill_omissions(
    root: ElementNode, visited_ids: List[str], model: Model
) -> int:
    """Replace omissions placeholders with the not-visited-nodes table."""
    placeholders = _find_elements(root, OMISSIONS_PLACEHOLDER)
    visited = set(visited_ids)
    for placeholder in placeholders:
        types_attr = placeholder.get_attribute("types") or ""
        type_names = [name.strip() for name in types_attr.split(",") if name.strip()]
        placeholder.parent.replace_child(
            placeholder, [build_omissions(visited, model, type_names)]
        )
    return len(placeholders)


def build_omissions(
    visited: set, model: Model, type_names: List[str]
) -> ElementNode:
    """The table of omissions: nodes "likely left out by mistake"."""
    container = ElementNode("div")
    container.set_attribute("class", "table-of-omissions")
    listing = ElementNode("ul")
    candidates = []
    if type_names:
        for type_name in type_names:
            candidates.extend(model.nodes_of_type(type_name))
    else:
        candidates = model.all_nodes()
    omitted = [node for node in candidates if node.id not in visited]
    omitted.sort(key=lambda node: (node.label, node.id))
    seen = set()
    for node in omitted:
        if node.id in seen:
            continue
        seen.add(node.id)
        item = ElementNode("li")
        item.set_attribute("data-node-id", node.id)
        item.append(TextNode(f"{node.label} ({node.type_name})"))
        listing.append(item)
    if listing.children:
        container.append(listing)
    else:
        empty = ElementNode("p")
        empty.append(TextNode("No omissions."))
        container.append(empty)
    return container


def replace_phrase(root: ElementNode, phrase: str, replacement: List[Node]) -> int:
    """Splice *replacement* where *phrase* occurs inside text nodes.

    "It will probably be in the middle of a XML Text node, so rip that
    node apart and shove Table 1's HTML bodily into the gap."  Exactly
    that: the text node is split in two and the replacement nodes are
    spliced between the halves, by mutation.
    """
    replaced = 0
    for text_node in _find_text_with(root, phrase):
        parent = text_node.parent
        if not isinstance(parent, ElementNode):
            continue
        before, _, after = text_node.text.partition(phrase)
        splice: List[Node] = []
        if before:
            splice.append(TextNode(before))
        splice.extend(node.copy() for node in replacement)
        if after:
            splice.append(TextNode(after))
        parent.replace_child(text_node, splice)
        replaced += 1
    return replaced


def _find_elements(root: ElementNode, name: str) -> List[ElementNode]:
    return [
        node
        for node in root.descendants_or_self()
        if isinstance(node, ElementNode) and node.name == name
    ]


def _find_text_with(root: ElementNode, phrase: str) -> List[TextNode]:
    return [
        node
        for node in root.descendants()
        if isinstance(node, TextNode) and phrase in node.text
    ]
