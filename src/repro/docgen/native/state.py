"""Mutable generation state — the thing XQuery would not let the paper have.

"Our first thoughts...: whenever a heading that goes in the table of
contents is produced, toss it into a list...  whenever a node is observed
in the document, cram it into a set."  In the Java-style implementation we
simply do that.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ...awb.model import Model, ModelNode
from ...xdm import ElementNode, Node
from ..errors import GenTrouble
from ..template import Problem, TocEntry


class GenState:
    """Everything a generation run accumulates, mutably."""

    def __init__(self, model: Model):
        self.model = model
        self.focus: Optional[ModelNode] = None
        self.section_depth = 0
        #: table-of-contents entries, appended as headings are produced.
        self.toc: List[TocEntry] = []
        #: ids of nodes observed in the document, in first-visit order.
        self.visited: Dict[str, None] = {}
        self.problems: List[Problem] = []
        #: (phrase, replacement nodes) pairs applied in the mutation phase.
        self.replacements: List[Tuple[str, List[Node]]] = []
        self._anchor_counter = itertools.count(1)

    def visit(self, node: ModelNode) -> None:
        self.visited.setdefault(node.id, None)

    def next_anchor(self) -> str:
        return f"sec-{next(self._anchor_counter)}"

    def problem(
        self,
        message: str,
        severity: str = "warning",
        directive: Optional[str] = None,
    ) -> None:
        self.problems.append(
            Problem(
                message=message,
                severity=severity,
                node_id=self.focus.id if self.focus is not None else None,
                directive=directive,
            )
        )


def required_attribute(
    element: ElementNode, name: str, state: GenState
) -> str:
    """Fetch an attribute or throw GenTrouble with full context.

    Like the paper's ``requiredChild``, the utility takes the focus (via
    *state*) purely "so that it can throw a more comprehensive error
    message" — the extra argument that turned out to be cheap and useful.
    """
    value = element.get_attribute(name)
    if value is None:
        raise GenTrouble(
            f"<{element.name}> requires a {name!r} attribute",
            template_element=element,
            focus=state.focus,
        )
    return value


def required_child(
    element: ElementNode, name: str, state: GenState
) -> ElementNode:
    """Fetch a named child element or throw GenTrouble with full context."""
    child = element.first_child_element(name)
    if child is None:
        raise GenTrouble(
            f"<{element.name}> requires a <{name}> child",
            template_element=element,
            focus=state.focus,
        )
    return child


def required_focus(element: ElementNode, state: GenState) -> ModelNode:
    """The current focus, or GenTrouble if the directive has none."""
    if state.focus is None:
        raise GenTrouble(
            f"<{element.name}> needs a focus node (is it inside a <for>?)",
            template_element=element,
            focus=None,
        )
    return state.focus
