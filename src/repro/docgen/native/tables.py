"""Row/column tables, built the way the Java rewrite built them.

"We constructed the skeleton of the table, the <tr> and <td> elements
(with nothing inside them), in a straightforward loop, and stored
references to the <td>s in a two-dimensional array.  Then we filled in the
corner, the row titles, the column titles, and the values, each in a
separate loop.  There was no need to mingle the computations of row titles
and cell values."
"""

from __future__ import annotations

from typing import List

from ...awb.model import Model, ModelNode
from ...xdm import ElementNode, TextNode


def build_relation_table(
    rows: List[ModelNode],
    cols: List[ModelNode],
    relation: str,
    model: Model,
    mark: str = "✓",
    corner: str = "row\\col",
) -> ElementNode:
    """Build the paper's table: row/col titles and relation marks.

    The construction is deliberately mutation-first: skeleton, then four
    independent fill loops over a 2-D array of ``<td>`` references.
    """
    height = len(rows) + 1
    width = len(cols) + 1

    # skeleton: every <tr> and <td>, with nothing inside them.
    table = ElementNode("table")
    cells: List[List[ElementNode]] = []
    for _ in range(height):
        row_element = ElementNode("tr")
        table.append(row_element)
        row_cells: List[ElementNode] = []
        for _ in range(width):
            cell = ElementNode("td")
            row_element.append(cell)
            row_cells.append(cell)
        cells.append(row_cells)

    # fill the corner.
    cells[0][0].append(TextNode(corner))

    # fill the column titles.
    for column_index, column_node in enumerate(cols, start=1):
        cells[0][column_index].append(TextNode(column_node.label))

    # fill the row titles.
    for row_index, row_node in enumerate(rows, start=1):
        cells[row_index][0].append(TextNode(row_node.label))

    # fill the values.
    connected = {
        (relation_object.source.id, relation_object.target.id)
        for relation_object in model.relations.values()
        if relation_object.is_relation(relation)
    }
    for row_index, row_node in enumerate(rows, start=1):
        for column_index, column_node in enumerate(cols, start=1):
            if (row_node.id, column_node.id) in connected:
                cells[row_index][column_index].append(TextNode(mark))

    return table
