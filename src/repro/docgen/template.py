"""The document-template language shared by both generator implementations.

"Its main input is a template, in XML.  A template is a mix of HTML
directives and text, which are simply copied to the output document, and
idiosyncratic AWB directives, which cause various more or less obvious
sorts of behavior for their children."

Directives (everything else is passthrough HTML):

``<for nodes="SPEC" sort="property">body</for>``
    Iterate, setting the implicit *focus* to each node.  SPEC is
    ``all.Type`` (all nodes of a type), ``follow.relation`` (targets of the
    relation from the current focus), or ``followback.relation``.
    A ``<for>`` may instead contain a ``<query>`` child (the AWB query
    calculus) ahead of its body.

``<if> <test>TEST</test> <then>...</then> <else>...</else> </if>``
    TEST is one of the test elements below; ``<else>`` is optional.

Test elements (usable inside ``<test>``, ``<not>``, ``<and>``, ``<or>``):
    ``<focus-is-type type="T"/>``, ``<has-property name="p"/>``,
    ``<property-equals name="p" value="v"/>``, ``<has-relation
    relation="r" [direction="forward|backward"]/>``, ``<not>``, ``<and>``,
    ``<or>``.

``<label/>``
    The focus node's label.

``<property-value name="p" [default="..."]/>``
    A property of the focus; HTML-typed properties embed as markup.

``<section><heading>...</heading> body </section>``
    Emits ``<hN>`` per nesting depth and records a table-of-contents entry.

``<table-of-contents/>``
    Filled in after generation (mutation in the native impl, an extra
    whole-document phase in the XQuery impl).

``<table-of-omissions types="T1,T2"/>``
    Nodes of the listed types that the document never visited.

``<table rows="SPEC" cols="SPEC" relation="r" [mark="✓"]/>``
    The row/column table from the paper: a corner cell, row titles, column
    titles, and a mark wherever the relation connects row node to column
    node.

``<replace-phrase phrase="TABLE-1-GOES-HERE">replacement</replace-phrase>``
    After generation, finds the phrase inside text (even "in the middle of
    a big messy blob of formatted text") and splices the generated
    replacement into the gap.

``<query>...</query>``
    An embedded calculus query rendered as an ``<ul>`` of labels.

``<focus-id/>``
    The focus node's id (mostly for debugging templates).

``<model-check/>``
    Evaluates the metamodel's advisories against the model and reports
    each violation on the problems stream (severity "warning") — the
    "gadgetry to produce a System Context document must make sure that
    there is one [SystemBeingDesigned], and do something sensible if
    not".  Produces no document output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..xdm import ElementNode, Node
from ..xmlio import parse_element

#: Directive tag names (everything else is copied through).
DIRECTIVE_TAGS = frozenset(
    {
        "for",
        "if",
        "label",
        "property-value",
        "section",
        "table-of-contents",
        "table-of-omissions",
        "table",
        "replace-phrase",
        "query",
        "focus-id",
        "model-check",
    }
)

#: Test tag names usable under <test>.
TEST_TAGS = frozenset(
    {
        "focus-is-type",
        "has-property",
        "property-equals",
        "has-relation",
        "not",
        "and",
        "or",
    }
)


class TemplateError(ValueError):
    """The template itself is malformed (not a generation-time problem)."""


def load_template(source: Union[str, ElementNode]) -> ElementNode:
    """Parse a template from XML text (or pass an element through)."""
    if isinstance(source, ElementNode):
        return source
    return parse_element(source, keep_whitespace_text=True)


@dataclass
class TocEntry:
    """One table-of-contents entry recorded while generating."""

    level: int
    text: str
    anchor: str


@dataclass
class Problem:
    """One entry in the problems report (the second output stream)."""

    message: str
    severity: str = "error"
    node_id: Optional[str] = None
    directive: Optional[str] = None

    def __str__(self) -> str:
        subject = f" at node {self.node_id}" if self.node_id else ""
        where = f" in <{self.directive}>" if self.directive else ""
        return f"[{self.severity}]{where}{subject}: {self.message}"


@dataclass
class GenerationResult:
    """What a generator produces: the document plus its side streams."""

    document: ElementNode
    problems: List[Problem] = field(default_factory=list)
    toc: List[TocEntry] = field(default_factory=list)
    visited_node_ids: List[str] = field(default_factory=list)
    #: implementation-specific measurements (phases, bytes copied, ...).
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not any(p.severity == "error" for p in self.problems)


def parse_node_spec(spec: str) -> tuple:
    """Parse a ``nodes=`` spec into (kind, argument).

    ``all.Type`` → ("all", "Type"); ``follow.rel`` → ("follow", "rel");
    ``followback.rel`` → ("followback", "rel").
    """
    kind, separator, argument = spec.partition(".")
    if not separator or not argument:
        raise TemplateError(
            f"bad nodes spec {spec!r}: expected all.Type, follow.relation, "
            f"or followback.relation"
        )
    if kind not in ("all", "follow", "followback"):
        raise TemplateError(f"bad nodes spec kind {kind!r} in {spec!r}")
    return kind, argument


def is_directive(node: Node) -> bool:
    return node.kind == "element" and node.name in DIRECTIVE_TAGS
