"""The XQuery implementation: .xq sources run by the repro engine."""

from .runner import (
    LIBRARY_MODULES,
    LIBRARY_MODULES_TC,
    MODULES_DIR,
    MODULES_TC_DIR,
    XQueryDocumentGenerator,
    assemble_main_program,
    read_module,
)

__all__ = [
    "LIBRARY_MODULES",
    "LIBRARY_MODULES_TC",
    "MODULES_DIR",
    "MODULES_TC_DIR",
    "XQueryDocumentGenerator",
    "assemble_main_program",
    "read_module",
]
