(: ======================================================================
   directives.xq — special-purpose generators for the AWB directives.

   "Each special-purpose generator was a few dozen lines of code with a
   nicely stylized interface, largely independent of other generators or
   the recursive walk."

   Note the error-handling texture: nearly every helper can return an
   <error>, so nearly every call is wrapped in the
   let/if-is-error/then/else pattern.  "The actual behavior of most code
   was very badly obscured, with one small piece of computation every
   few lines, hidden behind billows of error messages."
   ====================================================================== :)

(: -- <for nodes="..."> ---------------------------------------------------- :)

declare function local:resolve-node-spec($spec, $elem, $focus) {
  if (starts-with($spec, "all."))
  then
    for $n in local:nodes-of-type(substring-after($spec, "all."))
    order by local:node-label($n), string($n/@id)
    return $n
  else if (starts-with($spec, "follow."))
  then
    if (empty($focus))
    then local:mk-error(
           concat("<", name($elem), "> needs a focus to follow a relation"),
           "(no focus)")
    else local:follow-forward($focus, substring-after($spec, "follow."))
  else if (starts-with($spec, "followback."))
  then
    if (empty($focus))
    then local:mk-error(
           concat("<", name($elem), "> needs a focus to follow a relation"),
           "(no focus)")
    else local:follow-backward($focus, substring-after($spec, "followback."))
  else local:mk-error(
         concat("bad nodes spec '", $spec, "'"),
         local:focus-label($focus))
};

declare function local:sorted-by-property($nodes, $prop) {
  for $n in $nodes
  order by string(local:property-of($n, $prop)), string($n/@id)
  return $n
};

declare function local:gen-for($t, $focus, $depth) {
  let $query-child := local:child-element-named($t, "query")
  return
  if (empty($query-child)) then
    let $spec := local:required-attr($t, "nodes", $focus)
    return
    if (local:is-error($spec))
    then local:error-to-problem($spec, "for")
    else
      let $nodes0 := local:resolve-node-spec($spec, $t, $focus)
      return
      if (local:is-error($nodes0))
      then local:error-to-problem($nodes0, "for")
      else
        let $sort := $t/attribute::node()[name(.) eq "sort"]
        let $nodes := if (empty($sort)) then $nodes0
                      else local:sorted-by-property($nodes0, string($sort))
        return
          for $n in $nodes
          return (local:visited-marker($n),
                  local:gen-content($t/child::node(), $n, $depth))
  else
    let $nodes := local:run-calc($query-child)
    return
    if (local:is-error($nodes))
    then local:error-to-problem($nodes, "for")
    else
      for $n in $nodes
      return (local:visited-marker($n),
              local:gen-content($t/child::node()[not(. is $query-child)],
                                $n, $depth))
};

(: -- <if><test/><then/><else/></if> ------------------------------------------ :)

declare function local:gen-if($t, $focus, $depth) {
  let $test := local:required-child($t, "test", $focus)
  return
  if (local:is-error($test))
  then local:error-to-problem($test, "if")
  else
    let $then := local:required-child($t, "then", $focus)
    return
    if (local:is-error($then))
    then local:error-to-problem($then, "if")
    else
      let $cond := local:eval-test-container($test, $focus)
      return
      if (local:is-error($cond))
      then local:error-to-problem($cond, "if")
      else if ($cond)
      then local:gen-content($then/child::node(), $focus, $depth)
      else
        let $else := local:child-element-named($t, "else")
        return
          if (empty($else)) then ()
          else local:gen-content($else/child::node(), $focus, $depth)
};

declare function local:eval-test-container($container, $focus) {
  let $tests := $container/child::element()
  return
    if (count($tests) ne 1)
    then local:mk-error(
           concat("<", name($container), "> must contain exactly one test"),
           local:focus-label($focus))
    else local:eval-test($tests[1], $focus)
};

declare function local:eval-test($test, $focus) {
  let $tag := name($test)
  return
  if ($tag eq "focus-is-type") then
    if (empty($focus))
    then local:mk-error("focus-is-type with no focus", "(no focus)")
    else
      let $type := local:required-attr($test, "type", $focus)
      return if (local:is-error($type)) then $type
             else local:is-subtype(string($focus/@type), $type)
  else if ($tag eq "has-property") then
    if (empty($focus))
    then local:mk-error("has-property with no focus", "(no focus)")
    else
      let $name := local:required-attr($test, "name", $focus)
      return if (local:is-error($name)) then $name
             else exists(local:property-of($focus, $name))
  else if ($tag eq "property-equals") then
    if (empty($focus))
    then local:mk-error("property-equals with no focus", "(no focus)")
    else
      let $name := local:required-attr($test, "name", $focus)
      return
      if (local:is-error($name)) then $name
      else
        let $value := local:required-attr($test, "value", $focus)
        return
        if (local:is-error($value)) then $value
        else
          let $p := local:property-of($focus, $name)
          return (not(empty($p)) and string($p) eq $value)
  else if ($tag eq "has-relation") then
    if (empty($focus))
    then local:mk-error("has-relation with no focus", "(no focus)")
    else
      let $rel := local:required-attr($test, "relation", $focus)
      return
      if (local:is-error($rel)) then $rel
      else
        let $dir := $test/attribute::node()[name(.) eq "direction"]
        return
          if (string($dir) eq "backward")
          then exists(local:follow-backward($focus, $rel))
          else exists(local:follow-forward($focus, $rel))
  else if ($tag eq "not") then
    let $inner := local:eval-test-container($test, $focus)
    return if (local:is-error($inner)) then $inner else not($inner)
  else if ($tag eq "and") then
    local:eval-test-all($test/child::element(), $focus)
  else if ($tag eq "or") then
    local:eval-test-any($test/child::element(), $focus)
  else local:mk-error(concat("unknown test element <", $tag, ">"),
                      local:focus-label($focus))
};

declare function local:eval-test-all($tests, $focus) {
  if (empty($tests)) then true()
  else
    let $head := local:eval-test($tests[1], $focus)
    return
      if (local:is-error($head)) then $head
      else if (not($head)) then false()
      else local:eval-test-all($tests[position() gt 1], $focus)
};

declare function local:eval-test-any($tests, $focus) {
  if (empty($tests)) then false()
  else
    let $head := local:eval-test($tests[1], $focus)
    return
      if (local:is-error($head)) then $head
      else if ($head) then true()
      else local:eval-test-any($tests[position() gt 1], $focus)
};

(: -- leaf directives -------------------------------------------------------------- :)

declare function local:gen-label($t, $focus) {
  if (empty($focus))
  then local:problem-marker("error", "label",
         "<label> needs a focus node (is it inside a <for>?)")
  else (local:visited-marker($focus), text { local:focus-label($focus) })
};

declare function local:gen-focus-id($t, $focus) {
  if (empty($focus))
  then local:problem-marker("error", "focus-id", "<focus-id> needs a focus node")
  else text { string($focus/@id) }
};

declare function local:gen-property-value($t, $focus) {
  if (empty($focus))
  then local:problem-marker("error", "property-value",
         "<property-value> needs a focus node")
  else
    let $name := local:required-attr($t, "name", $focus)
    return
    if (local:is-error($name))
    then local:error-to-problem($name, "property-value")
    else
      let $p := local:property-of($focus, $name)
      return
      if (empty($p)) then
        let $default := $t/attribute::node()[name(.) eq "default"]
        return
          if (empty($default))
          then local:problem-marker("warning", "property-value",
                 concat("node '", local:focus-label($focus),
                        "' has no property '", $name, "'"))
          else text { string($default) }
      else (
        local:visited-marker($focus),
        if (string($p/@type) eq "html")
        then
          let $wrapper := local:child-element-named($p, "html-value")
          return if (empty($wrapper)) then text { string($p) }
                 else $wrapper/child::node()
        else text { string($p) }
      )
};

(: -- <section> ----------------------------------------------------------------------- :)

declare function local:gen-section($t, $focus, $depth) {
  let $heading := local:required-child($t, "heading", $focus)
  return
  if (local:is-error($heading))
  then local:error-to-problem($heading, "section")
  else
    let $level := if ($depth + 1 gt 6) then 6 else $depth + 1
    let $heading-content := local:gen-content($heading/child::node(), $focus, $depth + 1)
    let $heading-text := normalize-space(string-join(
          for $h in $heading-content return
            if ($h instance of text()) then string($h)
            else if ($h instance of element()) then string($h)
            else "", ""))
    return (
      element { concat("h", $level) } {
        attribute class { "awb-heading" },
        $heading-content,
        <INTERNAL-DATA>
          <TOC-ENTRY level="{$level}" text="{$heading-text}"/>
        </INTERNAL-DATA>
      },
      <div class="section">{
        local:gen-content($t/child::node()[not(. is $heading)], $focus, $depth + 1)
      }</div>
    )
};

(: -- placeholders filled by later phases ------------------------------------------------ :)

declare function local:gen-omissions-placeholder($t) {
  let $types := $t/attribute::node()[name(.) eq "types"]
  return
    if (empty($types)) then <omissions-placeholder/>
    else <omissions-placeholder types="{string($types)}"/>
};

(: -- <table rows=... cols=... relation=...> --------------------------------------------- :)

declare function local:gen-table($t, $focus) {
  let $rows-spec := local:required-attr($t, "rows", $focus)
  return
  if (local:is-error($rows-spec)) then local:error-to-problem($rows-spec, "table")
  else
    let $cols-spec := local:required-attr($t, "cols", $focus)
    return
    if (local:is-error($cols-spec)) then local:error-to-problem($cols-spec, "table")
    else
      let $rel := local:required-attr($t, "relation", $focus)
      return
      if (local:is-error($rel)) then local:error-to-problem($rel, "table")
      else
        let $rows := local:resolve-node-spec($rows-spec, $t, $focus)
        return
        if (local:is-error($rows)) then local:error-to-problem($rows, "table")
        else
          let $cols := local:resolve-node-spec($cols-spec, $t, $focus)
          return
          if (local:is-error($cols)) then local:error-to-problem($cols, "table")
          else
            let $mark0 := $t/attribute::node()[name(.) eq "mark"]
            let $mark := if (empty($mark0)) then "✓" else string($mark0)
            return (
              for $n in ($rows, $cols) return local:visited-marker($n),
              (: "each row and then the table itself must be produced in
                 its entirety, all at once" — the all-at-once construction
                 the paper found "large and somewhat intricate". :)
              <table>{
                <tr>{
                  <td>row\col</td>,
                  for $c in $cols return <td>{local:node-label($c)}</td>
                }</tr>,
                for $r in $rows return
                  <tr>{
                    <td>{local:node-label($r)}</td>,
                    for $c in $cols return
                      <td>{
                        if (local:connected($r, $c, $rel)) then $mark else ()
                      }</td>
                  }</tr>
              }</table>
            )
};

(: -- <replace-phrase> --------------------------------------------------------------------- :)

declare function local:gen-replace-phrase($t, $focus, $depth) {
  let $phrase := local:required-attr($t, "phrase", $focus)
  return
  if (local:is-error($phrase))
  then local:error-to-problem($phrase, "replace-phrase")
  else
    <INTERNAL-DATA>
      <REPLACEMENT phrase="{$phrase}">{
        local:gen-content($t/child::node(), $focus, $depth)
      }</REPLACEMENT>
    </INTERNAL-DATA>
};

(: -- <query> (the calculus interpreter-in-XQuery) ------------------------------------------- :)

declare function local:gen-query($t, $focus) {
  let $nodes := local:run-calc($t)
  return
  if (local:is-error($nodes))
  then local:error-to-problem($nodes, "query")
  else
    <ul class="query-result">{
      for $n in $nodes
      return (local:visited-marker($n), <li>{local:node-label($n)}</li>)
    }</ul>
};


(: -- <model-check/> : evaluate the metamodel's advisories ------------------- :)

declare function local:model-problem($message) {
  <INTERNAL-DATA>
    <PROBLEM severity="warning" directive="model-check">{$message}</PROBLEM>
  </INTERNAL-DATA>
};

declare function local:advisory-message($a, $fallback) {
  let $m := $a/attribute::node()[name(.) eq "message"]
  return if (empty($m)) then $fallback else string($m)
};

declare function local:check-advisory($a) {
  let $kind := string($a/@kind)
  return
  if ($kind eq "exactly-one-node") then
    let $matches := local:nodes-of-type(string($a/@type))
    return
      if (count($matches) eq 1) then ()
      else local:model-problem(concat(
        local:advisory-message($a,
          concat("you might want to ensure that there is exactly one ",
                 string($a/@type), " node")),
        " (found ", count($matches), ")"))
  else if ($kind eq "required-property") then
    for $n in local:nodes-of-type(string($a/@type))
    let $p := local:property-of($n, string($a/@property))
    where empty($p) or normalize-space(string($p)) eq ""
    return local:model-problem(local:advisory-message($a,
      concat(string($a/@type), " '", local:node-label($n), "' has no ",
             string($a/@property))))
  else
    local:model-problem(concat("advisory kind '", $kind,
                               "' is not understood"))
};

declare function local:gen-model-check($t) {
  for $a in $metamodel/advisory return local:check-advisory($a)
};
