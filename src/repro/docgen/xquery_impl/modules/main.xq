(: ======================================================================
   main.xq — phase 1: generate the whole document.

   External variables (bound by the Python runner):
     $model      — the <awb-model> element of the exported model
     $metamodel  — the <metamodel> element (type hierarchies)
     $template   — the document template's root element

   "Phase 1 would generate the whole document.  It would include
   information for use by later phases in the document, inside
   <INTERNAL-DATA> tags."
   ====================================================================== :)

declare variable $model external;
declare variable $metamodel external;
declare variable $template external;

<phase1-output>{ local:gen($template, (), 0) }</phase1-output>
