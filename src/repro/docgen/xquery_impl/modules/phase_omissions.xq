(: ======================================================================
   phase_omissions.xq — phase 2: construct the table of omissions.

   "Phase 2 constructs the table of omissions.  It looks at all the
   <VISITED> tags in the document — which can be nicely phrased in
   XQuery as $doc//VISITED — and constructs the table of omissions out
   of that.  It then copies the entire document, sticking the table of
   omissions in the right place."
   ====================================================================== :)

declare variable $doc external;
declare variable $model external;
declare variable $metamodel external;

declare function local:is-subtype($type, $ancestor) {
  if ($type eq $ancestor) then true()
  else
    let $def := ($metamodel/node-type[@name eq $type])[1]
    return
      if (empty($def)) then false()
      else if (empty($def/attribute::node()[name(.) eq "parent"])) then false()
      else local:is-subtype(string($def/@parent), $ancestor)
};

declare function local:node-label($n) {
  let $p := $n/property[@name eq string($metamodel/@label-property)]
  return if (empty($p)) then string($n/@id) else string($p[1])
};

declare function local:candidates($types-attr) {
  if ($types-attr eq "")
  then $model/node
  else
    let $types := for $t in tokenize($types-attr, ",")
                  return normalize-space($t)
    return $model/node[some $t in $types
                       satisfies local:is-subtype(string(@type), $t)]
};

declare function local:build-omissions($placeholder, $visited) {
  let $candidates := local:candidates(
        string($placeholder/attribute::node()[name(.) eq "types"]))
  let $omitted := $candidates[not($visited = string(@id))]
  return
    <div class="table-of-omissions">{
      if (empty($omitted))
      then <p>No omissions.</p>
      else
        <ul>{
          for $n in $omitted
          order by local:node-label($n), string($n/@id)
          return
            <li data-node-id="{string($n/@id)}">{
              concat(local:node-label($n), " (", string($n/@type), ")")
            }</li>
        }</ul>
    }</div>
};

declare function local:copy($n, $visited) {
  if ($n instance of element())
  then
    if (name($n) eq "omissions-placeholder")
    then local:build-omissions($n, $visited)
    else
      element { name($n) } {
        $n/attribute::node(),
        for $c in $n/child::node() return local:copy($c, $visited)
      }
  else if ($n instance of text())
  then text { string($n) }
  else ()
};

let $visited := distinct-values($doc//VISITED/@node-id)
return local:copy($doc, $visited)
