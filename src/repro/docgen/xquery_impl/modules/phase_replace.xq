(: ======================================================================
   phase_replace.xq — phase 4: phrase replacement.

   "To replace a phrase, search for the phrase in the HTML structure.
   It will probably be in the middle of a XML Text node, so rip that
   node apart and shove Table 1's HTML bodily into the gap."  Functional
   version: text nodes containing a registered phrase are split and the
   replacement's children spliced in during yet another whole-document
   copy.
   ====================================================================== :)

declare variable $doc external;

declare function local:replacement-for($text) {
  ($doc//REPLACEMENT[contains($text, string(@phrase))])[1]
};

declare function local:splice($text) {
  let $r := local:replacement-for($text)
  return
    if (empty($r))
    then text { $text }
    else
      let $phrase := string($r/@phrase)
      return (
        if (substring-before($text, $phrase) ne "")
        then text { substring-before($text, $phrase) } else (),
        local:copy-children($r),
        if (substring-after($text, $phrase) ne "")
        then text { substring-after($text, $phrase) } else ()
      )
};

declare function local:copy-children($n) {
  for $c in $n/child::node() return local:copy($c)
};

declare function local:copy($n) {
  if ($n instance of element())
  then
    element { name($n) } {
      $n/attribute::node(),
      local:copy-children($n)
    }
  else if ($n instance of text())
  then local:splice(string($n))
  else ()
};

local:copy($doc)
