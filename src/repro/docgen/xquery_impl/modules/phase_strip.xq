(: ======================================================================
   phase_strip.xq — final phase: erase the scaffolding, split streams.

   "The final phase walks over the document and destroys all
   <INTERNAL-DATA> tags and their children, thus erasing all the data
   used for communicating between phases.  (Or, strictly, it copies
   everything but the <INTERNAL-DATA> elements, since no mutation
   happens anywhere.)"

   It also assembles the two output streams — the document and the
   problems report — as children of one root element, because "XQuery,
   as is reasonable enough for a query language, produces only a single
   output stream".  A little XSLT program splits them apart afterwards.
   ====================================================================== :)

declare variable $doc external;

declare function local:copy($n) {
  if ($n instance of element())
  then
    if (name($n) eq "INTERNAL-DATA")
    then ()
    else
      element { name($n) } {
        $n/attribute::node(),
        for $c in $n/child::node() return local:copy($c)
      }
  else if ($n instance of text())
  then text { string($n) }
  else ()
};

<output-streams>{
  <document>{ local:copy($doc) }</document>,
  <problems>{
    for $p in $doc//PROBLEM
    return
      <problem severity="{string($p/@severity)}"
               directive="{string($p/@directive)}">{string($p)}</problem>
  }</problems>
}</output-streams>
