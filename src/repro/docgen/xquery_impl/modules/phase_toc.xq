(: ======================================================================
   phase_toc.xq — phase 3: construct the table of contents.

   "Phase 3 constructs the table of contents, similarly."  Headings were
   generated carrying <INTERNAL-DATA><TOC-ENTRY .../></INTERNAL-DATA>;
   this phase numbers them in document order, assigns matching anchors
   to the headings, and replaces the <toc-placeholder/>.

   The entry index is computed with the "<<" document-order comparison —
   an O(n²) idiom, one of the reasons the multi-phase approach "wasn't
   horrible, though it wasn't entirely pleasant either".
   ====================================================================== :)

declare variable $doc external;

declare function local:entry-index($e) {
  count($doc//TOC-ENTRY[. << $e]) + 1
};

declare function local:build-toc() {
  <div class="table-of-contents">{
    <ul>{
      for $e in $doc//TOC-ENTRY
      return
        <li class="{concat('toc-level-', string($e/@level))}">{
          <a href="{concat('#sec-', local:entry-index($e))}">{string($e/@text)}</a>
        }</li>
    }</ul>
  }</div>
};

declare function local:heading-entry($n) {
  ($n/INTERNAL-DATA/TOC-ENTRY)[1]
};

declare function local:copy($n) {
  if ($n instance of element())
  then
    if (name($n) eq "toc-placeholder")
    then local:build-toc()
    else
      let $entry := local:heading-entry($n)
      return
        if (empty($entry))
        then
          element { name($n) } {
            $n/attribute::node(),
            for $c in $n/child::node() return local:copy($c)
          }
        else
          element { name($n) } {
            $n/attribute::node(),
            attribute id { concat("sec-", local:entry-index($entry)) },
            for $c in $n/child::node() return local:copy($c)
          }
  else if ($n instance of text())
  then text { string($n) }
  else ()
};

local:copy($doc)
