(: ======================================================================
   util.xq — utility routines for the XQuery document generator.

   "Following standard software engineering practice, we wrote our own
   utility functions: set manipulation routines, some string- and
   element-handling function like without-leading-or-trailing-spaces
   and child-element-named that XQuery chose not to provide."

   The error convention: a function that can fail returns either its
   answer or an <error> element.  Callers MUST test local:is-error on
   every such return value — the half-dozen-line pattern the paper
   measures.  (And note footnote 1: this convention is unsound when the
   legitimate answer could itself be an <error> element.)
   ====================================================================== :)

declare function local:is-error($v) {
  count($v) eq 1 and $v instance of element(error)
};

declare function local:mk-error($message, $where) {
  <error>
    <message>{$message}</message>
    <location>{$where}</location>
  </error>
};

(: -- element access ---------------------------------------------------- :)

declare function local:child-element-named($parent, $name) {
  ($parent/*[name(.) eq $name])[1]
};

declare function local:required-child($parent, $name, $focus) {
  let $c := local:child-element-named($parent, $name)
  return
    if (empty($c))
    then local:mk-error(
           concat("<", name($parent), "> requires a <", $name, "> child"),
           local:focus-label($focus))
    else $c
};

declare function local:required-attr($elem, $name, $focus) {
  let $a := $elem/attribute::node()[name(.) eq $name]
  return
    if (empty($a))
    then local:mk-error(
           concat("<", name($elem), "> requires a ", $name, " attribute"),
           local:focus-label($focus))
    else string($a)
};

(: -- strings ------------------------------------------------------------ :)

declare function local:without-leading-or-trailing-spaces($s) {
  (: XQuery chose not to provide trim; normalize-space also collapses
     interior runs, which is close enough for labels. :)
  normalize-space($s)
};

(: -- the focus ----------------------------------------------------------- :)

declare function local:focus-label($focus) {
  if (empty($focus)) then "(no focus)"
  else
    let $p := $focus/property[@name eq string($metamodel/@label-property)]
    return if (empty($p)) then string($focus/@id) else string($p[1])
};

declare function local:node-label($n) {
  local:focus-label($n)
};

(: -- metamodel subtype tests ------------------------------------------------ :)

declare function local:is-subtype($type, $ancestor) {
  if ($type eq $ancestor) then true()
  else
    let $def := ($metamodel/node-type[@name eq $type])[1]
    return
      if (empty($def)) then false()
      else if (empty($def/attribute::node()[name(.) eq "parent"])) then false()
      else local:is-subtype(string($def/@parent), $ancestor)
};

declare function local:is-rel-subtype($type, $ancestor) {
  if ($type eq $ancestor) then true()
  else
    let $def := ($metamodel/relation-type[@name eq $type])[1]
    return
      if (empty($def)) then false()
      else if (empty($def/attribute::node()[name(.) eq "parent"])) then false()
      else local:is-rel-subtype(string($def/@parent), $ancestor)
};

(: -- model navigation ---------------------------------------------------------- :)

declare function local:nodes-of-type($type) {
  $model/node[local:is-subtype(string(@type), $type)]
};

declare function local:follow-forward($n, $rel) {
  for $r in $model/relation[local:is-rel-subtype(string(@type), $rel)]
                           [@source eq $n/@id]
  return $model/node[@id eq $r/@target]
};

declare function local:follow-backward($n, $rel) {
  for $r in $model/relation[local:is-rel-subtype(string(@type), $rel)]
                           [@target eq $n/@id]
  return $model/node[@id eq $r/@source]
};

declare function local:connected($a, $b, $rel) {
  some $r in $model/relation[local:is-rel-subtype(string(@type), $rel)]
  satisfies ($r/@source eq $a/@id and $r/@target eq $b/@id)
};

declare function local:property-of($n, $name) {
  ($n/property[@name eq $name])[1]
};

(: -- set-of-strings (the only general set the paper could build) ------------------ :)

declare function local:set-empty() { () };

declare function local:set-add($set, $value) {
  if ($set = $value) then $set else ($set, $value)
  (: "=" used deliberately as membership test, as the paper notes
     doing "once in a while ... and noted in a comment". :)
};

declare function local:set-member($set, $value) {
  $set = $value
};

declare function local:set-union($a, $b) {
  ($a, for $v in $b return if ($a = $v) then () else $v)
};

(: -- internal-data helpers ------------------------------------------------------- :)

declare function local:visited-marker($n) {
  <INTERNAL-DATA><VISITED node-id="{string($n/@id)}"/></INTERNAL-DATA>
};

declare function local:problem-marker($severity, $directive, $message) {
  (
    <INTERNAL-DATA>
      <PROBLEM severity="{$severity}" directive="{$directive}">{$message}</PROBLEM>
    </INTERNAL-DATA>,
    <span class="generation-problem" data-directive="{$directive}">{
      concat("[problem in <", $directive, ">: ", $message, "]")
    }</span>
  )
};

declare function local:error-to-problem($err, $directive) {
  local:problem-marker("error", $directive, string($err/message))
};
