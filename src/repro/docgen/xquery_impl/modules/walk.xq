(: ======================================================================
   walk.xq — the recursive walk over the template.

   "The heart of the document generator is a quite straightforward
   recursive walk over the XML structure of the template, inspecting
   each XML element in turn...  a hundred lines of code, mostly lines
   of the form if ($tag-name = "for") then generate_for(...)."

   local:gen($t, $focus, $depth) returns the generated output nodes for
   one template node.  $depth is the current section nesting depth —
   threaded explicitly because there is no mutable state to keep it in.
   ====================================================================== :)

declare function local:gen($t, $focus, $depth) {
  if ($t instance of text())
  then text { string($t) }
  else if ($t instance of comment())
  then ()
  else if ($t instance of element())
  then
    let $tag := name($t)
    return
      if      ($tag eq "for")                then local:gen-for($t, $focus, $depth)
      else if ($tag eq "if")                 then local:gen-if($t, $focus, $depth)
      else if ($tag eq "label")              then local:gen-label($t, $focus)
      else if ($tag eq "focus-id")           then local:gen-focus-id($t, $focus)
      else if ($tag eq "property-value")     then local:gen-property-value($t, $focus)
      else if ($tag eq "section")            then local:gen-section($t, $focus, $depth)
      else if ($tag eq "table-of-contents")  then <toc-placeholder/>
      else if ($tag eq "table-of-omissions") then local:gen-omissions-placeholder($t)
      else if ($tag eq "table")              then local:gen-table($t, $focus)
      else if ($tag eq "replace-phrase")     then local:gen-replace-phrase($t, $focus, $depth)
      else if ($tag eq "query")              then local:gen-query($t, $focus)
      else if ($tag eq "model-check")        then local:gen-model-check($t)
      else local:copy-through($t, $focus, $depth)
  else ()
};

declare function local:gen-content($children, $focus, $depth) {
  for $c in $children return local:gen($c, $focus, $depth)
};

declare function local:copy-through($t, $focus, $depth) {
  element { name($t) } {
    $t/attribute::node(),
    local:gen-content($t/child::node(), $focus, $depth)
  }
};
