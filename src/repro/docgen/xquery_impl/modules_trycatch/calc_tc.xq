(: ======================================================================
   calc_tc.xq — the query calculus, exceptions regime.

   Identical semantics to modules/calc.xq; step errors throw instead of
   returning <error>, so the fold is two plain functions.
   ====================================================================== :)

declare function local:run-calc($q) {
  let $start := local:calc-start(local:child-element-named($q, "start"))
  let $steps := $q/*[name(.) = ("follow", "filter-type", "filter-property")]
  return local:calc-collect(
    local:child-element-named($q, "collect"),
    local:calc-steps($steps, $start))
};

declare function local:calc-start($start) {
  if (empty($start))
  then error("<query> requires a <start> element")
  else
    let $type := $start/attribute::node()[name(.) eq "type"]
    let $id := $start/attribute::node()[name(.) eq "id"]
    let $all := $start/attribute::node()[name(.) eq "all"]
    return
      if (not(empty($type))) then local:nodes-of-type(string($type))
      else if (not(empty($id))) then $model/node[@id eq string($id)]
      else if (string($all) eq "true") then $model/node
      else error("<start> requires type=, id= or all='true'")
};

declare function local:calc-steps($steps, $nodes) {
  if (empty($steps)) then $nodes
  else local:calc-steps($steps[position() gt 1],
                        local:calc-step($steps[1], $nodes))
};

declare function local:calc-step($step, $nodes) {
  let $tag := name($step)
  return
  if ($tag eq "follow") then
    let $rel := local:required-attr($step, "relation", ())
    let $dir := string($step/attribute::node()[name(.) eq "direction"])
    let $target-type := $step/attribute::node()[name(.) eq "target-type"]
    let $landed :=
      for $n in $nodes
      return
        if ($dir eq "backward")
        then local:follow-backward($n, $rel)
        else local:follow-forward($n, $rel)
    return
      if (empty($target-type)) then $landed
      else $landed[local:is-subtype(string(@type), string($target-type))]
  else if ($tag eq "filter-type") then
    $nodes[local:is-subtype(string(@type),
                            local:required-attr($step, "type", ()))]
  else if ($tag eq "filter-property") then
    let $name := local:required-attr($step, "name", ())
    let $op0 := string($step/attribute::node()[name(.) eq "op"])
    let $op := if ($op0 eq "") then "eq" else $op0
    let $value := string($step/attribute::node()[name(.) eq "value"])
    return $nodes[local:calc-property-test(., $name, $op, $value)]
  else error(concat("unknown calculus step <", $tag, ">"))
};

declare function local:calc-property-test($n, $name, $op, $value) {
  let $p := local:property-of($n, $name)
  return
    if (empty($p)) then false()
    else
      let $actual := string($p)
      return
        if ($op eq "eq") then $actual eq $value
        else if ($op eq "ne") then $actual ne $value
        else if ($op eq "contains") then contains($actual, $value)
        else if ($op eq "lt") then number($actual) lt number($value)
        else if ($op eq "le") then number($actual) le number($value)
        else if ($op eq "gt") then number($actual) gt number($value)
        else if ($op eq "ge") then number($actual) ge number($value)
        else false()
};

declare function local:calc-collect($collect, $nodes) {
  let $distinct-nodes := ($nodes | ())
  let $sort0 := if (empty($collect)) then ()
                else $collect/attribute::node()[name(.) eq "sort-by"]
  let $sort := if (empty($sort0)) then string($metamodel/@label-property)
               else string($sort0)
  let $descending := not(empty($collect)) and
                     string($collect/attribute::node()[name(.) eq "order"])
                       eq "descending"
  return
    if ($descending)
    then
      for $n in $distinct-nodes
      order by string(local:property-of($n, $sort)) descending, string($n/@id) descending
      return $n
    else
      for $n in $distinct-nodes
      order by string(local:property-of($n, $sort)), string($n/@id)
      return $n
};
