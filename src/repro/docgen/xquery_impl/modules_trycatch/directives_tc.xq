(: ======================================================================
   directives_tc.xq — the directives in the EXCEPTIONS regime.

   Same behaviour as modules/directives.xq, but the utilities throw, so
   each generator is the straight-line code the paper could only write in
   Java: "Element c1 = requiredChild(...); Element c2 = requiredChild(...);
   continue to compute."  The single catch lives in walk_tc.xq.
   ====================================================================== :)

(: -- <for nodes="..."> ---------------------------------------------------- :)

declare function local:resolve-node-spec($spec, $elem, $focus) {
  if (starts-with($spec, "all."))
  then
    for $n in local:nodes-of-type(substring-after($spec, "all."))
    order by local:node-label($n), string($n/@id)
    return $n
  else if (starts-with($spec, "follow."))
  then local:follow-forward(local:required-focus($elem, $focus),
                            substring-after($spec, "follow."))
  else if (starts-with($spec, "followback."))
  then local:follow-backward(local:required-focus($elem, $focus),
                             substring-after($spec, "followback."))
  else error(concat("bad nodes spec '", $spec, "'"))
};

declare function local:sorted-by-property($nodes, $prop) {
  for $n in $nodes
  order by string(local:property-of($n, $prop)), string($n/@id)
  return $n
};

declare function local:gen-for($t, $focus, $depth) {
  let $query-child := local:child-element-named($t, "query")
  return
  if (empty($query-child)) then
    let $spec := local:required-attr($t, "nodes", $focus)
    let $nodes0 := local:resolve-node-spec($spec, $t, $focus)
    let $sort := $t/attribute::node()[name(.) eq "sort"]
    let $nodes := if (empty($sort)) then $nodes0
                  else local:sorted-by-property($nodes0, string($sort))
    return
      for $n in $nodes
      return (local:visited-marker($n),
              local:gen-content($t/child::node(), $n, $depth))
  else
    let $nodes := local:run-calc($query-child)
    return
      for $n in $nodes
      return (local:visited-marker($n),
              local:gen-content($t/child::node()[not(. is $query-child)],
                                $n, $depth))
};

(: -- <if><test/><then/><else/></if> ------------------------------------------ :)

declare function local:gen-if($t, $focus, $depth) {
  let $test := local:required-child($t, "test", $focus)
  let $then := local:required-child($t, "then", $focus)
  let $cond := local:eval-test-container($test, $focus)
  return
    if ($cond)
    then local:gen-content($then/child::node(), $focus, $depth)
    else
      let $else := local:child-element-named($t, "else")
      return
        if (empty($else)) then ()
        else local:gen-content($else/child::node(), $focus, $depth)
};

declare function local:eval-test-container($container, $focus) {
  let $tests := $container/child::element()
  return
    if (count($tests) ne 1)
    then error(concat("<", name($container), "> must contain exactly one test"))
    else local:eval-test($tests[1], $focus)
};

declare function local:eval-test($test, $focus) {
  let $tag := name($test)
  return
  if ($tag eq "focus-is-type")
  then local:is-subtype(
         string(local:required-focus($test, $focus)/@type),
         local:required-attr($test, "type", $focus))
  else if ($tag eq "has-property")
  then exists(local:property-of(local:required-focus($test, $focus),
                                local:required-attr($test, "name", $focus)))
  else if ($tag eq "property-equals")
  then
    let $f := local:required-focus($test, $focus)
    let $p := local:property-of($f, local:required-attr($test, "name", $focus))
    let $value := local:required-attr($test, "value", $focus)
    return (not(empty($p)) and string($p) eq $value)
  else if ($tag eq "has-relation")
  then
    let $f := local:required-focus($test, $focus)
    let $rel := local:required-attr($test, "relation", $focus)
    let $dir := $test/attribute::node()[name(.) eq "direction"]
    return
      if (string($dir) eq "backward")
      then exists(local:follow-backward($f, $rel))
      else exists(local:follow-forward($f, $rel))
  else if ($tag eq "not")
  then not(local:eval-test-container($test, $focus))
  else if ($tag eq "and")
  then every $t in $test/child::element() satisfies local:eval-test($t, $focus)
  else if ($tag eq "or")
  then some $t in $test/child::element() satisfies local:eval-test($t, $focus)
  else error(concat("unknown test element <", $tag, ">"))
};

(: -- leaf directives -------------------------------------------------------------- :)

declare function local:gen-label($t, $focus) {
  let $f := local:required-focus($t, $focus)
  return (local:visited-marker($f), text { local:focus-label($f) })
};

declare function local:gen-focus-id($t, $focus) {
  text { string(local:required-focus($t, $focus)/@id) }
};

declare function local:gen-property-value($t, $focus) {
  let $f := local:required-focus($t, $focus)
  let $name := local:required-attr($t, "name", $focus)
  let $p := local:property-of($f, $name)
  return
    if (empty($p)) then
      let $default := $t/attribute::node()[name(.) eq "default"]
      return
        if (empty($default))
        then local:problem-marker("warning", "property-value",
               concat("node '", local:focus-label($f),
                      "' has no property '", $name, "'"))
        else text { string($default) }
    else (
      local:visited-marker($f),
      if (string($p/@type) eq "html")
      then
        let $wrapper := local:child-element-named($p, "html-value")
        return if (empty($wrapper)) then text { string($p) }
               else $wrapper/child::node()
      else text { string($p) }
    )
};

(: -- <section> ----------------------------------------------------------------------- :)

declare function local:gen-section($t, $focus, $depth) {
  let $heading := local:required-child($t, "heading", $focus)
  let $level := if ($depth + 1 gt 6) then 6 else $depth + 1
  let $heading-content := local:gen-content($heading/child::node(), $focus, $depth + 1)
  let $heading-text := normalize-space(string-join(
        for $h in $heading-content return
          if ($h instance of text()) then string($h)
          else if ($h instance of element()) then string($h)
          else "", ""))
  return (
    element { concat("h", $level) } {
      attribute class { "awb-heading" },
      $heading-content,
      <INTERNAL-DATA>
        <TOC-ENTRY level="{$level}" text="{$heading-text}"/>
      </INTERNAL-DATA>
    },
    <div class="section">{
      local:gen-content($t/child::node()[not(. is $heading)], $focus, $depth + 1)
    }</div>
  )
};

(: -- placeholders ------------------------------------------------------------------------ :)

declare function local:gen-omissions-placeholder($t) {
  let $types := $t/attribute::node()[name(.) eq "types"]
  return
    if (empty($types)) then <omissions-placeholder/>
    else <omissions-placeholder types="{string($types)}"/>
};

(: -- <table rows=... cols=... relation=...> --------------------------------------------- :)

declare function local:gen-table($t, $focus) {
  let $rows := local:resolve-node-spec(
                 local:required-attr($t, "rows", $focus), $t, $focus)
  let $cols := local:resolve-node-spec(
                 local:required-attr($t, "cols", $focus), $t, $focus)
  let $rel := local:required-attr($t, "relation", $focus)
  let $mark0 := $t/attribute::node()[name(.) eq "mark"]
  let $mark := if (empty($mark0)) then "✓" else string($mark0)
  return (
    for $n in ($rows, $cols) return local:visited-marker($n),
    <table>{
      <tr>{
        <td>row\col</td>,
        for $c in $cols return <td>{local:node-label($c)}</td>
      }</tr>,
      for $r in $rows return
        <tr>{
          <td>{local:node-label($r)}</td>,
          for $c in $cols return
            <td>{
              if (local:connected($r, $c, $rel)) then $mark else ()
            }</td>
        }</tr>
    }</table>
  )
};

(: -- <replace-phrase> --------------------------------------------------------------------- :)

declare function local:gen-replace-phrase($t, $focus, $depth) {
  let $phrase := local:required-attr($t, "phrase", $focus)
  return
    <INTERNAL-DATA>
      <REPLACEMENT phrase="{$phrase}">{
        local:gen-content($t/child::node(), $focus, $depth)
      }</REPLACEMENT>
    </INTERNAL-DATA>
};

(: -- <query> -------------------------------------------------------------------------------- :)

declare function local:gen-query($t, $focus) {
  let $nodes := local:run-calc($t)
  return
    <ul class="query-result">{
      for $n in $nodes
      return (local:visited-marker($n), <li>{local:node-label($n)}</li>)
    }</ul>
};


(: -- <model-check/> : evaluate the metamodel's advisories ------------------- :)

declare function local:model-problem($message) {
  <INTERNAL-DATA>
    <PROBLEM severity="warning" directive="model-check">{$message}</PROBLEM>
  </INTERNAL-DATA>
};

declare function local:advisory-message($a, $fallback) {
  let $m := $a/attribute::node()[name(.) eq "message"]
  return if (empty($m)) then $fallback else string($m)
};

declare function local:check-advisory($a) {
  let $kind := string($a/@kind)
  return
  if ($kind eq "exactly-one-node") then
    let $matches := local:nodes-of-type(string($a/@type))
    return
      if (count($matches) eq 1) then ()
      else local:model-problem(concat(
        local:advisory-message($a,
          concat("you might want to ensure that there is exactly one ",
                 string($a/@type), " node")),
        " (found ", count($matches), ")"))
  else if ($kind eq "required-property") then
    for $n in local:nodes-of-type(string($a/@type))
    let $p := local:property-of($n, string($a/@property))
    where empty($p) or normalize-space(string($p)) eq ""
    return local:model-problem(local:advisory-message($a,
      concat(string($a/@type), " '", local:node-label($n), "' has no ",
             string($a/@property))))
  else
    local:model-problem(concat("advisory kind '", $kind,
                               "' is not understood"))
};

declare function local:gen-model-check($t) {
  for $a in $metamodel/advisory return local:check-advisory($a)
};
