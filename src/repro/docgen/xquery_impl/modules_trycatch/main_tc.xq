(: ======================================================================
   main_tc.xq — phase 1 entry point, exceptions regime.

   Identical to modules/main.xq; only the library it is assembled with
   differs.
   ====================================================================== :)

declare variable $model external;
declare variable $metamodel external;
declare variable $template external;

<phase1-output>{ local:gen($template, (), 0) }</phase1-output>
