(: ======================================================================
   util_tc.xq — utilities for the EXCEPTIONS-regime generator.

   The alternative universe where XQuery had lesson 4 from the start:
   required-child and required-attr THROW (fn:error) instead of returning
   <error> values, so callers are straight-line code.  Compare with
   modules/util.xq (the 2004 error-value regime).
   ====================================================================== :)

(: -- element access: throwing versions ---------------------------------- :)

declare function local:required-child($parent, $name, $focus) {
  let $c := ($parent/*[name(.) eq $name])[1]
  return
    if (empty($c))
    then error(concat("<", name($parent), "> requires a <", $name, "> child"))
    else $c
};

declare function local:required-attr($elem, $name, $focus) {
  let $a := $elem/attribute::node()[name(.) eq $name]
  return
    if (empty($a))
    then error(concat("<", name($elem), "> requires a ", $name, " attribute"))
    else string($a)
};

declare function local:child-element-named($parent, $name) {
  ($parent/*[name(.) eq $name])[1]
};

declare function local:without-leading-or-trailing-spaces($s) {
  normalize-space($s)
};

(: -- the focus ------------------------------------------------------------ :)

declare function local:focus-label($focus) {
  if (empty($focus)) then "(no focus)"
  else
    let $p := $focus/property[@name eq string($metamodel/@label-property)]
    return if (empty($p)) then string($focus/@id) else string($p[1])
};

declare function local:node-label($n) {
  local:focus-label($n)
};

declare function local:required-focus($t, $focus) {
  if (empty($focus))
  then error(concat("<", name($t), "> needs a focus node (is it inside a <for>?)"))
  else $focus
};

(: -- metamodel subtype tests ------------------------------------------------ :)

declare function local:is-subtype($type, $ancestor) {
  if ($type eq $ancestor) then true()
  else
    let $def := ($metamodel/node-type[@name eq $type])[1]
    return
      if (empty($def)) then false()
      else if (empty($def/attribute::node()[name(.) eq "parent"])) then false()
      else local:is-subtype(string($def/@parent), $ancestor)
};

declare function local:is-rel-subtype($type, $ancestor) {
  if ($type eq $ancestor) then true()
  else
    let $def := ($metamodel/relation-type[@name eq $type])[1]
    return
      if (empty($def)) then false()
      else if (empty($def/attribute::node()[name(.) eq "parent"])) then false()
      else local:is-rel-subtype(string($def/@parent), $ancestor)
};

(: -- model navigation ---------------------------------------------------------- :)

declare function local:nodes-of-type($type) {
  $model/node[local:is-subtype(string(@type), $type)]
};

declare function local:follow-forward($n, $rel) {
  for $r in $model/relation[local:is-rel-subtype(string(@type), $rel)]
                           [@source eq $n/@id]
  return $model/node[@id eq $r/@target]
};

declare function local:follow-backward($n, $rel) {
  for $r in $model/relation[local:is-rel-subtype(string(@type), $rel)]
                           [@target eq $n/@id]
  return $model/node[@id eq $r/@source]
};

declare function local:connected($a, $b, $rel) {
  some $r in $model/relation[local:is-rel-subtype(string(@type), $rel)]
  satisfies ($r/@source eq $a/@id and $r/@target eq $b/@id)
};

declare function local:property-of($n, $name) {
  ($n/property[@name eq $name])[1]
};

(: -- internal-data helpers ------------------------------------------------------- :)

declare function local:visited-marker($n) {
  <INTERNAL-DATA><VISITED node-id="{string($n/@id)}"/></INTERNAL-DATA>
};

declare function local:problem-marker($severity, $directive, $message) {
  (
    <INTERNAL-DATA>
      <PROBLEM severity="{$severity}" directive="{$directive}">{$message}</PROBLEM>
    </INTERNAL-DATA>,
    <span class="generation-problem" data-directive="{$directive}">{
      concat("[problem in <", $directive, ">: ", $message, "]")
    }</span>
  )
};
