"""Runner for the XQuery implementation of the document generator.

The generator itself is genuinely written in XQuery — the ``modules/*.xq``
files next to this module — and executed by :mod:`repro.xquery`.  The
Python side only:

* concatenates the library modules with ``main.xq`` into one program (the
  2004 engine had no module system to speak of, and neither does ours);
* binds the external variables (``$model``, ``$metamodel``, ``$template``);
* runs the five phases, each a whole-document copy, measuring the bytes
  each phase re-serializes (experiment E4's evidence);
* splits the single output stream into document + problems with the
  mini-XSLT program, as the paper did.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from ...awb.model import Model
from ...awb.xml_io import export_metamodel, export_model
from ...xdm import ElementNode, Node
from ...xmlio import serialize
from ...xquery import EngineConfig, TraceLog, XQueryEngine
from ...xslt import transform
from ..template import GenerationResult, Problem, TocEntry, load_template

MODULES_DIR = os.path.join(os.path.dirname(__file__), "modules")
MODULES_TC_DIR = os.path.join(os.path.dirname(__file__), "modules_trycatch")

#: library modules, in concatenation order (prolog-only files first).
LIBRARY_MODULES = ("util.xq", "calc.xq", "directives.xq", "walk.xq")

#: the exceptions-regime variant (see DESIGN.md ablation A4): same
#: behaviour, written with the try/catch extension instead of the
#: error-as-value convention.
LIBRARY_MODULES_TC = ("util_tc.xq", "calc_tc.xq", "directives_tc.xq", "walk_tc.xq")

#: the stream-splitting stylesheets ("a little XSLT program could split
#: them apart").
SPLIT_DOCUMENT_XSLT = """
<xsl:stylesheet>
  <xsl:template match="/">
    <xsl:apply-templates select="output-streams/document"/>
  </xsl:template>
  <xsl:template match="document">
    <xsl:copy-of select="child::node()"/>
  </xsl:template>
</xsl:stylesheet>
"""

SPLIT_PROBLEMS_XSLT = """
<xsl:stylesheet>
  <xsl:template match="/">
    <problem-report>
      <xsl:copy-of select="output-streams/problems/problem"/>
    </problem-report>
  </xsl:template>
</xsl:stylesheet>
"""


def read_module(name: str) -> str:
    """Read one shipped .xq module's source text (either regime's dir)."""
    directory = MODULES_TC_DIR if name.endswith("_tc.xq") else MODULES_DIR
    with open(os.path.join(directory, name), "r", encoding="utf-8") as handle:
        return handle.read()


def assemble_main_program(error_regime: str = "values") -> str:
    """The phase-1 program: the main module's prolog + the library.

    ``error_regime`` selects the 2004 error-as-value sources ("values")
    or the try/catch rewrite ("exceptions").  The main module contributes
    the ``declare variable`` prolog and the body; library declarations are
    spliced in before the body expression.
    """
    if error_regime == "values":
        main_source = read_module("main.xq")
        modules = LIBRARY_MODULES
    elif error_regime == "exceptions":
        main_source = read_module("main_tc.xq")
        modules = LIBRARY_MODULES_TC
    else:
        raise ValueError(f"unknown error regime {error_regime!r}")
    library = "\n".join(read_module(name) for name in modules)
    marker = "<phase1-output>"
    index = main_source.index(marker)
    return main_source[:index] + "\n" + library + "\n" + main_source[index:]


class XQueryDocumentGenerator:
    """Generates documents by running the XQuery generator sources."""

    def __init__(
        self,
        model: Model,
        engine: Optional[XQueryEngine] = None,
        config: Optional[EngineConfig] = None,
        error_regime: str = "values",
    ):
        if error_regime not in ("values", "exceptions"):
            raise ValueError(f"unknown error regime {error_regime!r}")
        self.error_regime = error_regime
        self.model = model
        if engine is not None:
            self.engine = engine
        else:
            self.engine = XQueryEngine(config=config or EngineConfig())
        self._model_xml: Optional[ElementNode] = None
        self._metamodel_xml: Optional[ElementNode] = None
        self._compiled: Dict[str, object] = {}

    def invalidate_export(self) -> None:
        """Drop cached model XML (call after mutating the model)."""
        self._model_xml = None

    @property
    def model_xml(self) -> ElementNode:
        if self._model_xml is None:
            self._model_xml = export_model(self.model).document_element()
        return self._model_xml

    @property
    def metamodel_xml(self) -> ElementNode:
        if self._metamodel_xml is None:
            self._metamodel_xml = export_metamodel(self.model.metamodel)
        return self._metamodel_xml

    def _compiled_query(self, key: str, source: str):
        compiled = self._compiled.get(key)
        if compiled is None:
            compiled = self.engine.compile(source)
            self._compiled[key] = compiled
        return compiled

    def generate(self, template_source, trace: Optional[TraceLog] = None) -> GenerationResult:
        """Run all five phases plus the XSLT stream split."""
        template = load_template(template_source)
        bytes_per_phase: Dict[str, int] = {}

        def measure(phase: str, node: Node) -> Node:
            bytes_per_phase[phase] = len(serialize(node))
            return node

        # Phase 1: generate the whole document (with INTERNAL-DATA).
        main_program = self._compiled_query(
            f"main-{self.error_regime}", assemble_main_program(self.error_regime)
        )
        phase1 = main_program.run(
            variables={
                "model": self.model_xml,
                "metamodel": self.metamodel_xml,
                "template": template,
            },
            trace=trace,
        )
        document = _single_element(phase1, "phase1-output")
        inner = document.child_elements()
        current: ElementNode = inner[0] if inner else document
        measure("phase1_generate", current)

        # Phases 2-4: whole-document copies.
        for phase_name, module, extra in (
            ("phase2_omissions", "phase_omissions.xq", True),
            ("phase3_toc", "phase_toc.xq", False),
            ("phase4_replace", "phase_replace.xq", False),
        ):
            program = self._compiled_query(module, read_module(module))
            variables = {"doc": current}
            if extra:
                variables["model"] = self.model_xml
                variables["metamodel"] = self.metamodel_xml
            result = program.run(variables=variables, trace=trace)
            current = _single_element(result, phase_name)
            measure(phase_name, current)

        # Phase 5: strip INTERNAL-DATA and assemble the output streams.
        strip_program = self._compiled_query("phase_strip.xq", read_module("phase_strip.xq"))
        streams_result = strip_program.run(variables={"doc": current}, trace=trace)
        streams = _single_element(streams_result, "output-streams")
        measure("phase5_strip", streams)

        # The XSLT split.
        document_nodes = transform(SPLIT_DOCUMENT_XSLT, _as_document(streams))
        problems_nodes = transform(SPLIT_PROBLEMS_XSLT, _as_document(streams))
        final_document = _first_element(document_nodes) or ElementNode("document")

        problems = _problems_from(problems_nodes)
        toc = _toc_from(current)
        visited = _visited_from(current)
        return GenerationResult(
            document=final_document,
            problems=problems,
            toc=toc,
            visited_node_ids=visited,
            metrics={
                "implementation": "xquery",
                "error_regime": self.error_regime,
                "backend": self.engine.config.backend,
                "phases": 5,
                "bytes_per_phase": bytes_per_phase,
                "bytes_copied_total": sum(bytes_per_phase.values()),
            },
        )


def _single_element(result, what: str) -> ElementNode:
    elements = [item for item in result if isinstance(item, ElementNode)]
    if len(elements) != 1:
        raise RuntimeError(
            f"{what}: expected one root element from the phase, got {len(elements)}"
        )
    return elements[0]


def _first_element(nodes: List[Node]) -> Optional[ElementNode]:
    for node in nodes:
        if isinstance(node, ElementNode):
            return node
    return None


def _as_document(root: ElementNode):
    from ...xdm import DocumentNode

    return DocumentNode([root.copy()])


def _problems_from(nodes: List[Node]) -> List[Problem]:
    report = _first_element(nodes)
    problems: List[Problem] = []
    if report is None:
        return problems
    for entry in report.child_elements("problem"):
        problems.append(
            Problem(
                message=entry.string_value(),
                severity=entry.get_attribute("severity") or "error",
                directive=entry.get_attribute("directive"),
            )
        )
    return problems


def _toc_from(phase_output: ElementNode) -> List[TocEntry]:
    entries: List[TocEntry] = []
    for index, node in enumerate(
        (
            n
            for n in phase_output.descendants_or_self()
            if isinstance(n, ElementNode) and n.name == "TOC-ENTRY"
        ),
        start=1,
    ):
        entries.append(
            TocEntry(
                level=int(node.get_attribute("level") or 1),
                text=node.get_attribute("text") or "",
                anchor=f"sec-{index}",
            )
        )
    return entries


def _visited_from(phase_output: ElementNode) -> List[str]:
    seen: Dict[str, None] = {}
    for node in phase_output.descendants_or_self():
        if isinstance(node, ElementNode) and node.name == "VISITED":
            node_id = node.get_attribute("node-id")
            if node_id:
                seen.setdefault(node_id, None)
    return list(seen)
