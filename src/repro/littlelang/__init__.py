"""The paper's moral, operationalized: lessons and language audits."""

from .audit import (
    LanguageProfile,
    LessonVerdict,
    profile_java_style_host,
    profile_xquery_2004,
    render_scorecard,
    scorecard_rows,
)
from .lessons import LESSONS, Lesson, lesson_by_slug

__all__ = [
    "LESSONS",
    "LanguageProfile",
    "Lesson",
    "LessonVerdict",
    "lesson_by_slug",
    "profile_java_style_host",
    "profile_xquery_2004",
    "render_scorecard",
    "scorecard_rows",
]
