"""Auditing languages against the seven lessons.

A :class:`LanguageProfile` states, per lesson, whether the language
satisfies it, with a note.  Profiles for the two languages the paper
compares — the 2004 XQuery subset built here, and the Java-style host
language — produce the scorecard experiment E11 prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .lessons import LESSONS, Lesson


@dataclass
class LessonVerdict:
    """One row of the scorecard."""

    lesson: Lesson
    satisfied: bool
    note: str


@dataclass
class LanguageProfile:
    """Per-lesson answers for one language."""

    name: str
    answers: Dict[str, object] = field(default_factory=dict)  # slug -> (bool, note)

    def answer(self, slug: str, satisfied: bool, note: str) -> None:
        self.answers[slug] = (satisfied, note)

    def audit(self) -> List[LessonVerdict]:
        verdicts = []
        for lesson in LESSONS:
            satisfied, note = self.answers.get(
                lesson.slug, (False, "no answer recorded")
            )
            verdicts.append(LessonVerdict(lesson, satisfied, note))
        return verdicts

    def score(self) -> int:
        return sum(1 for verdict in self.audit() if verdict.satisfied)


#: the paper's canonical probes for the debugging lesson: the dead-trace
#: program (examples/debugging_story.py) and its insinuated fix.
_DEAD_TRACE_PROBE = (
    "let $x := 6 * 7\n"
    'let $dummy := trace("x=", $x)\n'
    "let $y := $x idiv 0\n"
    "return $y"
)
_LIVE_TRACE_PROBE = 'let $x := trace("x=", 6 * 7)\nlet $y := $x idiv 0\nreturn $y'


def measured_dead_trace_diagnostics() -> Dict[str, int]:
    """XQL001 counts on the canonical probes, measured by the analyzer.

    The scorecard cites these instead of a hand-written claim: the linter
    flags the dead-trace probe (1 finding) and passes the insinuated
    version (0 findings), demonstrating both the footgun and its fix.
    """
    from ..xquery.analysis import analyze_source

    def count(source: str) -> int:
        return sum(
            1 for d in analyze_source(source, select=["XQL001"])
        )

    return {
        "dead_trace_probe": count(_DEAD_TRACE_PROBE),
        "insinuated_fix": count(_LIVE_TRACE_PROBE),
    }


def profile_xquery_2004() -> LanguageProfile:
    """The draft-era XQuery this repo implements, as the paper found it."""
    profile = LanguageProfile("XQuery (2004 draft, Galax-era)")
    profile.answer(
        "data-structures",
        False,
        "sequences flatten and cannot nest; attribute nodes break element "
        "containers; general-purpose sets/maps need value encoding",
    )
    profile.answer(
        "mutability",
        False,
        "purely functional by design (a defensible choice, but the ToC and "
        "omissions features each cost a whole-document phase)",
    )
    profile.answer(
        "control-structures",
        True,
        "FLWOR, if/then/else, quantifiers, recursive functions — "
        "'XQuery got this one right'",
    )
    profile.answer(
        "exceptions",
        False,
        "fn:error only throws; nothing catches, so errors travel as "
        "<error> return values checked after every call",
    )
    measured = measured_dead_trace_diagnostics()
    profile.answer(
        "debugging",
        False,
        "error() kills the program; trace() arrived late and the optimizer "
        "deleted it as dead code (measured: xqlint flags "
        f"{measured['dead_trace_probe']} XQL001 on the dead-trace probe, "
        f"{measured['insinuated_fix']} on the insinuated fix)",
    )
    profile.answer(
        "syntax",
        False,
        "x is a name test not a variable; $n-1 is one variable; '=' is an "
        "existential comparison (historically forced, still confusing)",
    )
    profile.answer(
        "focus",
        True,
        "superb at dissecting and reassembling XML — 'a delight to use' "
        "for exactly that",
    )
    return profile


def profile_java_style_host() -> LanguageProfile:
    """The general-purpose host (Java in the paper; Python here)."""
    profile = LanguageProfile("Java-style general-purpose host")
    profile.answer(
        "data-structures", True, "lists, maps, sets, tuples, user classes"
    )
    profile.answer("mutability", True, "mutable collections and in-place XML trees")
    profile.answer("control-structures", True, "everything, trivially")
    profile.answer(
        "exceptions",
        True,
        "typed exceptions with payloads (GenTrouble); checked at the top, "
        "invisible elsewhere",
    )
    profile.answer("debugging", True, "print, logging, debuggers, stack traces")
    profile.answer("syntax", True, "conventional operators and variables")
    profile.answer(
        "focus",
        False,
        "no inherent XML support: 'producing XML in Java is quite "
        "unpleasant'; simple dissections were several times harder",
    )
    return profile


def scorecard_rows(profiles: List[LanguageProfile]) -> List[List[str]]:
    """Rows for a printed scorecard: one row per lesson, one col per lang."""
    rows = []
    for lesson in LESSONS:
        row = [f"{lesson.number}. {lesson.title}"]
        for profile in profiles:
            satisfied, _ = profile.answers.get(lesson.slug, (False, ""))
            row.append("yes" if satisfied else "NO")
        rows.append(row)
    return rows


def render_scorecard(profiles: List[LanguageProfile]) -> str:
    """A plain-text scorecard table."""
    rows = scorecard_rows(profiles)
    header = ["Lesson"] + [profile.name for profile in profiles]
    widths = [
        max(len(str(row[column])) for row in [header] + rows)
        for column in range(len(header))
    ]
    lines = []

    def format_row(row: List[str]) -> str:
        return "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))

    lines.append(format_row(header))
    lines.append(format_row(["-" * width for width in widths]))
    for row in rows:
        lines.append(format_row(row))
    for profile in profiles:
        lines.append(f"{profile.name}: {profile.score()}/{len(LESSONS)} lessons satisfied")
    return "\n".join(lines)
