"""The paper's seven lessons for little-language designers, as data.

"Here are the most intense lessons from the XQuery experience, which are
likely to apply to other high-end little languages as well."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class Lesson:
    """One of the paper's closing lessons."""

    number: int
    slug: str
    title: str
    summary: str


LESSONS: List[Lesson] = [
    Lesson(
        1,
        "data-structures",
        "Provide basic data structures",
        "A full library is probably not worth implementing, but lists and "
        "maps may well be enough.",
    ),
    Lesson(
        2,
        "mutability",
        "Provide mutable data structures, unless there is a good reason not to",
        "Many computations are easier to phrase with mutation than without; "
        "in a little language, working around its absence is harder than in "
        "a big one.",
    ),
    Lesson(
        3,
        "control-structures",
        "Provide basic control structures",
        "Iteration, function definition and call (including recursion), "
        "if-then-else, and variable binding are probably enough.  (XQuery "
        "got this one right.)",
    ),
    Lesson(
        4,
        "exceptions",
        "Provide exception handling",
        "A very rudimentary form will do — e.g. a single Exception type "
        "capable of holding a map with arbitrary data in it.",
    ),
    Lesson(
        5,
        "debugging",
        "Have some debugging or tracing features",
        "User code will inevitably have errors.  A print command and, if "
        "you feel fancy, a simple tracing command.",
    ),
    Lesson(
        6,
        "syntax",
        "Have a sensible and traditional syntax where possible",
        'Using "=" to mean "nonempty intersection" is unnecessarily '
        "confusing.  XQuery had no choice; your little language may.",
    ),
    Lesson(
        7,
        "focus",
        "Aside from the above, focus on the main purpose",
        "The main point of a little language is to be very good at some "
        "topic, in a way which would be out of place in a big language.",
    ),
]


def lesson_by_slug(slug: str) -> Lesson:
    for lesson in LESSONS:
        if lesson.slug == slug:
            return lesson
    raise KeyError(slug)
