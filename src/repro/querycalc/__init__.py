"""The AWB query calculus: one little language, two interpreters."""

from .ast import Collect, FilterProperty, FilterType, Follow, Query, Start
from .native import QueryRuntimeError, run_query
from .parser import QueryParseError, parse_query_xml
from .service import (
    BatchItem,
    FaultConfig,
    FaultInjector,
    QueryError,
    QueryOverloadError,
    QueryService,
    normalize_query,
)
from .via_xquery import XQueryCalculusBackend

__all__ = [
    "BatchItem",
    "Collect",
    "FaultConfig",
    "FaultInjector",
    "FilterProperty",
    "FilterType",
    "Follow",
    "Query",
    "QueryError",
    "QueryOverloadError",
    "QueryParseError",
    "QueryRuntimeError",
    "QueryService",
    "Start",
    "XQueryCalculusBackend",
    "normalize_query",
    "parse_query_xml",
    "run_query",
]
