"""Command-line query-calculus runner.

Usage::

    python -m repro.querycalc --model model.xml --query query.xml
    python -m repro.querycalc --model model.xml --query query.xml \
        --backend xquery --show-compiled
    python -m repro.querycalc --model model.xml --query query.xml \
        --backend service --repeat 5 --time

The ``xquery`` backend is the paper's "preposterously inefficient"
configuration — useful for feeling the difference first-hand.  The
``service`` backend puts the serving layer (plan/result caches over the
closure-compiled engine) in front of it; with ``--repeat`` the cold
first run and warm repeats are printed separately, demonstrating by hand
what E15 measures.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..awb import import_model_text, load_metamodel
from ..xquery.errors import XQueryError
from .native import run_query
from .parser import parse_query_xml
from .service import FaultConfig, FaultInjector, QueryService, classify_error
from .via_xquery import XQueryCalculusBackend


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.querycalc",
        description="Run an AWB query-calculus query against a model export.",
    )
    parser.add_argument("--model", required=True, help="AWB model XML export")
    parser.add_argument(
        "--metamodel",
        default="it-architecture",
        help="builtin metamodel name (default: it-architecture)",
    )
    parser.add_argument("--query", required=True, help="calculus query XML file")
    parser.add_argument(
        "--backend",
        choices=("native", "xquery", "service"),
        default="native",
        help="interpreter to use (default: native); 'service' is the "
        "cached serving layer over the xquery path",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="run the query N times (with --time, prints per-run latency; "
        "under --backend service the first run is cold, the rest warm)",
    )
    parser.add_argument(
        "--show-compiled",
        action="store_true",
        help="print the generated XQuery (xquery/service backends only)",
    )
    parser.add_argument("--time", action="store_true", help="print timing")
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-query wall-clock budget; a run that exceeds it fails "
        "with XQDY_TIMEOUT (service backend only)",
    )
    parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="chaos-test the serving path, e.g. 'eval=0.1,stall=0.05,"
        "stall-ms=40,seed=7' (service backend only)",
    )
    parser.add_argument(
        "--mode",
        choices=("thread", "process"),
        default="thread",
        help="service execution mode: 'thread' (in-process caches+dedup) "
        "or 'process' (the shared-nothing worker-process tier; service "
        "backend only)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="service worker count; 0 means one per CPU core (service "
        "backend only)",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="after the initial --query, keep serving: read query XML "
        "file paths from stdin (one per line) until EOF (service "
        "backend only)",
    )
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error("--repeat must be >= 1")
    if args.backend != "service" and args.timeout is not None:
        parser.error("--timeout requires --backend service")
    if args.backend != "service" and args.inject_faults is not None:
        parser.error("--inject-faults requires --backend service")
    if args.backend != "service" and (
        args.serve or args.mode != "thread" or args.workers != 4
    ):
        parser.error("--serve/--mode/--workers require --backend service")

    with open(args.model, "r", encoding="utf-8") as handle:
        model = import_model_text(handle.read(), load_metamodel(args.metamodel))
    with open(args.query, "r", encoding="utf-8") as handle:
        query = parse_query_xml(handle.read())

    service = None
    backend = None
    if args.backend == "service":
        injector = None
        if args.inject_faults is not None:
            try:
                injector = FaultInjector(FaultConfig.parse(args.inject_faults))
            except ValueError as exc:
                parser.error(str(exc))
        service = QueryService(
            model,
            default_timeout=args.timeout,
            fault_injector=injector,
            mode=args.mode,
            workers=args.workers,
        )
    elif args.backend == "xquery":
        backend = XQueryCalculusBackend(model)
    if args.show_compiled and args.backend != "native":
        compiler = backend or XQueryCalculusBackend(model)
        print(compiler.compile_to_xquery(query), file=sys.stderr)

    nodes = []
    timings = []
    failures = 0
    last_error = None
    for _ in range(args.repeat):
        started = time.perf_counter()
        if args.backend == "native":
            nodes = run_query(query, model)
        elif args.backend == "xquery":
            nodes = backend.run(query)
        else:
            try:
                nodes = service.run(query)
            except Exception as exc:  # structured failure, not a crash
                if not isinstance(exc, XQueryError) and not hasattr(
                    exc, "query_error_kind"
                ):
                    raise
                error = classify_error(exc)
                failures += 1
                last_error = error
                print(f"query failed — {error}", file=sys.stderr)
        timings.append(time.perf_counter() - started)

    for node in nodes:
        print(f"{node.id}\t{node.type_name}\t{node.label}")
    if args.time:
        for index, elapsed in enumerate(timings, start=1):
            temperature = ""
            if args.backend == "service":
                temperature = " (cold)" if index == 1 else " (warm)"
            print(
                f"run {index}: {elapsed * 1000:.2f}ms{temperature}",
                file=sys.stderr,
            )
        print(
            f"{len(nodes)} result(s), best of {args.repeat}: "
            f"{min(timings) * 1000:.2f}ms ({args.backend} backend)",
            file=sys.stderr,
        )
        if service is not None:
            metrics = service.metrics()
            print(
                f"service: {metrics['queries']} queries, "
                f"{metrics['hits']} result-cache hit(s), "
                f"{metrics['misses']} miss(es), "
                f"{metrics['errors']} error(s), "
                f"{metrics['timeouts']} timeout(s), "
                f"{metrics['fallbacks']} fallback(s), "
                f"p50 {metrics['p50_ms']:.2f}ms p95 {metrics['p95_ms']:.2f}ms",
                file=sys.stderr,
            )
    if args.serve and service is not None:
        print(
            "serving: one query XML path per line (EOF to stop)",
            file=sys.stderr,
        )
        for line in sys.stdin:
            path = line.strip()
            if not path:
                continue
            started = time.perf_counter()
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    served = service.run(parse_query_xml(handle.read()))
            except Exception as exc:  # keep serving: failures are per-request
                print(f"{path}: failed — {classify_error(exc)}", file=sys.stderr)
                continue
            elapsed = (time.perf_counter() - started) * 1000.0
            source = " (cache)" if served.served_from_cache else ""
            print(
                f"# {path}: {len(served)} result(s) in {elapsed:.2f}ms{source}",
                file=sys.stderr,
            )
            for node in served:
                print(f"{node.id}\t{node.type_name}\t{node.label}")

    if service is not None:
        service.close()
    if failures:
        print(
            f"{failures}/{args.repeat} run(s) failed; last: {last_error}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
