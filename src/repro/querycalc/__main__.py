"""Command-line query-calculus runner.

Usage::

    python -m repro.querycalc --model model.xml --query query.xml
    python -m repro.querycalc --model model.xml --query query.xml \
        --backend xquery --show-compiled

The ``xquery`` backend is the paper's "preposterously inefficient"
configuration — useful for feeling the difference first-hand.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..awb import import_model_text, load_metamodel
from .native import run_query
from .parser import parse_query_xml
from .via_xquery import XQueryCalculusBackend


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.querycalc",
        description="Run an AWB query-calculus query against a model export.",
    )
    parser.add_argument("--model", required=True, help="AWB model XML export")
    parser.add_argument(
        "--metamodel",
        default="it-architecture",
        help="builtin metamodel name (default: it-architecture)",
    )
    parser.add_argument("--query", required=True, help="calculus query XML file")
    parser.add_argument(
        "--backend",
        choices=("native", "xquery"),
        default="native",
        help="interpreter to use (default: native)",
    )
    parser.add_argument(
        "--show-compiled",
        action="store_true",
        help="print the generated XQuery (xquery backend only)",
    )
    parser.add_argument("--time", action="store_true", help="print timing")
    args = parser.parse_args(argv)

    with open(args.model, "r", encoding="utf-8") as handle:
        model = import_model_text(handle.read(), load_metamodel(args.metamodel))
    with open(args.query, "r", encoding="utf-8") as handle:
        query = parse_query_xml(handle.read())

    started = time.perf_counter()
    if args.backend == "native":
        nodes = run_query(query, model)
    else:
        backend = XQueryCalculusBackend(model)
        if args.show_compiled:
            print(backend.compile_to_xquery(query), file=sys.stderr)
        nodes = backend.run(query)
    elapsed = time.perf_counter() - started

    for node in nodes:
        print(f"{node.id}\t{node.type_name}\t{node.label}")
    if args.time:
        print(
            f"{len(nodes)} result(s) in {elapsed * 1000:.2f}ms "
            f"({args.backend} backend)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
