"""AST of the AWB query calculus.

"A significant part of this was the AWB query language — a little calculus
in which one could say, for example, 'Start at this user; follow the
relation likes forwards; follow the relation uses but only to computer
programs from there; collect the results, sorted by label.'"

The calculus is deliberately small: a start set, a pipeline of steps, and
a collect clause.  It exists twice in this repo — interpreted natively
over the live graph (:mod:`repro.querycalc.native`) and compiled to XQuery
over the XML export (:mod:`repro.querycalc.via_xquery`) — because having
"two implementations of the same query language" is exactly the situation
the paper's team refused to live with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Start:
    """The starting node set: by type, by id, or everything."""

    type: Optional[str] = None
    node_id: Optional[str] = None
    all_nodes: bool = False


@dataclass
class Follow:
    """Follow a relation one hop.

    ``direction`` is ``forward`` (source → target) or ``backward``;
    ``target_type`` optionally filters the landing nodes ("follow the
    relation uses but only to computer programs").
    """

    relation: str
    direction: str = "forward"
    target_type: Optional[str] = None
    include_subrelations: bool = True


@dataclass
class FilterType:
    """Keep only nodes of the given type (including subtypes)."""

    type: str


@dataclass
class FilterProperty:
    """Keep nodes whose property satisfies a comparison.

    ``op`` ∈ {eq, ne, lt, le, gt, ge, contains}.  Missing properties never
    satisfy anything (suggestive, not punitive).
    """

    name: str
    op: str = "eq"
    value: str = ""


@dataclass
class Collect:
    """Terminal clause: dedupe and sort.

    ``sort_by`` names a property (default the metamodel's label property);
    ``descending`` flips the order; ``distinct`` controls dedup (default
    on — "collect all the objects reached from that into a set without
    duplicates").
    """

    sort_by: Optional[str] = None
    descending: bool = False
    distinct: bool = True


#: a pipeline step.
Step = object


@dataclass
class Query:
    """A complete calculus query.

    ``trace`` optionally labels the query for diagnostics: the XQuery
    backend wraps the collected result in ``fn:trace(..., label)``, so the
    serving layer can record (and replay, on cache hits) what the query
    saw — the E8 story, done right this time.
    """

    start: Start = field(default_factory=Start)
    steps: List[Step] = field(default_factory=list)
    collect: Collect = field(default_factory=Collect)
    trace: Optional[str] = None
