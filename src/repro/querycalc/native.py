"""Native interpreter for the query calculus — the "Java" implementation.

Runs directly over the live :class:`~repro.awb.model.Model` graph with
its adjacency indexes.  This is the implementation the whole project
converged on: "There was only one sensible choice for the good of the
project as a whole."
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..awb.model import Model, ModelNode
from .ast import Collect, FilterProperty, FilterType, Follow, Query, Start


class QueryRuntimeError(ValueError):
    """The query references something the model cannot answer."""


def run_query(query: Query, model: Model) -> List[ModelNode]:
    """Evaluate a calculus query against a live model."""
    nodes = _start_set(query.start, model)
    for step in query.steps:
        if isinstance(step, Follow):
            nodes = _follow(step, nodes, model)
        elif isinstance(step, FilterType):
            nodes = [node for node in nodes if node.is_type(step.type)]
        elif isinstance(step, FilterProperty):
            predicate = _property_predicate(step)
            nodes = [node for node in nodes if predicate(node)]
        else:
            raise QueryRuntimeError(f"unknown step {type(step).__name__}")
    return _collect(query.collect, nodes, model)


def _start_set(start: Start, model: Model) -> List[ModelNode]:
    if start.all_nodes:
        return model.all_nodes()
    if start.node_id is not None:
        node = model.nodes.get(start.node_id)
        if node is None:
            raise QueryRuntimeError(f"start node {start.node_id!r} is not in the model")
        return [node]
    return model.nodes_of_type(start.type)


def _follow(step: Follow, nodes: List[ModelNode], model: Model) -> List[ModelNode]:
    reached: List[ModelNode] = []
    for node in nodes:
        if step.direction == "forward":
            relations = model.outgoing(
                node, step.relation, include_subrelations=step.include_subrelations
            )
            landings = [relation.target for relation in relations]
        else:
            relations = model.incoming(
                node, step.relation, include_subrelations=step.include_subrelations
            )
            landings = [relation.source for relation in relations]
        if step.target_type is not None:
            landings = [n for n in landings if n.is_type(step.target_type)]
        reached.extend(landings)
    return reached


def _property_predicate(step: FilterProperty) -> Callable[[ModelNode], bool]:
    def predicate(node: ModelNode) -> bool:
        value = node.get(step.name)
        if value is None:
            return False
        if step.op == "contains":
            return step.value in _text(value)
        try:
            left, right = _coerce_pair(value, step.value)
        except ValueError:
            return False
        if step.op == "eq":
            return left == right
        if step.op == "ne":
            return left != right
        if step.op == "lt":
            return left < right
        if step.op == "le":
            return left <= right
        if step.op == "gt":
            return left > right
        if step.op == "ge":
            return left >= right
        raise QueryRuntimeError(f"unknown filter op {step.op!r}")

    return predicate


def _text(value: object) -> str:
    """A property value as its canonical (export) text.

    Booleans read as ``true``/``false`` — the form the XML export writes
    and the form queries are written against.  Leaking Python's
    ``True``/``False`` here made ``contains``/sorting disagree with the
    XQuery backend (found by the differential fuzzer).
    """
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _coerce_pair(value: object, text: str):
    """Compare numerically when the node value is numeric, else as strings."""
    if isinstance(value, bool):
        return value, text.strip().lower() == "true"
    if isinstance(value, (int, float)):
        return float(value), float(text)
    return str(value), text


def _collect(collect: Collect, nodes: List[ModelNode], model: Model) -> List[ModelNode]:
    if collect.distinct:
        seen: Dict[str, ModelNode] = {}
        for node in nodes:
            seen.setdefault(node.id, node)
        nodes = list(seen.values())
    sort_property = collect.sort_by or model.metamodel.label_property
    nodes.sort(
        key=lambda node: (_text(node.get(sort_property, "")), node.id),
        reverse=collect.descending,
    )
    return nodes
