"""XML surface syntax of the query calculus.

"Later on, they got their own XML-based calculus" — queries are written as
XML, matching how the rest of AWB's configuration lives in files::

    <query>
      <start type="User"/>
      <follow relation="likes"/>
      <follow relation="uses" target-type="Program"/>
      <collect sort-by="label"/>
    </query>
"""

from __future__ import annotations

from typing import Union

from ..xdm import ElementNode
from ..xmlio import parse_element
from .ast import Collect, FilterProperty, FilterType, Follow, Query, Start


class QueryParseError(ValueError):
    """The XML is not a well-formed calculus query."""


_VALID_OPS = ("eq", "ne", "lt", "le", "gt", "ge", "contains")


def parse_query_xml(source: Union[str, ElementNode]) -> Query:
    """Parse a calculus query from XML text or an already-parsed element."""
    root = parse_element(source) if isinstance(source, str) else source
    if root.name != "query":
        raise QueryParseError(f"expected <query>, found <{root.name}>")
    query = Query()
    query.trace = root.get_attribute("trace")
    saw_start = False
    saw_collect = False
    for child in root.child_elements():
        if child.name == "start":
            if saw_start:
                raise QueryParseError("<query> may contain only one <start>")
            query.start = _parse_start(child)
            saw_start = True
        elif child.name == "follow":
            query.steps.append(_parse_follow(child))
        elif child.name == "filter-type":
            type_name = child.get_attribute("type")
            if not type_name:
                raise QueryParseError("<filter-type> requires a type attribute")
            query.steps.append(FilterType(type=type_name))
        elif child.name == "filter-property":
            query.steps.append(_parse_filter_property(child))
        elif child.name == "collect":
            if saw_collect:
                raise QueryParseError("<query> may contain only one <collect>")
            query.collect = _parse_collect(child)
            saw_collect = True
        else:
            raise QueryParseError(f"unknown calculus element <{child.name}>")
    if not saw_start:
        raise QueryParseError("<query> requires a <start> element")
    return query


def _parse_start(element: ElementNode) -> Start:
    type_name = element.get_attribute("type")
    node_id = element.get_attribute("id")
    all_flag = element.get_attribute("all") == "true"
    provided = sum(1 for value in (type_name, node_id) if value) + (1 if all_flag else 0)
    if provided != 1:
        raise QueryParseError(
            "<start> requires exactly one of: type=..., id=..., all=\"true\""
        )
    return Start(type=type_name, node_id=node_id, all_nodes=all_flag)


def _parse_follow(element: ElementNode) -> Follow:
    relation = element.get_attribute("relation")
    if not relation:
        raise QueryParseError("<follow> requires a relation attribute")
    direction = element.get_attribute("direction") or "forward"
    if direction not in ("forward", "backward"):
        raise QueryParseError(f"bad direction {direction!r}")
    include = element.get_attribute("subrelations") != "false"
    return Follow(
        relation=relation,
        direction=direction,
        target_type=element.get_attribute("target-type"),
        include_subrelations=include,
    )


def _parse_filter_property(element: ElementNode) -> FilterProperty:
    name = element.get_attribute("name")
    if not name:
        raise QueryParseError("<filter-property> requires a name attribute")
    op = element.get_attribute("op") or "eq"
    if op not in _VALID_OPS:
        raise QueryParseError(f"bad filter op {op!r}; expected one of {_VALID_OPS}")
    return FilterProperty(name=name, op=op, value=element.get_attribute("value") or "")


def _parse_collect(element: ElementNode) -> Collect:
    return Collect(
        sort_by=element.get_attribute("sort-by"),
        descending=element.get_attribute("order") == "descending",
        distinct=element.get_attribute("distinct") != "false",
    )
