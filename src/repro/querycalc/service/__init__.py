"""Serving layer for the query calculus: caches, batching, metrics.

See :mod:`repro.querycalc.service.service` for the architecture story.
"""

from .plans import PlanCache, QueryPlan, normalize_query
from .results import ResultCache
from .service import QueryService

__all__ = [
    "PlanCache",
    "QueryPlan",
    "QueryService",
    "ResultCache",
    "normalize_query",
]
