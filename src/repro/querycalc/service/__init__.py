"""Serving layer for the query calculus: caches, batching, fault tolerance.

See :mod:`repro.querycalc.service.service` for the architecture story,
:mod:`repro.querycalc.service.errors` for the failure taxonomy, and
:mod:`repro.querycalc.service.faults` for the chaos-testing harness.
"""

from .errors import (
    ERROR_KINDS,
    Deadline,
    QueryError,
    QueryOverloadError,
    RemoteQueryError,
    classify_error,
)
from .faults import FaultConfig, FaultInjector, InjectedFault
from .plans import PlanCache, QueryPlan, normalize_query
from .results import BatchItem, ResultCache
from .service import SERVICE_MODES, QueryService

__all__ = [
    "BatchItem",
    "Deadline",
    "ERROR_KINDS",
    "SERVICE_MODES",
    "FaultConfig",
    "FaultInjector",
    "InjectedFault",
    "PlanCache",
    "QueryError",
    "QueryOverloadError",
    "QueryPlan",
    "QueryService",
    "RemoteQueryError",
    "ResultCache",
    "classify_error",
    "normalize_query",
]
