"""Serving layer for the query calculus: caches, batching, fault tolerance.

See :mod:`repro.querycalc.service.service` for the architecture story,
:mod:`repro.querycalc.service.errors` for the failure taxonomy, and
:mod:`repro.querycalc.service.faults` for the chaos-testing harness.
"""

from .errors import ERROR_KINDS, Deadline, QueryError, classify_error
from .faults import FaultConfig, FaultInjector, InjectedFault
from .plans import PlanCache, QueryPlan, normalize_query
from .results import BatchItem, ResultCache
from .service import QueryService

__all__ = [
    "BatchItem",
    "Deadline",
    "ERROR_KINDS",
    "FaultConfig",
    "FaultInjector",
    "InjectedFault",
    "PlanCache",
    "QueryError",
    "QueryPlan",
    "QueryService",
    "ResultCache",
    "classify_error",
    "normalize_query",
]
