"""Dependency sets: what a cached query result can possibly depend on.

The write side of incremental view maintenance is the update language's
:class:`~repro.xquery.updates.footprint.Footprint`; this module is the
read side.  :func:`derive_dependencies` walks a calculus query once (at
plan-build time, so the cost is amortized with compilation) and names —
with metamodel subtype expansion, so the sets are closed the same way
evaluation is — everything the answer can depend on:

* **member types**: the concrete types whose *membership* the final
  result set tracks directly — the type segment after the last ``Follow``
  (for scan-shaped queries, the expanded start/filter types).  A freshly
  inserted node has no relations, so it can only enter a result through
  pure membership; a deleted node's relations die with it and are covered
  by the relation rule.
* **path types**: the union of concrete types possible at *every*
  pipeline position, or ``None`` when a position is unconstrained
  (``start(*)``, an id start, a ``Follow`` without a target type).
  Renames and property writes are checked against this: a retyped node
  can change membership anywhere along the pipeline, not just at the end.
* **relation names**: the expanded names of every followed relation.
* **node ids**: the start id of id-rooted queries.
* **properties**: every filtered property plus the sort property — the
  full set of property names whose *values* the answer (content or
  order) can reflect.

:meth:`DependencySet.affected_by` intersects a footprint with these sets
and returns the *reasons* the entry is affected (empty = provably
disjoint, the entry survives the write verbatim).  When the only reason
is ``membership`` and the plan is :attr:`~DependencySet.patchable` — a
simple scan: no follows, no property filters, no id start, no trace, and
a sort key whose live text equals its export text — :func:`patch_result`
splices the inserted/deleted rows into the cached id list at exactly the
position the backends' shared ``(sort key, id)`` order dictates.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ...awb.metamodel import Metamodel
from ...awb.model import Model
from ..ast import FilterProperty, FilterType, Follow, Query
from ..native import _text


@dataclass(frozen=True)
class DependencySet:
    """Everything one plan's cached answer can depend on.

    ``None`` for a type set means "any type" (the conservative top).
    """

    member_types: Optional[FrozenSet[str]]
    path_types: Optional[FrozenSet[str]]
    node_ids: FrozenSet[str]
    relation_names: FrozenSet[str]
    properties: FrozenSet[str]
    patchable: bool
    sort_property: str
    descending: bool

    def affected_by(self, footprint) -> Set[str]:
        """The reasons *footprint* can touch this answer (empty = none).

        Each rule is an intersection; ``None`` type sets conservatively
        match everything.  Relation *property* writes are ignored — no
        calculus query reads relation properties.
        """
        reasons: Set[str] = set()
        if footprint.touched_node_ids & self.node_ids:
            reasons.add("ids")
        changed_members = footprint.member_types()
        if changed_members and (
            self.member_types is None or changed_members & self.member_types
        ):
            reasons.add("membership")
        if footprint.linked_types and (
            self.path_types is None or footprint.linked_types & self.path_types
        ):
            reasons.add("rename")
        if footprint.relation_names & self.relation_names:
            reasons.add("relations")
        for type_name, prop in footprint.node_prop_writes:
            if prop in self.properties and (
                self.path_types is None or type_name in self.path_types
            ):
                reasons.add("property")
                break
        return reasons

    def merge(self, other: "DependencySet") -> "DependencySet":
        """The union of two dependency sets (both plans share one cached
        entry, so the entry depends on everything either plan does)."""

        def union(a, b):
            return None if a is None or b is None else a | b

        same_order = (
            self.sort_property == other.sort_property
            and self.descending == other.descending
        )
        return DependencySet(
            member_types=union(self.member_types, other.member_types),
            path_types=union(self.path_types, other.path_types),
            node_ids=self.node_ids | other.node_ids,
            relation_names=self.relation_names | other.relation_names,
            properties=self.properties | other.properties,
            patchable=self.patchable and other.patchable and same_order,
            sort_property=self.sort_property,
            descending=self.descending,
        )


def derive_dependencies(query: Query, metamodel: Metamodel) -> DependencySet:
    """Derive the :class:`DependencySet` of one calculus query."""

    def expand(type_name: str) -> FrozenSet[str]:
        return frozenset(metamodel.node_subtype_names(type_name))

    start = query.start
    node_ids: FrozenSet[str] = frozenset()
    if start.node_id is not None:
        node_ids = frozenset((start.node_id,))
        current: Optional[FrozenSet[str]] = None  # the node's type is dynamic
    elif start.all_nodes:
        current = None
    else:
        current = expand(start.type)

    position_types: List[Optional[FrozenSet[str]]] = [current]
    relation_names: Set[str] = set()
    properties: Set[str] = set()
    follows = 0
    property_filters = 0
    for step in query.steps:
        if isinstance(step, Follow):
            follows += 1
            if step.include_subrelations:
                relation_names.update(
                    metamodel.relation_subtype_names(step.relation)
                )
            else:
                relation_names.add(step.relation)
            current = (
                expand(step.target_type) if step.target_type is not None else None
            )
            position_types.append(current)
        elif isinstance(step, FilterType):
            narrowed = expand(step.type)
            current = narrowed if current is None else current & narrowed
            position_types[-1] = current
        elif isinstance(step, FilterProperty):
            properties.add(step.name)
            property_filters += 1

    if any(types is None for types in position_types):
        path_types: Optional[FrozenSet[str]] = None
    else:
        path_types = frozenset().union(*position_types)

    sort_property = query.collect.sort_by or metamodel.label_property
    properties.add(sort_property)

    # Pure membership changes (insert/delete of a node) can only reach a
    # follow-shaped query through relations: a fresh node has none, and a
    # deleted node's cascades land in the footprint's relation names.  So
    # only scan-shaped queries track membership directly; for them it is
    # the (narrowed) start segment.
    member_types = position_types[-1] if follows == 0 else frozenset()
    patchable = (
        follows == 0
        and property_filters == 0
        and start.node_id is None
        and query.trace is None
        and not _sort_property_is_html(metamodel, sort_property, member_types)
    )
    return DependencySet(
        member_types=member_types,
        path_types=path_types,
        node_ids=node_ids,
        relation_names=frozenset(relation_names),
        properties=frozenset(properties),
        patchable=patchable,
        sort_property=sort_property,
        descending=query.collect.descending,
    )


def _sort_property_is_html(
    metamodel: Metamodel,
    sort_property: str,
    member_types: Optional[FrozenSet[str]],
) -> bool:
    """``html``-declared sort properties export as markup whose string
    value differs from the live Python value, so patch-computed sort keys
    would disagree with the XQuery backend's — refuse to patch."""
    type_names = (
        member_types if member_types is not None else metamodel.node_types.keys()
    )
    for type_name in type_names:
        node_type = metamodel.node_type(type_name)
        if node_type is None:
            continue
        declaration = node_type.property_decl(sort_property)
        if declaration is not None and declaration.type == "html":
            return True
    return False


def patch_result(
    ids: List[str],
    footprint,
    deps: DependencySet,
    model: Model,
) -> Optional[List[str]]:
    """Splice a membership-only footprint into a cached scan result.

    Deleted rows drop out; inserted rows of a member type are placed at
    the position the shared ``(sort key text, id)`` order dictates, with
    keys read from the live (post-update) model.  Returns the new id
    list, or ``None`` when the patch cannot be proven faithful (the
    caller then invalidates — never serves a guess).
    """
    if not deps.patchable:
        return None
    survivors = (
        [i for i in ids if i not in footprint.deleted_nodes]
        if footprint.deleted_nodes
        else list(ids)
    )
    inserts = [
        node_id
        for node_id, type_name in footprint.inserted_nodes.items()
        if node_id in model.nodes
        and (deps.member_types is None or type_name in deps.member_types)
    ]
    if not inserts:
        return survivors

    def key_of(node_id: str) -> Optional[Tuple[str, str]]:
        node = model.nodes.get(node_id)
        if node is None:
            return None
        return (_text(node.get(deps.sort_property, "")), node_id)

    keys: List[Tuple[str, str]] = []
    for node_id in survivors:
        key = key_of(node_id)
        if key is None:
            return None  # a cached row is gone without a recorded delete
        keys.append(key)
    if deps.descending:
        keys.reverse()
        survivors = list(reversed(survivors))
    for node_id in inserts:
        key = key_of(node_id)
        if key is None:
            return None
        position = bisect_left(keys, key)
        keys.insert(position, key)
        survivors.insert(position, node_id)
    if deps.descending:
        survivors.reverse()
    return survivors


class DependencyIndex:
    """cache-key → merged :class:`DependencySet` for every known plan.

    Two structurally identical plans can share one result-cache key (the
    optimized plan signature); their dependency sets are merged so the
    shared entry is judged against everything either plan reads.  Keys
    with no registered dependencies are always invalidated — absence of
    proof is not proof of absence.
    """

    def __init__(self) -> None:
        self._by_key: Dict[str, DependencySet] = {}

    def register(self, cache_key: str, deps: DependencySet) -> None:
        existing = self._by_key.get(cache_key)
        self._by_key[cache_key] = (
            deps if existing is None else existing.merge(deps)
        )

    def get(self, cache_key: str) -> Optional[DependencySet]:
        return self._by_key.get(cache_key)

    def __len__(self) -> int:
        return len(self._by_key)
