"""Structured query failure: the taxonomy the serving layer speaks.

The paper's complaint about XQuery's error-as-value regime was that it
"turns nearly every function call into a half-dozen lines" of defensive
boilerplate; the serving layer's first draft quietly swung to the other
extreme — one bad query raised out of ``pool.map`` and threw away every
completed sibling.  Production serving degrades per-request, never
per-fleet, so failure here is a first-class value: a :class:`QueryError`
with a small closed ``kind`` vocabulary, the originating spec code, and
the plan key that failed.

Kinds:

``compile``
    the plan could not be built (calculus→XQuery translation, parse, or
    static validation failed);
``lint``
    the static analyzer rejected the generated program
    (``EngineConfig(lint="error")``);
``dynamic``
    evaluation raised a spec dynamic/type error (XPDY/XPTY/FO…);
``timeout``
    the query ran past its wall-clock deadline (``XQDY_TIMEOUT``);
``overload``
    admission control shed the query before execution: the serving
    tier's bounded queue was full (``XQDY_OVERLOAD``).  Shedding is the
    load-time analogue of the deadline — the tier degrades by refusing
    work it cannot finish in time, never by falling over;
``internal``
    anything else — an engine bug, an injected fault, a failure that is
    not the query's fault.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ...xquery.errors import (
    XQueryDynamicError,
    XQueryError,
    XQueryStaticError,
    XQueryTimeoutError,
)

#: the closed vocabulary of failure kinds.
ERROR_KINDS = ("compile", "lint", "dynamic", "timeout", "overload", "internal")

#: the spec-style code admission control sheds with.
OVERLOAD_CODE = "XQDY_OVERLOAD"


class QueryOverloadError(RuntimeError):
    """Admission control refused the query: the serving tier is saturated.

    Carries the attributes :func:`classify_error` reads, so a shed query
    becomes a structured ``kind="overload"`` :class:`QueryError` through
    the same pipeline every other failure takes.
    """

    code = OVERLOAD_CODE
    query_error_kind = "overload"


class RemoteQueryError(RuntimeError):
    """A structured failure relayed from a worker process.

    The worker classifies its own exception (it has the original object);
    the front-end re-raises this carrier, which advertises the original
    kind/code/exception-class so :func:`classify_error` — and every caller
    pattern-matching on ``code`` — sees the worker's truth, not the
    transport's.
    """

    def __init__(self, error: "QueryError"):
        super().__init__(str(error))
        self.query_error = error
        self.query_error_kind = error.kind
        self.code = error.code
        self.bare_message = error.message
        #: class name of the exception the worker originally raised.
        self.remote_exception = error.exception


@dataclass
class QueryError:
    """One query's structured failure, safe to return alongside results."""

    kind: str  # one of ERROR_KINDS
    message: str
    #: the originating W3C/spec code (XPST0003, XQDY_TIMEOUT, ...) if any.
    code: Optional[str] = None
    #: the normalized plan key of the failing query, if planning got far
    #: enough to produce one.
    plan_key: Optional[str] = None
    #: class name of the underlying Python exception, for forensics.
    exception: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ERROR_KINDS:
            raise ValueError(
                f"kind must be one of {ERROR_KINDS}, not {self.kind!r}"
            )

    def __str__(self) -> str:
        code = f"[{self.code}] " if self.code else ""
        return f"{self.kind}: {code}{self.message}"


def classify_error(error: BaseException, plan_key: Optional[str] = None) -> QueryError:
    """Map a raised exception onto the serving taxonomy."""
    if isinstance(error, RemoteQueryError):
        # the worker already classified the original exception; preserve
        # its verdict (including the original exception class name).
        remote = error.query_error
        return QueryError(
            kind=remote.kind,
            message=remote.message,
            code=remote.code,
            plan_key=plan_key if plan_key is not None else remote.plan_key,
            exception=remote.exception,
        )
    kind = "internal"
    code = getattr(error, "code", None)
    message = getattr(error, "bare_message", None) or str(error) or type(error).__name__
    if isinstance(error, XQueryTimeoutError) or code == "XQDY_TIMEOUT":
        kind = "timeout"
    elif isinstance(error, XQueryStaticError):
        # the engine re-homes lint findings as static errors prefixed
        # "lint:"; everything else static is a compile failure.
        kind = "lint" if message.startswith("lint:") else "compile"
    elif isinstance(error, XQueryDynamicError):
        kind = "dynamic"
    elif isinstance(error, XQueryError):
        kind = "dynamic"
    injected = getattr(error, "query_error_kind", None)
    if injected in ERROR_KINDS:
        kind = injected
    return QueryError(
        kind=kind,
        message=message,
        code=code,
        plan_key=plan_key,
        exception=type(error).__name__,
    )


@dataclass
class Deadline:
    """A wall-clock budget: an absolute cutoff plus the budget it came from.

    ``at`` is a ``time.monotonic()`` instant.  The budget is kept purely
    for error messages ("exceeded its 250ms budget"), so capping a
    deadline against a batch-wide one keeps the tighter ``at`` but the
    per-query budget label.
    """

    at: float
    budget: float = field(default=0.0)

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        return cls(at=time.monotonic() + seconds, budget=seconds)

    def cap(self, other: Optional["Deadline"]) -> "Deadline":
        """The tighter of this deadline and *other* (None is no cap)."""
        if other is None or other.at >= self.at:
            return self
        return Deadline(at=other.at, budget=self.budget or other.budget)

    @property
    def expired(self) -> bool:
        return time.monotonic() > self.at

    def remaining(self) -> float:
        return max(0.0, self.at - time.monotonic())

    def check(self, stage: str = "") -> None:
        """Raise ``XQDY_TIMEOUT`` if the budget has been spent."""
        if self.expired:
            where = f" (at {stage})" if stage else ""
            raise XQueryTimeoutError(
                f"query exceeded its {self.budget * 1000:.0f}ms budget{where}"
            )
