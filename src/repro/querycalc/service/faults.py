"""Fault injection for the serving path.

Chaos testing needs failures on demand: the injector exposes one hook per
pipeline site (``compile``, ``export``, ``evaluate``) that the
:class:`~repro.querycalc.service.service.QueryService` calls if an
injector is configured.  Faults come in two flavours:

* **probabilistic** — each site fails (or stalls) with a configured rate,
  driven by a seeded RNG so chaos runs are reproducible;
* **deterministic poisoning** — :meth:`FaultInjector.poison` marks plan
  keys (by substring) to always fail with a chosen kind, which is how the
  regression suite builds "64 queries, 8 poisoned" batches.

Injected failures raise the *real* exception types the taxonomy
classifies (``XQueryStaticError`` for compile faults, ``XQueryDynamicError``
for dynamic ones, a plain :class:`InjectedFault` for internal ones), so
nothing downstream special-cases chaos: an injected fault exercises
exactly the handling a genuine one would.

Stalls sleep in small slices and watch the query's deadline, so a stalled
query is cut off by its budget (→ ``XQDY_TIMEOUT``) rather than holding a
worker for the full stall.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Set

from ...xquery.errors import (
    XQueryDynamicError,
    XQueryStaticError,
    XQueryTimeoutError,
)

#: sleep granularity while stalling; bounds how far past a deadline a
#: stalled query can run (well under the 2x-budget acceptance bound).
_STALL_SLICE = 0.005


class InjectedFault(RuntimeError):
    """An injected internal failure (not the query's fault)."""

    #: lets ``classify_error`` tag injected faults without isinstance games.
    query_error_kind = "internal"

    def __init__(self, site: str, plan_key: Optional[str] = None):
        where = f" for plan {plan_key!r}" if plan_key else ""
        super().__init__(f"injected {site} fault{where}")
        self.site = site
        self.plan_key = plan_key


@dataclass
class FaultConfig:
    """Rates and knobs for probabilistic fault injection.

    Rates are probabilities in [0, 1] checked once per hook call.
    ``eval_backends`` restricts evaluation faults to specific engine
    backends (e.g. ``{"closures"}`` faults only the fast path, leaving
    the treewalk fallback clean — the graceful-degradation scenario);
    ``None`` faults every backend.
    """

    compile_failure_rate: float = 0.0
    export_failure_rate: float = 0.0
    eval_failure_rate: float = 0.0
    eval_stall_rate: float = 0.0
    #: how long a stalled evaluation sleeps (absent a tighter deadline).
    stall_seconds: float = 0.05
    #: what probabilistic eval failures raise: "internal" or "dynamic".
    eval_failure_kind: str = "internal"
    eval_backends: Optional[Set[str]] = None
    seed: int = 0

    @classmethod
    def parse(cls, spec: str) -> "FaultConfig":
        """Parse the CLI's ``--inject-faults`` spec.

        Comma-separated ``key=value`` pairs: ``compile``, ``export``,
        ``eval``, ``stall`` (rates), ``stall-ms``, ``kind``, ``seed``.
        Example: ``--inject-faults "eval=0.1,stall=0.05,stall-ms=40,seed=7"``.
        """
        config = cls()
        if not spec.strip():
            return config
        for pair in spec.split(","):
            key, _, value = pair.partition("=")
            key = key.strip()
            value = value.strip()
            if not value:
                raise ValueError(f"bad fault spec entry {pair!r}; want key=value")
            if key == "compile":
                config.compile_failure_rate = float(value)
            elif key == "export":
                config.export_failure_rate = float(value)
            elif key == "eval":
                config.eval_failure_rate = float(value)
            elif key == "stall":
                config.eval_stall_rate = float(value)
            elif key in ("stall-ms", "stall_ms"):
                config.stall_seconds = float(value) / 1000.0
            elif key == "kind":
                config.eval_failure_kind = value
            elif key == "seed":
                config.seed = int(value)
            else:
                raise ValueError(f"unknown fault spec key {key!r}")
        return config


@dataclass
class _Poison:
    fragment: str
    kind: str  # "compile" | "dynamic" | "internal" | "timeout"


class FaultInjector:
    """Injects failures/stalls into the serving pipeline's hook points."""

    def __init__(self, config: Optional[FaultConfig] = None, **flags):
        if config is None:
            config = FaultConfig(**flags)
        elif flags:
            raise TypeError("pass either a config object or keyword flags, not both")
        self.config = config
        self._rng = random.Random(config.seed)
        self._lock = threading.Lock()
        self._poisons: list[_Poison] = []
        #: injected-fault counters by "site:kind", for observability/tests.
        self.injected: Dict[str, int] = {}

    # -- configuration -----------------------------------------------------------

    def poison(self, plan_key_fragment: str, kind: str = "internal") -> None:
        """Always fail plans whose key contains *plan_key_fragment*.

        ``kind`` selects the failure: ``compile`` faults the plan build,
        ``dynamic``/``internal`` fault evaluation, ``timeout`` stalls
        evaluation until the query's deadline cuts it off.
        """
        if kind not in ("compile", "dynamic", "internal", "timeout"):
            raise ValueError(f"unknown poison kind {kind!r}")
        with self._lock:
            self._poisons.append(_Poison(plan_key_fragment, kind))

    def clear_poisons(self) -> None:
        with self._lock:
            self._poisons.clear()

    # -- hooks (called by QueryService) ------------------------------------------

    def on_compile(self, plan_key: str) -> None:
        poison = self._poison_for(plan_key)
        if poison is not None and poison.kind == "compile":
            self._count("compile", "compile")
            raise XQueryStaticError(
                f"injected compile fault for plan {plan_key!r}", code="XPST0003"
            )
        if self._roll(self.config.compile_failure_rate):
            self._count("compile", "compile")
            raise XQueryStaticError(
                f"injected compile fault for plan {plan_key!r}", code="XPST0003"
            )

    def on_export(self) -> None:
        if self._roll(self.config.export_failure_rate):
            self._count("export", "internal")
            raise InjectedFault("export")

    def on_evaluate(self, plan_key, deadline=None, backend: Optional[str] = None):
        poison = self._poison_for(plan_key)
        if poison is not None:
            if poison.kind == "timeout":
                self._count("evaluate", "timeout")
                if deadline is not None:
                    # stall "forever"; the deadline cuts us off mid-sleep.
                    self._stall(deadline, seconds=3600.0)
                # no deadline to enforce: simulate an external watchdog so
                # a poisoned run can never hang a deadline-less test.
                self._stall(None, seconds=self.config.stall_seconds)
                raise XQueryTimeoutError(
                    f"injected stall for plan {plan_key!r} outlived the injector"
                )
            if poison.kind == "dynamic":
                self._count("evaluate", "dynamic")
                raise XQueryDynamicError(
                    f"injected dynamic fault for plan {plan_key!r}", code="FOER0000"
                )
            if poison.kind == "internal":
                self._count("evaluate", "internal")
                raise InjectedFault("evaluate", plan_key)
        backends = self.config.eval_backends
        if backends is not None and backend is not None and backend not in backends:
            return
        if self._roll(self.config.eval_stall_rate):
            self._count("evaluate", "stall")
            self._stall(deadline, seconds=self.config.stall_seconds)
        if self._roll(self.config.eval_failure_rate):
            if self.config.eval_failure_kind == "dynamic":
                self._count("evaluate", "dynamic")
                raise XQueryDynamicError(
                    f"injected dynamic fault for plan {plan_key!r}", code="FOER0000"
                )
            self._count("evaluate", "internal")
            raise InjectedFault("evaluate", plan_key)

    # -- observability -----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.injected)

    # -- internals ---------------------------------------------------------------

    def _poison_for(self, plan_key) -> Optional[_Poison]:
        key = str(plan_key)
        with self._lock:
            for poison in self._poisons:
                if poison.fragment in key:
                    return poison
        return None

    def _roll(self, rate: float) -> bool:
        if rate <= 0.0:
            return False
        with self._lock:
            return self._rng.random() < rate

    def _count(self, site: str, kind: str) -> None:
        with self._lock:
            key = f"{site}:{kind}"
            self.injected[key] = self.injected.get(key, 0) + 1

    def _stall(self, deadline, seconds: float) -> None:
        """Sleep for *seconds*, but respect the query's deadline.

        The slice-and-check loop is what bounds a stalled query's overrun:
        it wakes every few milliseconds, and the moment the deadline has
        passed ``deadline.check`` raises ``XQDY_TIMEOUT``.
        """
        until = time.monotonic() + seconds
        while True:
            if deadline is not None:
                deadline.check("injected stall")
            now = time.monotonic()
            if now >= until:
                return
            limit = until - now
            if deadline is not None:
                limit = min(limit, max(deadline.at - now, 0.0) + _STALL_SLICE)
            time.sleep(min(_STALL_SLICE, limit))
