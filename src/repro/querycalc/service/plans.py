"""Plan normalization and the plan cache.

A *plan* is everything the service needs to execute one calculus query
repeatedly without re-doing per-query work: for the XQuery backend, the
generated XQuery source and its :class:`~repro.xquery.api.CompiledQuery`
(parsed, linted, optimized, closure-compiled); for the native backend the
query AST itself is the plan.

Plans are keyed by the *normalized query text* — a canonical rendering of
the calculus AST — so two structurally identical queries parsed from
different XML files share one compiled plan.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..ast import FilterProperty, FilterType, Follow, Query


def normalize_query(query: Query) -> str:
    """A canonical one-line text form of a calculus query.

    Structurally equal queries normalize identically; the text doubles as
    the plan- and result-cache key and as a human-readable plan name.
    """
    parts = []
    start = query.start
    if start.all_nodes:
        parts.append("start(*)")
    elif start.node_id is not None:
        parts.append(f"start(id={start.node_id!r})")
    else:
        parts.append(f"start(type={start.type!r})")
    for step in query.steps:
        if isinstance(step, Follow):
            target = repr(step.target_type) if step.target_type else "*"
            sub = "sub" if step.include_subrelations else "exact"
            parts.append(
                f"follow({step.relation!r},{step.direction},{target},{sub})"
            )
        elif isinstance(step, FilterType):
            parts.append(f"type({step.type!r})")
        elif isinstance(step, FilterProperty):
            parts.append(f"prop({step.name!r},{step.op},{step.value!r})")
        else:
            raise TypeError(f"unknown step {type(step).__name__}")
    collect = query.collect
    direction = "desc" if collect.descending else "asc"
    distinct = "distinct" if collect.distinct else "all"
    parts.append(f"collect({collect.sort_by!r},{direction},{distinct})")
    if query.trace is not None:
        # a traced query generates different XQuery, so it is a distinct plan
        parts.append(f"trace({query.trace!r})")
    return "|".join(parts)


@dataclass
class QueryPlan:
    """An executable plan for one normalized calculus query."""

    key: str
    backend: str  # "xquery" or "native"
    query: Query
    #: generated XQuery source (XQuery backend only).
    source: Optional[str] = None
    #: compiled query, ready to ``run()`` (XQuery backend only).
    compiled: Optional[object] = None
    #: structural signature of the optimized module (XQuery backend only):
    #: position-independent, so structurally identical plans share result
    #: cache entries even when their calculus spellings differ.
    result_key: Optional[str] = None
    #: the plan's :class:`~repro.querycalc.service.deps.DependencySet`,
    #: derived at build time — what its cached answers can depend on.
    deps: Optional[object] = None

    @property
    def cache_key(self) -> str:
        """The result-cache key: the optimized plan's signature when known."""
        return self.result_key if self.result_key is not None else self.key


class PlanCache:
    """A small thread-safe LRU of :class:`QueryPlan` keyed by normalized text."""

    def __init__(self, maxsize: int = 128):
        self.maxsize = maxsize
        self._plans: "OrderedDict[str, QueryPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get_or_build(self, key: str, build: Callable[[], QueryPlan]) -> QueryPlan:
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end(key)
                return plan
        # build outside the lock (compilation can be slow and is pure);
        # a concurrent duplicate build resolves in favour of the first.
        plan = build()
        with self._lock:
            existing = self._plans.get(key)
            if existing is not None:
                self.hits += 1
                self._plans.move_to_end(key)
                return existing
            self.misses += 1
            if self.maxsize > 0:
                self._plans[key] = plan
                while len(self._plans) > self.maxsize:
                    self._plans.popitem(last=False)
        return plan

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "currsize": len(self._plans),
                "maxsize": self.maxsize,
            }
