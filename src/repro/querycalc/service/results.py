"""Result values and the result cache.

:class:`BatchItem` is what the service returns per query: a list of live
model nodes (it *is* a list, so existing callers keep working) plus the
serving metadata a robust client needs — the structured
:class:`~repro.querycalc.service.errors.QueryError` if the query failed,
whether the answer came from cache, and the ``fn:trace`` messages the
evaluation emitted.

The cache stores node *ids* (not live node objects) keyed by
``(plan key, export generation)``: ids survive being handed between
threads, and mapping back through ``model.nodes`` on every hit means a
hit can never resurrect a node that has since been removed.  Trace
messages are recorded **alongside** the ids, so a cached serve replays
the traces a cold run emitted instead of silently eating them the way
the Galax optimizer ate the paper's probes (the E8 story).

Invalidation is by *generation*, the model's monotonically increasing
mutation counter: any mutation bumps it, so entries recorded against an
older export can never be served again — they simply age out of the LRU.
There is no per-entry dependency tracking to get wrong; correctness rides
on the same dirty-tracking clock the incremental exporter uses.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .errors import QueryError

ResultKey = Tuple[str, int]

#: what the cache stores per key: (node ids, trace messages).
CachedResult = Tuple[List[str], Tuple[str, ...]]


class BatchItem(List["ModelNode"]):  # noqa: F821 - forward ref, avoids an import cycle
    """One query's outcome: a node list plus serving metadata.

    Iterating/indexing yields the result nodes (empty when the query
    failed), so code written against the old ``List[ModelNode]`` return
    type keeps working unchanged.
    """

    __slots__ = ("error", "served_from_cache", "traces")

    def __init__(
        self,
        nodes: Iterable = (),
        error: Optional[QueryError] = None,
        served_from_cache: bool = False,
        traces: Sequence[str] = (),
    ):
        super().__init__(nodes)
        self.error = error
        self.served_from_cache = served_from_cache
        self.traces = tuple(traces)

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def nodes(self) -> list:
        return list(self)

    def __repr__(self) -> str:
        if self.error is not None:
            return f"<BatchItem error={self.error}>"
        origin = "cache" if self.served_from_cache else "engine"
        return f"<BatchItem {len(self)} node(s) from {origin}>"


class ResultCache:
    """A thread-safe LRU of (ids, traces) keyed by (plan key, generation)."""

    def __init__(self, maxsize: int = 512):
        self.maxsize = maxsize
        self._results: "OrderedDict[ResultKey, CachedResult]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: ResultKey) -> Optional[CachedResult]:
        with self._lock:
            entry = self._results.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            self._results.move_to_end(key)
            ids, traces = entry
            return list(ids), traces

    def put(self, key: ResultKey, node_ids: List[str], traces: Sequence[str] = ()) -> None:
        if self.maxsize <= 0:
            return
        with self._lock:
            self._results[key] = (list(node_ids), tuple(traces))
            self._results.move_to_end(key)
            while len(self._results) > self.maxsize:
                self._results.popitem(last=False)

    def propagate(
        self,
        old_generation: int,
        new_generation: int,
        decide,
    ) -> Dict[str, int]:
        """Carry entries of *old_generation* across a model update.

        ``decide(plan_key, ids)`` returns ``("keep", None)`` when the
        update provably cannot have changed the answer (the entry is
        re-keyed to *new_generation* verbatim, traces included),
        ``("patch", new_ids)`` when inserted/deleted rows were spliced in
        (traces ride along only for keep — patch is only ever chosen for
        untraced plans), or ``("drop", None)``.  Entries of other
        generations are already unservable and are left to age out.
        """
        kept = patched = invalidated = 0
        with self._lock:
            for key in [k for k in self._results if k[1] == old_generation]:
                plan_key = key[0]
                ids, traces = self._results.pop(key)
                action, new_ids = decide(plan_key, ids)
                if action == "keep":
                    self._results[(plan_key, new_generation)] = (ids, traces)
                    kept += 1
                elif action == "patch":
                    self._results[(plan_key, new_generation)] = (
                        list(new_ids),
                        traces,
                    )
                    patched += 1
                else:
                    invalidated += 1
            while len(self._results) > self.maxsize:
                self._results.popitem(last=False)
        return {"kept": kept, "patched": patched, "invalidated": invalidated}

    def clear(self) -> None:
        with self._lock:
            self._results.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "currsize": len(self._results),
                "maxsize": self.maxsize,
            }
