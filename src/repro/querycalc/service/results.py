"""The result cache: (plan key, export generation) → node ids.

Results are stored as node *ids*, not live node objects: ids survive
being handed between threads, and mapping back through ``model.nodes`` on
every hit means a hit can never resurrect a node that has since been
removed.

Invalidation is by *generation*, the model's monotonically increasing
mutation counter: any mutation bumps it, so entries recorded against an
older export can never be served again — they simply age out of the LRU.
There is no per-entry dependency tracking to get wrong; correctness rides
on the same dirty-tracking clock the incremental exporter uses.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

ResultKey = Tuple[str, int]


class ResultCache:
    """A thread-safe LRU of result-id lists keyed by (plan key, generation)."""

    def __init__(self, maxsize: int = 512):
        self.maxsize = maxsize
        self._results: "OrderedDict[ResultKey, List[str]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: ResultKey) -> Optional[List[str]]:
        with self._lock:
            ids = self._results.get(key)
            if ids is None:
                self.misses += 1
                return None
            self.hits += 1
            self._results.move_to_end(key)
            return list(ids)

    def put(self, key: ResultKey, node_ids: List[str]) -> None:
        if self.maxsize <= 0:
            return
        with self._lock:
            self._results[key] = list(node_ids)
            self._results.move_to_end(key)
            while len(self._results) > self.maxsize:
                self._results.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._results.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "currsize": len(self._results),
                "maxsize": self.maxsize,
            }
