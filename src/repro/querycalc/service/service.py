"""The query service: a fault-tolerant serving layer over the calculus backends.

This is the architectural answer to E6 *and* the robustness answer to the
paper's error-handling chapter.  The caching story (PR 3) keeps four
layers warm between requests:

1. a **plan cache**: normalized calculus text → generated XQuery source →
   compiled closure program (the engine's own compile LRU backs this up);
2. an **incremental model export**: mutations dirty individual subtrees,
   so the XML document the queries scan is patched, not rebuilt;
3. a **result cache** keyed by (plan, export generation): repeat queries
   against an unchanged model are a dict hit, and any model mutation
   bumps the generation and silently invalidates every stale entry;
4. a **batch API**: :meth:`QueryService.run_batch` runs a whole UI
   refresh worth of queries over one shared export snapshot on a thread
   pool, evaluating each distinct plan once and fanning results out to
   duplicates.

The robustness layer on top makes failure a first-class outcome instead
of an unhandled exception:

* **per-query error isolation** — a failing job in :meth:`run_batch`
  yields a :class:`~repro.querycalc.service.results.BatchItem` carrying a
  structured :class:`~repro.querycalc.service.errors.QueryError` while
  every sibling completes; metrics always record the whole batch;
* **deadlines** — a wall-clock budget per query (and optionally per
  batch) is threaded down into both engine backends, which check it
  between pipeline stages and raise ``XQDY_TIMEOUT`` cleanly instead of
  hanging a worker;
* **graceful degradation** — an *internal* (non-spec) error from the
  closures backend is retried once on the treewalk reference backend
  before surfacing, and counted in ``metrics()["fallbacks"]``;
* **fault injection** — a :class:`~repro.querycalc.service.faults.FaultInjector`
  can fail or stall any pipeline site, which is how the chaos suite and
  the E16 benchmark exercise all of the above.

Engine semantics are untouched: a cold miss runs exactly the code E6
measures, quirks and all.  The service only decides *how often* that
code runs — and, now, what happens when it fails.
"""

from __future__ import annotations

import math
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Tuple

from ...awb.model import Model, ModelNode
from ...xdm import ElementNode
from ...xquery import EngineConfig, TraceLog, XQueryEngine
from ...xquery.errors import XQueryError, XQueryTimeoutError
from ..ast import Query
from ..native import QueryRuntimeError, run_query
from ..via_xquery import XQueryCalculusBackend
from .deps import DependencyIndex, derive_dependencies, patch_result
from .errors import Deadline, QueryError, QueryOverloadError, classify_error
from .faults import FaultInjector
from .plans import PlanCache, QueryPlan, normalize_query
from .results import BatchItem, ResultCache

#: the service's execution modes: a thread pool in this process (threads
#: only help via dedup+caching — the GIL serializes evaluation), or a
#: shared-nothing pool of worker processes (see :mod:`repro.serving`).
SERVICE_MODES = ("thread", "process")

#: Latency samples kept for the p50/p95 metrics (oldest evicted first).
MAX_LATENCY_SAMPLES = 2048


def _percentile(samples: List[float], fraction: float) -> float:
    """Standard ceil-based nearest-rank percentile (1-indexed rank).

    The previous ``round()``-based formula suffered banker's rounding:
    p50 of five samples landed on the 2nd value instead of the median.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = math.ceil(fraction * len(ordered))
    rank = min(len(ordered), max(1, rank))
    return ordered[rank - 1]


class QueryService:
    """Serves calculus queries from caches, falling back to a backend.

    ``backend`` selects the engine under the caches: ``"xquery"`` (the
    paper's preposterously inefficient path, served by the algebra
    backend's optimized plans by default) or ``"native"`` (the live-graph
    interpreter).
    Both share the same plan normalization, result cache, and metrics, so
    E15 can compare them under identical serving conditions.

    ``default_timeout`` is the per-query wall-clock budget in seconds
    applied when a call does not pass its own; ``fault_injector`` wires a
    :class:`~repro.querycalc.service.faults.FaultInjector` into the
    pipeline's hook points for chaos testing.
    """

    def __init__(
        self,
        model: Model,
        engine: Optional[XQueryEngine] = None,
        backend: str = "xquery",
        plan_cache_size: int = 128,
        result_cache_size: int = 512,
        workers: int = 4,
        default_timeout: Optional[float] = None,
        fault_injector: Optional[FaultInjector] = None,
        mode: str = "thread",
        partition: str = "type",
        max_pending: Optional[int] = None,
    ):
        if backend not in ("xquery", "native"):
            raise ValueError(f"unknown backend {backend!r}")
        if mode not in SERVICE_MODES:
            raise ValueError(f"mode must be one of {SERVICE_MODES}, not {mode!r}")
        if mode == "process" and backend != "xquery":
            raise ValueError("mode='process' serves the XQuery backend only")
        self.model = model
        self.backend = backend
        if workers == 0:
            # "as many as the machine has": meaningful parallelism in
            # process mode; in thread mode extra workers only widen the
            # dedup window (the GIL serializes actual evaluation — use
            # mode="process" for real scaling).
            workers = os.cpu_count() or 1
        self.workers = workers
        self.mode = mode
        self.default_timeout = default_timeout
        self.faults = fault_injector
        if backend == "xquery":
            # the algebra backend is the default cold path: set-at-a-time
            # plans with hash joins, falling back to the reference
            # evaluator per-subtree (and wholesale, via _execute's retry,
            # on any internal error).
            self.engine = engine or XQueryEngine(EngineConfig(backend="algebra"))
            self._backend = XQueryCalculusBackend(model, engine=self.engine)
        else:
            self.engine = engine
            self._backend = None
        #: batch-level common-subexpression cache for the algebra backend,
        #: replaced whenever the export generation moves.
        self._algebra_cache = None
        self._algebra_cache_generation: Optional[int] = None
        self._plans = PlanCache(maxsize=plan_cache_size)
        self._results = ResultCache(maxsize=result_cache_size)
        self._deps = DependencyIndex()
        self._updates = 0
        self._propagations: Dict[str, int] = {
            "kept": 0,
            "patched": 0,
            "invalidated": 0,
            "skipped": 0,
        }
        self._export_lock = threading.Lock()
        self._metrics_lock = threading.Lock()
        self._latencies: List[float] = []
        self._queries = 0
        self._batches = 0
        self._executed = 0
        self._batch_deduped = 0
        self._errors = 0
        self._timeouts = 0
        self._fallbacks = 0
        self._errors_by_kind: Dict[str, int] = {}
        self._shed = 0
        self._routes: Dict[str, int] = {}
        # -- the shared-nothing serving tier (mode="process") --------------
        self._pool = None
        self.partition = partition
        if max_pending is None and mode == "process":
            max_pending = workers * 4
        self.max_pending = max_pending
        self._admission = (
            threading.BoundedSemaphore(max_pending)
            if max_pending is not None
            else None
        )
        if mode == "process":
            # imported lazily: repro.serving imports this package's errors
            # module, so a top-level import would be circular.
            from ...serving.pool import ProcessPool

            self._pool = ProcessPool(
                model,
                shards=workers,
                scheme=partition,
                plan_cache_size=plan_cache_size,
            )

    # -- public API -------------------------------------------------------------

    def run(self, query: Query, timeout: Optional[float] = None) -> BatchItem:
        """Serve one query: result cache → plan cache → backend.

        Returns a :class:`BatchItem` (a list of live model nodes carrying
        ``served_from_cache`` and ``traces``).  Failures raise — callers
        that want errors as values use :meth:`run_batch` — but are still
        recorded in :meth:`metrics` first.
        """
        started = time.perf_counter()
        deadline = self._deadline(timeout)
        plan_key: Optional[str] = None
        executed = 0
        try:
            plan = self._plan(query)
            plan_key = plan.key
            root, generation = self._snapshot()
            cached = self._results.get((plan.cache_key, generation))
            if cached is not None:
                ids, traces = cached
                self._record(1, 0, time.perf_counter() - started)
                return BatchItem(
                    self._materialize(ids), served_from_cache=True, traces=traces
                )
            executed = 1
            admitted = self._admit()
            try:
                ids, traces = self._execute(plan, root, deadline)
            finally:
                if admitted:
                    self._admission.release()
            self._store(plan, generation, ids, traces)
            self._record(1, 1, time.perf_counter() - started)
            return BatchItem(self._materialize(ids), traces=traces)
        except Exception as exc:
            error = classify_error(exc, plan_key)
            self._record(
                1, executed, time.perf_counter() - started, errors=(error,)
            )
            raise

    def run_batch(
        self,
        queries: Iterable[Query],
        workers: Optional[int] = None,
        timeout: Optional[float] = None,
        batch_timeout: Optional[float] = None,
    ) -> List[BatchItem]:
        """Run independent read-only queries over one export snapshot.

        Distinct plans are evaluated once each — duplicates within the
        batch share the result — on a pool of ``workers`` threads.  The
        model must not be mutated while a batch is in flight.

        Failures are **isolated per query**: a failing job yields a
        :class:`BatchItem` whose ``error`` is a structured
        :class:`QueryError` while every sibling completes, and metrics
        record the entire batch either way.  ``timeout`` budgets each
        query's wall clock (default :attr:`default_timeout`);
        ``batch_timeout`` additionally caps the whole batch — queries
        that would start after it expires fail fast with kind
        ``timeout``.
        """
        started = time.perf_counter()
        queries = list(queries)
        if not queries:
            return []
        workers = self.workers if workers is None else workers
        if workers == 0:
            # "one per core" — see the constructor note: in thread mode
            # this only widens the dedup window (GIL); real scaling needs
            # mode="process", where each worker is its own interpreter.
            workers = os.cpu_count() or 1
        per_query = timeout if timeout is not None else self.default_timeout
        batch_deadline = (
            Deadline.after(batch_timeout) if batch_timeout is not None else None
        )

        # 1. plan every query, isolating per-query compile/lint failures.
        plan_keys: List[str] = []
        plans: Dict[str, QueryPlan] = {}
        plan_errors: Dict[str, QueryError] = {}
        for index, query in enumerate(queries):
            try:
                plan = self._plan(query)
            except Exception as exc:
                try:
                    key = normalize_query(query)
                except Exception:
                    key = f"<unplannable #{index}>"
                plan_keys.append(key)
                plan_errors.setdefault(key, classify_error(exc, key))
            else:
                plan_keys.append(plan.key)
                plans.setdefault(plan.key, plan)

        # 2. one shared export snapshot; if it fails, every planned query
        # gets the structured error instead of the batch raising.
        root: Optional[ElementNode] = None
        generation = 0
        export_error: Optional[QueryError] = None
        try:
            root, generation = self._snapshot()
        except Exception as exc:
            export_error = classify_error(exc)

        # 3. serve each distinct plan: result cache, then the backend.
        outcomes: Dict[str, Tuple] = {}
        to_run: List[QueryPlan] = []
        if export_error is None:
            for key, plan in plans.items():
                cached = self._results.get((plan.cache_key, generation))
                if cached is not None:
                    ids, traces = cached
                    outcomes[key] = ("ok", ids, traces, True)
                else:
                    to_run.append(plan)

            def job(plan: QueryPlan) -> Tuple[str, Tuple]:
                deadline = (
                    Deadline.after(per_query) if per_query is not None else None
                )
                if deadline is not None:
                    deadline = deadline.cap(batch_deadline)
                else:
                    deadline = batch_deadline
                try:
                    if deadline is not None:
                        deadline.check("batch queue")
                    admitted = self._admit()
                    try:
                        ids, traces = self._execute(plan, root, deadline)
                    finally:
                        if admitted:
                            self._admission.release()
                    self._store(plan, generation, ids, traces)
                    return plan.key, ("ok", ids, traces, False)
                except Exception as exc:
                    return plan.key, ("err", classify_error(exc, plan.key))

            if workers <= 1 or len(to_run) <= 1:
                for plan in to_run:
                    key, outcome = job(plan)
                    outcomes[key] = outcome
            else:
                pool = ThreadPoolExecutor(max_workers=min(workers, len(to_run)))
                try:
                    for key, outcome in pool.map(job, to_run):
                        outcomes[key] = outcome
                finally:
                    pool.shutdown()

        # 4. fan results (and errors) out to the original query order.
        items: List[BatchItem] = []
        errors: List[QueryError] = []
        for key in plan_keys:
            if key in plan_errors:
                error = plan_errors[key]
            elif export_error is not None:
                error = QueryError(
                    kind=export_error.kind,
                    message=export_error.message,
                    code=export_error.code,
                    plan_key=key,
                    exception=export_error.exception,
                )
            else:
                outcome = outcomes[key]
                if outcome[0] == "ok":
                    _, ids, traces, from_cache = outcome
                    items.append(
                        BatchItem(
                            self._materialize(ids),
                            served_from_cache=from_cache,
                            traces=traces,
                        )
                    )
                    continue
                error = outcome[1]
            errors.append(error)
            items.append(BatchItem((), error=error))

        # 5. bookkeeping happens unconditionally — partial failure no
        # longer skips it (the pre-robustness bug this layer fixes).
        elapsed = time.perf_counter() - started
        with self._metrics_lock:
            self._batches += 1
            self._batch_deduped += len(queries) - len(set(plan_keys))
        self._record(len(queries), len(to_run), elapsed, errors=errors)
        return items

    def apply_update(self, script, check: str = "error") -> Dict[str, object]:
        """Apply an update-language script and *maintain* the caches.

        ``script`` is update-language text (or a parsed
        :class:`~repro.xquery.updates.ast.UpdateScript`).  The script is
        statically checked against the live model (``check="error"``
        rejects error-severity findings before any statement executes),
        applied through the model API, and its exact footprint is then
        intersected with every warm result-cache entry's dependency set:

        * disjoint entries are **re-keyed** to the new generation — a
          repeat of that query stays a cache hit;
        * membership-only changes to patchable scans are **patched**
          (inserted/deleted rows spliced at their sorted position);
        * everything else is invalidated, never served stale.

        In process mode the resolved script is broadcast to the worker
        replicas as a delta instead of a full re-export.  Propagation is
        skipped (entries simply age out, exactly the old behavior) when
        foreign mutations — raw ``model`` writes that bypassed this
        method — have already moved the generation past the export.

        Returns a summary: statements applied, the footprint, per-entry
        propagation counts, and the new generation.
        """
        from ...xquery.updates.apply import apply_script

        with self._export_lock:
            old_generation = self.model.generation
            export_generation = (
                self._backend.export_generation
                if self._backend is not None
                else old_generation
            )
            in_sync = old_generation == export_generation
            result = apply_script(script, self.model, check=check)
            new_generation = self.model.generation
            propagation = {"kept": 0, "patched": 0, "invalidated": 0, "skipped": 0}
            if new_generation == old_generation:
                # every statement was a no-op: generation-neutral, every
                # cache entry still keyed to the live generation.
                pass
            elif in_sync:
                footprint = result.footprint
                deps_index = self._deps
                model = self.model

                def decide(plan_key, ids):
                    deps = deps_index.get(plan_key)
                    if deps is None:
                        return ("drop", None)
                    reasons = deps.affected_by(footprint)
                    if not reasons:
                        return ("keep", None)
                    if reasons == {"membership"} and deps.patchable:
                        patched = patch_result(ids, footprint, deps, model)
                        if patched is not None:
                            return ("patch", patched)
                    return ("drop", None)

                propagation = self._results.propagate(
                    export_generation, new_generation, decide
                )
                propagation["skipped"] = 0
            else:
                # foreign mutations already orphaned the warm entries;
                # footprint-based carry-over would be unsound here.
                propagation["skipped"] = self._results.stats()["currsize"]
            if self._backend is not None and new_generation != old_generation:
                # fold the script's subtree patches into the export now:
                # the next apply_update (or query) then sees
                # export_generation == model.generation, so back-to-back
                # updates keep propagating instead of being mistaken for
                # foreign mutations and falling into the skip path.
                self._backend.export
            if (
                self._pool is not None
                and new_generation != old_generation
            ):
                self._pool.apply_delta(
                    result.text,
                    base_generation=export_generation,
                    new_generation=new_generation,
                    in_sync=in_sync,
                )
            with self._metrics_lock:
                self._updates += 1
                for key in ("kept", "patched", "invalidated", "skipped"):
                    self._propagations[key] += propagation[key]
            return {
                "applied": result.applied,
                "generation": new_generation,
                "footprint": result.footprint.describe(),
                "propagation": propagation,
                "diagnostics": [d.to_json() for d in result.diagnostics],
                "script": result.text,
            }

    def invalidate(self) -> None:
        """Drop cached results and force a full re-export.

        Never required for correctness — mutation tracking invalidates
        automatically — but useful to reclaim memory or force a clean
        baseline in benchmarks.
        """
        self._results.clear()
        if self._backend is not None:
            self._backend.invalidate_export()

    def explain(self, query: Query) -> Dict[str, object]:
        """The optimized plan for one query, as text and a JSON-ready tree.

        For the XQuery backend this is the algebra backend's plan (with
        cardinalities estimated from the current export's statistics
        catalog) plus the generated source; the native backend has no plan
        beyond the normalized query text.
        """
        plan = self._plan(query)
        if plan.backend == "native":
            return {"backend": "native", "plan_key": plan.key}
        self._snapshot()  # refresh the export so statistics are current
        # process-mode plans carry no parent-side compilation; explain is a
        # diagnostic, so compiling here on demand is fine (the engine's
        # compile LRU keeps repeats cheap).
        compiled = plan.compiled or self.engine.compile(plan.source)
        explanation = compiled.explain(self._backend.statistics)
        explanation["plan_key"] = plan.key
        explanation["source"] = plan.source
        if self._pool is not None:
            route = self._route(query)
            explanation["route"] = {
                "kind": route.kind,
                "shard": route.shard,
                "reason": route.reason,
            }
        return explanation

    def close(self) -> None:
        """Shut down the worker-process pool (no-op in thread mode).

        Thread-mode services need no teardown; process-mode services own
        real OS processes, and tests/benchmarks that create many services
        should close them (or use the service as a context manager).
        """
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- observability ----------------------------------------------------------

    def serving_stats(self) -> Optional[Dict[str, object]]:
        """Synchronous per-worker counters (process mode; worker round-trips)."""
        if self._pool is None:
            return None
        return self._pool.stats()

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-layer cache counters: plans, results, engine compile, export."""
        stats = {
            "plans": self._plans.stats(),
            "results": self._results.stats(),
        }
        if self.engine is not None:
            stats["compile"] = self.engine.cache_info()
        if self._backend is not None:
            stats["export"] = self._backend.export_stats()
        return stats

    def metrics(self) -> Dict[str, object]:
        """The small metrics dict the E15/E16 reports read."""
        with self._metrics_lock:
            latencies = list(self._latencies)
            queries = self._queries
            batches = self._batches
            executed = self._executed
            deduped = self._batch_deduped
            errors = self._errors
            timeouts = self._timeouts
            fallbacks = self._fallbacks
            by_kind = dict(self._errors_by_kind)
            shed = self._shed
            routes = dict(self._routes)
            updates = self._updates
            propagations = dict(self._propagations)
        plan_stats = self._plans.stats()
        result_stats = self._results.stats()
        serving = None
        if self._pool is not None:
            # pool-level counters only — per-worker counters require a
            # round-trip; see :meth:`serving_stats`.
            serving = {
                "scheme": self._pool.scheme,
                "shards": self._pool.shards,
                "generation": self._pool.generation,
                "refreshes": self._pool.refreshes,
                "deltas": self._pool.deltas,
                "plan_blobs": self._pool.blob_stats(),
                "restarts": sum(h.restarts for h in self._pool.handles),
                "routes": routes,
                "shed": shed,
                "max_pending": self.max_pending,
            }
        return {
            "backend": self.backend,
            "mode": self.mode,
            "shed": shed,
            "routes": routes,
            "serving": serving,
            "queries": queries,
            "batches": batches,
            "executed": executed,
            "batch_deduped": deduped,
            "errors": errors,
            "timeouts": timeouts,
            "fallbacks": fallbacks,
            "errors_by_kind": by_kind,
            "updates": updates,
            "propagations": propagations,
            "hits": result_stats["hits"],
            "misses": result_stats["misses"],
            "plan_hits": plan_stats["hits"],
            "plan_misses": plan_stats["misses"],
            "p50_ms": _percentile(latencies, 0.50) * 1000.0,
            "p95_ms": _percentile(latencies, 0.95) * 1000.0,
            "p99_ms": _percentile(latencies, 0.99) * 1000.0,
            # the engine compile LRU (hits/misses/races) for the active
            # backend; the native backend has no engine, hence no cache.
            "compile_cache": (
                self.engine.cache_info() if self.engine is not None else None
            ),
            "algebra_cache": (
                self._algebra_cache.info() if self._algebra_cache is not None else None
            ),
        }

    # -- internals --------------------------------------------------------------

    def _deadline(self, timeout: Optional[float]) -> Optional[Deadline]:
        timeout = timeout if timeout is not None else self.default_timeout
        return Deadline.after(timeout) if timeout is not None else None

    def _plan(self, query: Query) -> QueryPlan:
        key = normalize_query(query)

        def build() -> QueryPlan:
            if self.faults is not None:
                self.faults.on_compile(key)
            deps = derive_dependencies(query, self.model.metamodel)
            if self.backend == "native":
                return QueryPlan(key, "native", query, deps=deps)
            source = self._backend.compile_to_xquery(query)
            if self.mode == "process":
                # the front-end never compiles in process mode: workers own
                # the compile LRUs, and the plan's structural signature
                # (this plan's cross-process result key) is learned from
                # the first worker reply.
                return QueryPlan(key, "xquery", query, source=source, deps=deps)
            compiled = self.engine.compile(source)
            return QueryPlan(
                key,
                "xquery",
                query,
                source=source,
                compiled=compiled,
                result_key=compiled.plan_signature,
                deps=deps,
            )

        plan = self._plans.get_or_build(key, build)
        if plan.deps is not None:
            # idempotent; registered under the *current* cache key, which
            # process mode may upgrade after the first worker reply (the
            # upgrade site re-registers under the new key).
            self._deps.register(plan.cache_key, plan.deps)
        return plan

    def _snapshot(self) -> Tuple[Optional[ElementNode], int]:
        """The (export root, generation) pair queries should run against."""
        if self._backend is None:
            if self.faults is not None:
                self.faults.on_export()
            return None, self.model.generation
        with self._export_lock:
            if self.faults is not None:
                self.faults.on_export()
            document = self._backend.export
            generation = self._backend.export_generation
            if self._algebra_cache_generation != generation:
                from ...xquery.algebra import SharedEvalCache

                self._algebra_cache = SharedEvalCache()
                self._algebra_cache_generation = generation
                # collect the statistics catalog here, at export time: the
                # walk rides the (already O(model)) export refresh instead
                # of taxing the first query after a mutation.
                self._backend.statistics
            if self._pool is not None:
                # broadcast the new generation to the worker replicas
                # before any query of this generation is dispatched.
                self._pool.ensure_generation(generation)
            return document.document_element(), generation

    def _execute(
        self,
        plan: QueryPlan,
        root: Optional[ElementNode],
        deadline: Optional[Deadline] = None,
    ) -> Tuple[List[str], Tuple[str, ...]]:
        """Evaluate one plan, returning (node ids, trace messages).

        Spec errors (including timeouts) surface as-is.  An *internal*
        error from the compiled closures backend is retried once on the
        treewalk reference backend — graceful degradation: correctness
        from the reference interpreter beats failing the request — and
        only surfaces if the retry also fails.
        """
        start_id = plan.query.start.node_id
        if start_id is not None and start_id not in self.model.nodes:
            # both engine backends treat a dangling start id as a caller
            # error (native always did; the XQuery backend was aligned by
            # the differential fuzzer) — the service must agree even when
            # it evaluates the cached plan itself.
            raise QueryRuntimeError(f"start node {start_id!r} is not in the model")
        if plan.backend == "native":
            if self.faults is not None:
                self.faults.on_evaluate(plan.key, deadline, backend="native")
            if deadline is not None:
                deadline.check("evaluate")
            return [node.id for node in run_query(plan.query, self.model)], ()
        if self._pool is not None:
            return self._process_execute(plan, deadline)
        primary_backend = self.engine.config.backend
        try:
            return self._evaluate_plan(plan, root, deadline, primary_backend)
        except XQueryError:
            raise
        except Exception as primary:
            if primary_backend == "treewalk":
                raise  # already on the reference backend: nothing to degrade to
            with self._metrics_lock:
                self._fallbacks += 1
            try:
                return self._evaluate_plan(plan, root, deadline, "treewalk")
            except XQueryTimeoutError:
                raise  # the budget ran out during the retry: that is a timeout
            except Exception:
                raise primary

    def _admit(self) -> bool:
        """Reserve an execution slot, or shed with ``XQDY_OVERLOAD``.

        Returns False when admission control is off (``max_pending=None``);
        cache hits never reach this point, so a saturated tier still
        answers everything it has already computed.
        """
        if self._admission is None:
            return False
        if not self._admission.acquire(blocking=False):
            with self._metrics_lock:
                self._shed += 1
            raise QueryOverloadError(
                f"serving tier saturated: {self.max_pending} requests "
                "already in flight"
            )
        return True

    def _route(self, query: Query):
        """The serving tier's routing decision for one query."""
        from ...serving.partition import route_query

        pool = self._pool
        domain = self._backend.statistics.attribute_domain("node", "type")

        def owner_of_id(node_id: str) -> Optional[int]:
            node = self.model.nodes.get(node_id)
            if node is None:
                return None
            return pool.partitioner.shard_of(node_id, node.type_name)

        return route_query(
            query,
            pool.partitioner,
            domain,
            self.model.metamodel.node_subtype_names,
            owner_of_id,
        )

    def _process_execute(
        self, plan: QueryPlan, deadline: Optional[Deadline]
    ) -> Tuple[List[str], Tuple[str, ...]]:
        """Serve one plan from the worker-process pool (scatter or single)."""
        from ...serving.pool import PlanBlob

        pool = self._pool

        def build() -> PlanBlob:
            query = plan.query
            return PlanBlob(
                key=plan.key,
                source_full=plan.source
                or self._backend.compile_to_xquery(query),
                source_shard=self._backend.compile_to_xquery(
                    query, shard_variable=pool.partitioner.shard_variable()
                ),
                sort_property=self._backend.sort_property(query),
                descending=query.collect.descending,
                distinct=query.collect.distinct,
            )

        blob = pool.blob(plan.key, build)
        route = self._route(plan.query)
        with self._metrics_lock:
            self._routes[route.kind] = self._routes.get(route.kind, 0) + 1
        if self.faults is not None:
            self.faults.on_evaluate(plan.key, deadline, backend="process")
        if deadline is not None:
            deadline.check("dispatch")
        remaining = deadline.remaining() if deadline is not None else None
        ids, traces = pool.execute(blob, route, remaining)
        if blob.signature is not None and plan.result_key is None:
            # upgrade the plan's result-cache key to the structural
            # signature the worker reported, matching thread mode.
            plan.result_key = blob.signature
            if plan.deps is not None:
                self._deps.register(plan.cache_key, plan.deps)
        return ids, traces

    def _evaluate_plan(
        self,
        plan: QueryPlan,
        root: Optional[ElementNode],
        deadline: Optional[Deadline],
        backend: str,
    ) -> Tuple[List[str], Tuple[str, ...]]:
        if self.faults is not None:
            self.faults.on_evaluate(plan.key, deadline, backend=backend)
        if deadline is not None:
            deadline.check("evaluate")
        trace = TraceLog()
        algebra = backend == "algebra"
        result = plan.compiled.run(
            variables={"model": root},
            trace=trace,
            backend=backend,
            deadline=deadline.at if deadline is not None else None,
            statistics=self._backend.statistics if algebra else None,
            algebra_cache=self._algebra_cache if algebra else None,
        )
        if deadline is not None:
            deadline.check("materialize")
        ids: List[str] = []
        for item in result:
            if not isinstance(item, ElementNode):
                continue
            node_id = item.get_attribute("id")
            if node_id is not None and node_id in self.model.nodes:
                ids.append(node_id)
        return ids, tuple(trace.messages)

    def _store(
        self,
        plan: QueryPlan,
        generation: int,
        ids: List[str],
        traces: Tuple[str, ...],
    ) -> None:
        """Cache a computed result — unless the model has moved on.

        A mutation landing between :meth:`_snapshot` and here means the
        evaluation may have read post-mutation state (the native backend
        reads the live graph); storing that under the pre-mutation
        generation would let :meth:`apply_update`'s carry-over re-key a
        torn result into the new generation.  The entry is simply not
        cached; the next request recomputes against a clean snapshot.
        """
        if self.model.generation == generation:
            self._results.put((plan.cache_key, generation), ids, traces)

    def _materialize(self, ids: List[str]) -> List[ModelNode]:
        nodes = self.model.nodes
        return [nodes[node_id] for node_id in ids if node_id in nodes]

    def _record(
        self,
        queries: int,
        executed: int,
        elapsed: float,
        errors: Iterable[QueryError] = (),
    ) -> None:
        with self._metrics_lock:
            self._queries += queries
            self._executed += executed
            self._latencies.append(elapsed)
            if len(self._latencies) > MAX_LATENCY_SAMPLES:
                del self._latencies[: len(self._latencies) - MAX_LATENCY_SAMPLES]
            for error in errors:
                self._errors += 1
                self._errors_by_kind[error.kind] = (
                    self._errors_by_kind.get(error.kind, 0) + 1
                )
                if error.kind == "timeout":
                    self._timeouts += 1
