"""The query service: a serving layer over the calculus backends.

This is the architectural answer to E6.  The paper measured the raw
shape — "calling XQuery from Java to evaluate queries was preposterously
inefficient" — by re-exporting the model and re-evaluating from scratch
per query.  A serving deployment (compare Apache VXQuery's compiled-plan
reuse and data-scan sharing) never does that; it keeps four caches warm
between requests:

1. a **plan cache**: normalized calculus text → generated XQuery source →
   compiled closure program (the engine's own compile LRU backs this up);
2. an **incremental model export**: mutations dirty individual subtrees,
   so the XML document the queries scan is patched, not rebuilt;
3. a **result cache** keyed by (plan, export generation): repeat queries
   against an unchanged model are a dict hit, and any model mutation
   bumps the generation and silently invalidates every stale entry;
4. a **batch API**: :meth:`QueryService.run_batch` runs a whole UI
   refresh worth of queries over one shared export snapshot on a thread
   pool, evaluating each distinct plan once and fanning results out to
   duplicates.

Engine semantics are untouched: a cold miss runs exactly the code E6
measures, quirks and all.  The service only decides *how often* that
code runs.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Tuple

from ...awb.model import Model, ModelNode
from ...xdm import ElementNode
from ...xquery import EngineConfig, XQueryEngine
from ..ast import Query
from ..native import run_query
from ..via_xquery import XQueryCalculusBackend
from .plans import PlanCache, QueryPlan, normalize_query
from .results import ResultCache

#: Latency samples kept for the p50/p95 metrics (oldest evicted first).
MAX_LATENCY_SAMPLES = 2048


def _percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, int(round(fraction * len(ordered))) - 1))
    return ordered[index]


class QueryService:
    """Serves calculus queries from caches, falling back to a backend.

    ``backend`` selects the engine under the caches: ``"xquery"`` (the
    paper's preposterously inefficient path, compiled via the closures
    backend by default) or ``"native"`` (the live-graph interpreter).
    Both share the same plan normalization, result cache, and metrics, so
    E15 can compare them under identical serving conditions.
    """

    def __init__(
        self,
        model: Model,
        engine: Optional[XQueryEngine] = None,
        backend: str = "xquery",
        plan_cache_size: int = 128,
        result_cache_size: int = 512,
        workers: int = 4,
    ):
        if backend not in ("xquery", "native"):
            raise ValueError(f"unknown backend {backend!r}")
        self.model = model
        self.backend = backend
        self.workers = workers
        if backend == "xquery":
            self.engine = engine or XQueryEngine(EngineConfig(backend="closures"))
            self._backend = XQueryCalculusBackend(model, engine=self.engine)
        else:
            self.engine = engine
            self._backend = None
        self._plans = PlanCache(maxsize=plan_cache_size)
        self._results = ResultCache(maxsize=result_cache_size)
        self._export_lock = threading.Lock()
        self._metrics_lock = threading.Lock()
        self._latencies: List[float] = []
        self._queries = 0
        self._batches = 0
        self._executed = 0
        self._batch_deduped = 0

    # -- public API -------------------------------------------------------------

    def run(self, query: Query) -> List[ModelNode]:
        """Serve one query: result cache → plan cache → backend."""
        started = time.perf_counter()
        plan = self._plan(query)
        root, generation = self._snapshot()
        key = (plan.key, generation)
        cached_ids = self._results.get(key)
        if cached_ids is None:
            ids = self._execute(plan, root)
            self._results.put(key, ids)
            executed = 1
        else:
            ids = cached_ids
            executed = 0
        nodes = self._materialize(ids)
        self._record(1, executed, time.perf_counter() - started)
        return nodes

    def run_batch(
        self, queries: Iterable[Query], workers: Optional[int] = None
    ) -> List[List[ModelNode]]:
        """Run independent read-only queries over one export snapshot.

        Distinct plans are evaluated once each — duplicates within the
        batch share the result — on a pool of ``workers`` threads.  The
        model must not be mutated while a batch is in flight.
        """
        started = time.perf_counter()
        queries = list(queries)
        if not queries:
            return []
        workers = self.workers if workers is None else workers
        plans = [self._plan(query) for query in queries]
        root, generation = self._snapshot()

        unique: Dict[str, QueryPlan] = {}
        for plan in plans:
            unique.setdefault(plan.key, plan)
        ids_by_key: Dict[str, List[str]] = {}
        to_run: List[QueryPlan] = []
        for key, plan in unique.items():
            cached_ids = self._results.get((key, generation))
            if cached_ids is not None:
                ids_by_key[key] = cached_ids
            else:
                to_run.append(plan)

        def job(plan: QueryPlan) -> Tuple[str, List[str]]:
            ids = self._execute(plan, root)
            self._results.put((plan.key, generation), ids)
            return plan.key, ids

        if workers <= 1 or len(to_run) <= 1:
            for plan in to_run:
                key, ids = job(plan)
                ids_by_key[key] = ids
        else:
            pool = ThreadPoolExecutor(max_workers=min(workers, len(to_run)))
            try:
                for key, ids in pool.map(job, to_run):
                    ids_by_key[key] = ids
            finally:
                pool.shutdown()

        elapsed = time.perf_counter() - started
        with self._metrics_lock:
            self._batches += 1
            self._batch_deduped += len(queries) - len(unique)
        self._record(len(queries), len(to_run), elapsed)
        return [self._materialize(ids_by_key[plan.key]) for plan in plans]

    def invalidate(self) -> None:
        """Drop cached results and force a full re-export.

        Never required for correctness — mutation tracking invalidates
        automatically — but useful to reclaim memory or force a clean
        baseline in benchmarks.
        """
        self._results.clear()
        if self._backend is not None:
            self._backend.invalidate_export()

    # -- observability ----------------------------------------------------------

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-layer cache counters: plans, results, engine compile, export."""
        stats = {
            "plans": self._plans.stats(),
            "results": self._results.stats(),
        }
        if self.engine is not None:
            stats["compile"] = self.engine.cache_info()
        if self._backend is not None:
            stats["export"] = self._backend.export_stats()
        return stats

    def metrics(self) -> Dict[str, object]:
        """The small metrics dict the E15 report reads."""
        with self._metrics_lock:
            latencies = list(self._latencies)
            queries = self._queries
            batches = self._batches
            executed = self._executed
            deduped = self._batch_deduped
        plan_stats = self._plans.stats()
        result_stats = self._results.stats()
        return {
            "backend": self.backend,
            "queries": queries,
            "batches": batches,
            "executed": executed,
            "batch_deduped": deduped,
            "hits": result_stats["hits"],
            "misses": result_stats["misses"],
            "plan_hits": plan_stats["hits"],
            "plan_misses": plan_stats["misses"],
            "p50_ms": _percentile(latencies, 0.50) * 1000.0,
            "p95_ms": _percentile(latencies, 0.95) * 1000.0,
        }

    # -- internals --------------------------------------------------------------

    def _plan(self, query: Query) -> QueryPlan:
        key = normalize_query(query)

        def build() -> QueryPlan:
            if self.backend == "native":
                return QueryPlan(key, "native", query)
            source = self._backend.compile_to_xquery(query)
            compiled = self.engine.compile(source)
            return QueryPlan(key, "xquery", query, source=source, compiled=compiled)

        return self._plans.get_or_build(key, build)

    def _snapshot(self) -> Tuple[Optional[ElementNode], int]:
        """The (export root, generation) pair queries should run against."""
        if self._backend is None:
            return None, self.model.generation
        with self._export_lock:
            document = self._backend.export
            return document.document_element(), self._backend.export_generation

    def _execute(self, plan: QueryPlan, root: Optional[ElementNode]) -> List[str]:
        if plan.backend == "native":
            return [node.id for node in run_query(plan.query, self.model)]
        result = plan.compiled.run(variables={"model": root})
        ids: List[str] = []
        for item in result:
            if not isinstance(item, ElementNode):
                continue
            node_id = item.get_attribute("id")
            if node_id is not None and node_id in self.model.nodes:
                ids.append(node_id)
        return ids

    def _materialize(self, ids: List[str]) -> List[ModelNode]:
        nodes = self.model.nodes
        return [nodes[node_id] for node_id in ids if node_id in nodes]

    def _record(self, queries: int, executed: int, elapsed: float) -> None:
        with self._metrics_lock:
            self._queries += queries
            self._executed += executed
            self._latencies.append(elapsed)
            if len(self._latencies) > MAX_LATENCY_SAMPLES:
                del self._latencies[: len(self._latencies) - MAX_LATENCY_SAMPLES]
