"""The XQuery backend for the query calculus.

Compiles a calculus query to XQuery source evaluated over the model's XML
export by :mod:`repro.xquery`.  This is the document-generation-era
implementation the paper's team abandoned: "Calling XQuery from Java to
evaluate queries was preposterously inefficient, and would have made the
workbench unusably slow."  Experiment E6 measures exactly how much slower
it is than :mod:`repro.querycalc.native`.

The generated program joins ``<relation>`` elements against ``<node>``
elements by id — an O(nodes × relations) scan per hop, which is honest to
how a 2004 XQuery engine without join indexes evaluated it.
"""

from __future__ import annotations

from typing import List, Optional

from ..awb.metamodel import Metamodel
from ..awb.model import Model, ModelNode
from ..awb.xml_io import IncrementalExporter
from ..xdm import DocumentNode, ElementNode
from ..xquery import XQueryEngine
from .ast import Collect, FilterProperty, FilterType, Follow, Query
from .native import QueryRuntimeError


def _string_sequence(names: List[str]) -> str:
    quoted = ", ".join(f'"{name}"' for name in names)
    return f"({quoted})"


class XQueryCalculusBackend:
    """Compiles and runs calculus queries via the XQuery engine.

    The XML export is maintained *incrementally*: the backend listens to
    model mutations and re-exports only dirty ``<node>``/``<relation>``
    subtrees on the next query, instead of rebuilding the whole document.
    A point mutation on a big model therefore costs one subtree export,
    not an O(model) rebuild.
    """

    def __init__(self, model: Model, engine: Optional[XQueryEngine] = None):
        self.model = model
        self.metamodel: Metamodel = model.metamodel
        self.engine = engine or XQueryEngine()
        self._exporter = IncrementalExporter(model)
        self._statistics = None
        self._stats_cursor = None
        self.stats_rebuilds = 0
        self.stats_deltas = 0

    def invalidate_export(self) -> None:
        """Force a full re-export on next use (normally unnecessary: the
        exporter tracks mutations and patches affected subtrees itself)."""
        self._exporter.invalidate()

    @property
    def export(self) -> DocumentNode:
        return self._exporter.export()

    @property
    def export_generation(self) -> int:
        """``model.generation`` as of the last applied export."""
        return self._exporter.generation

    def export_stats(self) -> dict:
        """Full-vs-subtree export counters from the incremental exporter."""
        stats = self._exporter.stats()
        stats["stats_rebuilds"] = self.stats_rebuilds
        stats["stats_deltas"] = self.stats_deltas
        return stats

    @property
    def statistics(self):
        """The export's :class:`~repro.xquery.algebra.StatisticsCatalog`.

        Collected in one walk over the current export document on first
        use; when the export generation moves, the catalog is *maintained*
        from the exporter's subtree-delta log (subtract the old subtree,
        add the new one) rather than recollected — a point mutation costs
        O(subtree), not O(document).  Falls back to a full walk when the
        log does not cover the span (a full export rebuild happened).
        Either way, the catalog the algebra cost pass and the serving
        router read is always the current generation's: routing proofs
        never see a pre-mutation ``attribute_domain``.
        """
        from ..xquery.algebra import StatisticsCatalog

        document = self._exporter.export()
        generation = self._exporter.generation
        if self._statistics is None or self._statistics.generation != generation:
            delta = (
                self._exporter.delta_since(self._stats_cursor)
                if self._statistics is not None
                else None
            )
            if delta is not None:
                self._statistics.apply_delta(delta, generation)
                self.stats_deltas += 1
            else:
                self._statistics = StatisticsCatalog.from_root(
                    document.document_element(), generation
                )
                self.stats_rebuilds += 1
        self._stats_cursor = self._exporter.delta_cursor()
        return self._statistics

    def compile_to_xquery(self, query: Query, shard_variable: Optional[str] = None) -> str:
        """Translate a calculus query into XQuery source text.

        ``shard_variable`` names an external variable restricting the start
        set (the serving tier's scatter plan): the generated program
        declares it and filters the start expression with
        ``[@type = $var]`` / ``[@id = $var]``.  The filter is an external
        variable rather than a literal list, so every worker process
        compiles the *same* source (one plan signature tier-wide) and binds
        its own ownership list at run time.
        """
        lines: List[str] = ['declare variable $model external;']
        start = self._compile_start(query)
        if shard_variable is not None:
            lines.append(f"declare variable ${shard_variable} external;")
            attribute = "@id" if shard_variable.endswith("ids") else "@type"
            start = f"({start})[{attribute} = ${shard_variable}]"
        pipeline = start
        for index, step in enumerate(query.steps, start=1):
            function_name = f"local:step{index}"
            lines.append(self._compile_step(step, function_name))
            pipeline = f"{function_name}({pipeline})"
        lines.append(self._compile_collect(query.collect, pipeline, query.trace))
        return "\n".join(lines)

    def sort_property(self, query: Query) -> str:
        """The property name the query's collect clause orders by."""
        return query.collect.sort_by or self.metamodel.label_property

    def run(self, query: Query) -> List[ModelNode]:
        """Compile, evaluate, and map results back to live model nodes."""
        start_id = query.start.node_id
        if start_id is not None and start_id not in self.model.nodes:
            # the generated XQuery would just select nothing, but the
            # native backend treats a dangling start id as a caller error
            # — found by the differential fuzzer, aligned here.
            raise QueryRuntimeError(f"start node {start_id!r} is not in the model")
        source = self.compile_to_xquery(query)
        root = self.export.document_element()
        result = self.engine.compile(source).run(
            variables={"model": root}, statistics=self.statistics
        )
        nodes: List[ModelNode] = []
        for item in result:
            if not isinstance(item, ElementNode):
                continue
            node_id = item.get_attribute("id")
            if node_id is not None and node_id in self.model.nodes:
                nodes.append(self.model.nodes[node_id])
        return nodes

    # -- compilation --------------------------------------------------------

    def _compile_start(self, query: Query) -> str:
        start = query.start
        if start.all_nodes:
            return "$model/node"
        if start.node_id is not None:
            return f'$model/node[@id eq "{start.node_id}"]'
        type_names = self.metamodel.node_subtype_names(start.type)
        return f"$model/node[@type = {_string_sequence(type_names)}]"

    def _compile_step(self, step, function_name: str) -> str:
        if isinstance(step, Follow):
            return self._compile_follow(step, function_name)
        if isinstance(step, FilterType):
            type_names = self.metamodel.node_subtype_names(step.type)
            return (
                f"declare function {function_name}($nodes) {{\n"
                f"  $nodes[@type = {_string_sequence(type_names)}]\n"
                f"}};"
            )
        if isinstance(step, FilterProperty):
            return self._compile_filter_property(step, function_name)
        raise TypeError(f"unknown step {type(step).__name__}")

    def _compile_follow(self, step: Follow, function_name: str) -> str:
        if step.include_subrelations:
            relation_names = self.metamodel.relation_subtype_names(step.relation)
        else:
            relation_names = [step.relation]
        relation_test = f"@type = {_string_sequence(relation_names)}"
        if step.direction == "forward":
            here, there = "@source", "@target"
        else:
            here, there = "@target", "@source"
        target_filter = ""
        if step.target_type is not None:
            target_names = self.metamodel.node_subtype_names(step.target_type)
            target_filter = f"[@type = {_string_sequence(target_names)}]"
        return (
            f"declare function {function_name}($nodes) {{\n"
            f"  for $n in $nodes\n"
            f"  for $r in root($n)/awb-model/relation[{relation_test}]"
            f"[{here} eq $n/@id]\n"
            f"  return root($n)/awb-model/node[@id eq $r/{there}]{target_filter}\n"
            f"}};"
        )

    def _compile_filter_property(self, step: FilterProperty, function_name: str) -> str:
        value = step.value.replace('"', "&quot;")
        prop = f'property[@name eq "{step.name}"]'
        if step.op == "contains":
            condition = f'contains(string({prop}), "{value}")'
        else:
            # Mirror the native backend's per-node coercion: the export
            # stamps each property with its stored type, so the generated
            # query can branch on it.  Numeric values compare as numbers
            # (the fuzzer caught "16" lt "2" being true here), booleans as
            # booleans, everything else as strings.  When the query's
            # literal does not parse as the branch's type, native's
            # coercion fails and the node never matches — fold that to
            # false() at compile time, the literal is right here.
            try:
                float(step.value)
                numeric = f'number(string({prop})) {step.op} number("{value}")'
            except ValueError:
                numeric = "false()"
            truth = "true()" if step.value.strip().lower() == "true" else "false()"
            boolean = f'(string({prop}) eq "true") {step.op} {truth}'
            strings = f'string({prop}) {step.op} "{value}"'
            condition = (
                f"{prop} and "
                f'(if ({prop}/@type = ("integer", "float")) then {numeric}\n'
                f'   else if ({prop}/@type eq "boolean") then {boolean}\n'
                f"   else {strings})"
            )
        return (
            f"declare function {function_name}($nodes) {{\n"
            f"  $nodes[{condition}]\n"
            f"}};"
        )

    def _compile_collect(
        self, collect: Collect, pipeline: str, trace: Optional[str] = None
    ) -> str:
        sort_property = collect.sort_by or self.metamodel.label_property
        # "$x | ()" deduplicates by node identity and restores document
        # order — the idiomatic XQuery way to build a set of nodes.
        dedup = f"({pipeline} | ())" if collect.distinct else f"({pipeline})"
        if trace is not None:
            # this engine's fn:trace returns its LAST argument, so the label
            # goes first and the pipeline value flows through unchanged.
            label = trace.replace('"', "&quot;")
            dedup = f'trace("{label}", {dedup})'
        direction = "descending" if collect.descending else "ascending"
        # the id tie-break takes the same direction as the sort key: native
        # sorts on the tuple (value, id) and reverses the whole tuple, so a
        # descending sort breaks ties by *descending* id.  (The fuzzer found
        # the stable-sort document-order ties this used to leave behind.)
        return (
            f"for $result in {dedup}\n"
            f'order by string($result/property[@name eq "{sort_property}"]) '
            f"{direction}, string($result/@id) {direction}\n"
            f"return $result"
        )
