"""The shared-nothing serving tier: partitioned worker processes.

``QueryService(mode="process", workers=N)`` (see
:mod:`repro.querycalc.service`) fronts a :class:`ProcessPool` of N worker
processes, each holding a full model replica and answering for one
partition of the start space.  This package owns the pieces under it:

:mod:`repro.serving.partition`
    ownership schemes (``type``/``hash``), and the router that proves a
    query single-shard from the statistics catalog or scatters it;
:mod:`repro.serving.worker`
    the worker process: faithful replica import, per-worker engine +
    compile LRU, full/sharded plan evaluation;
:mod:`repro.serving.pool`
    worker lifecycle (boot/refresh/respawn), scatter/gather with the
    order-preserving merge, and the signature-keyed plan-blob store;
:mod:`repro.serving.loadgen`
    the load-generator harness (``python -m repro.serving.loadgen``)
    reporting sustained QPS, p50/p95/p99 latency, and shed rate.
"""

from .partition import PARTITION_SCHEMES, Partitioner, Route, route_query
from .pool import PlanBlob, ProcessPool, merge_partials
from .worker import ShardWorker, WorkerConfig, worker_main

__all__ = [
    "PARTITION_SCHEMES",
    "Partitioner",
    "PlanBlob",
    "ProcessPool",
    "Route",
    "ShardWorker",
    "WorkerConfig",
    "merge_partials",
    "route_query",
    "worker_main",
]
