"""The load generator: N concurrent clients against one QueryService.

``python -m repro.serving.loadgen`` boots a service over a seeded random
model, drives it with concurrent client threads for a wall-clock window,
and reports sustained QPS, p50/p95/p99 latency, shed rate, and
availability.  The client threads are *callers*, not the unit of
parallelism under test — in process mode the service fans their queries
out to worker processes; in thread mode the GIL serializes evaluation and
the numbers show it.

Query mixes:

``cold``
    every request is a freshly generated query — distinct plans, so the
    result cache can't answer and every request pays real evaluation
    (the workload where worker processes beat threads);
``warm``
    requests draw from a small fixed query set — steady state is all
    result-cache hits, the tier's best case;
``mixed``
    80% cold / 20% warm.

**Availability** counts a request as served when it returned a result or
was *deliberately* shed by admission control (a structured
``XQDY_OVERLOAD`` answer).  Timeouts, worker crashes, and any other error
count against it — so availability 1.0 under a saturating burst means the
tier degraded only by design.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import threading
import time
from typing import Dict, List, Optional

from ..querycalc.service import QueryService
from ..querycalc.service.errors import QueryOverloadError, classify_error
from ..querycalc.service.service import _percentile
from ..testing.models import random_calculus_query, random_model

__all__ = ["run_load", "main"]

MIXES = ("cold", "warm", "mixed", "search")

#: size of the fixed query set the warm mix draws from.
WARM_SET = 16

#: the search mix's read/write split: 5% of requests are writes (a
#: fresh document under ``docs/``), the rest full-text reads.
SEARCH_WRITE_RATE = 0.05


class _ClientStats:
    """One client thread's tallies (merged single-threaded afterwards)."""

    def __init__(self) -> None:
        self.requests = 0
        self.ok = 0
        self.shed = 0
        self.errors_by_kind: Dict[str, int] = {}
        self.latencies: List[float] = []


def _client_loop(
    service: QueryService,
    stats: _ClientStats,
    stop_box: List[float],
    rng: random.Random,
    warm_queries: List,
    mix: str,
    timeout: Optional[float],
    barrier: threading.Barrier,
) -> None:
    try:
        barrier.wait(timeout=30.0)
    except threading.BrokenBarrierError:
        return
    model = service.model
    stop_at = stop_box[0]
    while time.perf_counter() < stop_at:
        if mix == "warm" or (mix == "mixed" and rng.random() < 0.2):
            query = rng.choice(warm_queries)
        else:
            query = random_calculus_query(rng, model)
        stats.requests += 1
        started = time.perf_counter()
        try:
            service.run(query, timeout=timeout)
        except QueryOverloadError:
            stats.shed += 1
            # client-side retry backoff: a shed answer arrives in
            # microseconds, and a closed-loop client that immediately
            # re-requests turns saturation into a GIL-burning spin that
            # starves the very requests the tier admitted.
            time.sleep(0.005)
            continue
        except Exception as exc:
            kind = classify_error(exc).kind
            stats.errors_by_kind[kind] = stats.errors_by_kind.get(kind, 0) + 1
            continue
        stats.ok += 1
        stats.latencies.append(time.perf_counter() - started)


def run_load(
    service: QueryService,
    clients: int = 100,
    duration: float = 5.0,
    mix: str = "cold",
    seed: int = 0,
    timeout: Optional[float] = None,
) -> Dict[str, object]:
    """Drive *service* with concurrent clients; return the report dict."""
    if mix not in MIXES:
        raise ValueError(f"mix must be one of {MIXES}, not {mix!r}")
    warm_rng = random.Random(seed)
    warm_queries = [
        random_calculus_query(warm_rng, service.model) for _ in range(WARM_SET)
    ]
    barrier = threading.Barrier(clients + 1)
    # the stop time is set right before the barrier opens, so thread
    # startup cost never dilutes the measurement window; clients read it
    # from the shared box after they clear the barrier.
    stop_box = [0.0]
    per_client = [_ClientStats() for _ in range(clients)]
    threads = []
    for index, stats in enumerate(per_client):
        thread = threading.Thread(
            target=_client_loop,
            args=(
                service,
                stats,
                stop_box,
                random.Random(seed * 100003 + index),
                warm_queries,
                mix,
                timeout,
                barrier,
            ),
            daemon=True,
        )
        threads.append(thread)
        thread.start()
    started = time.perf_counter()
    stop_box[0] = started + duration
    barrier.wait(timeout=30.0)
    for thread in threads:
        thread.join(timeout=duration + 60.0)
    elapsed = time.perf_counter() - started

    requests = sum(s.requests for s in per_client)
    ok = sum(s.ok for s in per_client)
    shed = sum(s.shed for s in per_client)
    errors_by_kind: Dict[str, int] = {}
    for s in per_client:
        for kind, count in s.errors_by_kind.items():
            errors_by_kind[kind] = errors_by_kind.get(kind, 0) + count
    errors = sum(errors_by_kind.values())
    latencies: List[float] = []
    for s in per_client:
        latencies.extend(s.latencies)
    return {
        "clients": clients,
        "duration_s": round(elapsed, 3),
        "mix": mix,
        "mode": service.mode,
        "workers": service.workers,
        "partition": service.partition,
        "max_pending": service.max_pending,
        "cpu_count": os.cpu_count(),
        "requests": requests,
        "ok": ok,
        "shed": shed,
        "errors": errors,
        "errors_by_kind": errors_by_kind,
        "qps": round(ok / elapsed, 1) if elapsed > 0 else 0.0,
        "shed_rate": round(shed / requests, 4) if requests else 0.0,
        "availability": round((ok + shed) / requests, 4) if requests else 1.0,
        "p50_ms": round(_percentile(latencies, 0.50) * 1000.0, 3),
        "p95_ms": round(_percentile(latencies, 0.95) * 1000.0, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000.0, 3),
    }


def _search_request(rng: random.Random, uris: List[str], collections: List[str]):
    """One random full-text read against the document tier."""
    from ..collections import SearchRequest
    from ..testing.models import random_phrase

    roll = rng.random()
    if roll < 0.15 and uris:
        return SearchRequest(kind="doc", uri=rng.choice(uris))
    if roll < 0.3:
        return SearchRequest(kind="collection", collection=rng.choice(collections))
    kind = "kwic" if roll < 0.45 else "search"
    return SearchRequest(
        kind=kind,
        collection=rng.choice(collections),
        phrase=random_phrase(rng),
        limit=rng.choice((0, 0, 5)),
    )


def _search_client_loop(
    service,
    stats: _ClientStats,
    stop_box: List[float],
    rng: random.Random,
    warm_requests: List,
    barrier: threading.Barrier,
) -> None:
    from ..testing.models import random_phrase

    try:
        barrier.wait(timeout=30.0)
    except threading.BrokenBarrierError:
        return
    uris = service.store.uris()
    collections = list(service.store.known_collections())
    stop_at = stop_box[0]
    while time.perf_counter() < stop_at:
        stats.requests += 1
        started = time.perf_counter()
        try:
            if rng.random() < SEARCH_WRITE_RATE:
                words = " ".join(random_phrase(rng, 1) for _ in range(6))
                service.put_text(
                    f"docs/hot{rng.randrange(0, 8)}.xml", f"<doc>{words}</doc>"
                )
            elif rng.random() < 0.8:
                service.run(rng.choice(warm_requests))
            else:
                service.run(_search_request(rng, uris, collections))
        except Exception as exc:
            kind = classify_error(exc).kind
            stats.errors_by_kind[kind] = stats.errors_by_kind.get(kind, 0) + 1
            continue
        stats.ok += 1
        stats.latencies.append(time.perf_counter() - started)


def run_search_load(
    service,
    clients: int = 16,
    duration: float = 5.0,
    seed: int = 0,
) -> Dict[str, object]:
    """Drive a :class:`~repro.collections.SearchService` with a 95/5
    read/write full-text mix; return the report dict.

    80% of reads draw from a fixed warm set, so the steady state shows
    whether the generation-keyed result cache keeps unrelated
    collections warm across the 5% write stream.
    """
    warm_rng = random.Random(seed)
    uris = service.store.uris()
    collections = list(service.store.known_collections())
    warm_requests = [
        _search_request(warm_rng, uris, collections) for _ in range(WARM_SET)
    ]
    barrier = threading.Barrier(clients + 1)
    stop_box = [0.0]
    per_client = [_ClientStats() for _ in range(clients)]
    threads = []
    for index, stats in enumerate(per_client):
        thread = threading.Thread(
            target=_search_client_loop,
            args=(
                service,
                stats,
                stop_box,
                random.Random(seed * 100003 + index),
                warm_requests,
                barrier,
            ),
            daemon=True,
        )
        threads.append(thread)
        thread.start()
    started = time.perf_counter()
    stop_box[0] = started + duration
    barrier.wait(timeout=30.0)
    for thread in threads:
        thread.join(timeout=duration + 60.0)
    elapsed = time.perf_counter() - started

    requests = sum(s.requests for s in per_client)
    ok = sum(s.ok for s in per_client)
    errors_by_kind: Dict[str, int] = {}
    for s in per_client:
        for kind, count in s.errors_by_kind.items():
            errors_by_kind[kind] = errors_by_kind.get(kind, 0) + count
    errors = sum(errors_by_kind.values())
    latencies: List[float] = []
    for s in per_client:
        latencies.extend(s.latencies)
    metrics = service.stats()["metrics"]
    reads = metrics["cache_hits"] + metrics["cache_misses"]
    return {
        "clients": clients,
        "duration_s": round(elapsed, 3),
        "mix": "search",
        "mode": service.mode,
        "shards": service.shards,
        "cpu_count": os.cpu_count(),
        "requests": requests,
        "ok": ok,
        "shed": 0,
        "errors": errors,
        "errors_by_kind": errors_by_kind,
        "writes": metrics["writes"],
        "cache_hit_rate": round(metrics["cache_hits"] / reads, 4) if reads else 0.0,
        "qps": round(ok / elapsed, 1) if elapsed > 0 else 0.0,
        "availability": round(ok / requests, 4) if requests else 1.0,
        "p50_ms": round(_percentile(latencies, 0.50) * 1000.0, 3),
        "p95_ms": round(_percentile(latencies, 0.95) * 1000.0, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000.0, 3),
    }


def search_parity_sweep(service, seed: int, count: int = 24) -> int:
    """Post-burst gate for the search tier: whatever state the burst left
    the shards and caches in, every served answer must be byte-identical
    to an unsharded brute-force (index-off) evaluation over the live
    authoritative store."""
    rng = random.Random(seed + 7)
    uris = service.store.uris()
    collections = list(service.store.known_collections())
    mismatches = 0
    for _ in range(count):
        request = _search_request(rng, uris, collections)
        try:
            served = service.run(request).text
            served_err = None
        except Exception as exc:
            served, served_err = None, classify_error(exc).kind
        try:
            fresh = service.evaluate_fresh(request, use_index=False)
            fresh_err = None
        except Exception as exc:
            fresh, fresh_err = None, classify_error(exc).kind
        if served != fresh or served_err != fresh_err:
            mismatches += 1
    return mismatches


def parity_sweep(
    model, process_service: QueryService, seed: int, count: int = 24
) -> int:
    """Compare the process tier against a thread-mode twin; mismatch count.

    Run post-burst as the loadgen's correctness gate: whatever state the
    burst drove the workers into, scatter/gather answers must still be
    byte-identical to single-process answers.
    """
    reference = QueryService(model)
    rng = random.Random(seed + 7)
    mismatches = 0
    for _ in range(count):
        query = random_calculus_query(rng, model)
        try:
            expect = [node.id for node in reference.run(query)]
            expect_err = None
        except Exception as exc:
            expect, expect_err = None, classify_error(exc).kind
        try:
            got = [node.id for node in process_service.run(query)]
            got_err = None
        except QueryOverloadError:
            continue  # a saturated tier refusing is not a parity failure
        except Exception as exc:
            got, got_err = None, classify_error(exc).kind
        if expect != got or expect_err != got_err:
            mismatches += 1
    return mismatches


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.loadgen",
        description="Load-test the AWB query serving tier.",
    )
    parser.add_argument("--mode", choices=("thread", "process"), default="process")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker count (0 = one per CPU core)")
    parser.add_argument("--partition", choices=("type", "hash"), default="type")
    parser.add_argument("--clients", type=int, default=100)
    parser.add_argument("--duration", type=float, default=5.0,
                        help="measurement window in seconds")
    parser.add_argument("--mix", choices=MIXES, default="cold")
    parser.add_argument("--model-size", type=int, default=60,
                        help="nodes in the generated model")
    parser.add_argument("--docs", type=int, default=60,
                        help="documents in the generated store (search mix)")
    parser.add_argument("--seed", type=int, default=20040522)
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="per-query wall-clock budget in seconds")
    parser.add_argument("--max-pending", type=int, default=None,
                        help="admission-control bound (default: workers*4)")
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless availability is 100%% and "
                             "a post-burst scatter/gather parity sweep passes")
    args = parser.parse_args(argv)

    if args.mix == "search":
        return _search_main(args)

    model = random_model(args.seed, size=args.model_size)
    service = QueryService(
        model,
        mode=args.mode,
        workers=args.workers,
        partition=args.partition,
        max_pending=args.max_pending,
    )
    try:
        report = run_load(
            service,
            clients=args.clients,
            duration=args.duration,
            mix=args.mix,
            seed=args.seed,
            timeout=args.timeout,
        )
        mismatches = None
        if args.mode == "process":
            mismatches = parity_sweep(model, service, args.seed)
            report["parity_mismatches"] = mismatches
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(
                f"{report['mode']} mode, {report['workers']} workers, "
                f"{report['clients']} clients, {report['duration_s']}s, "
                f"mix={report['mix']}"
            )
            print(
                f"  {report['requests']} requests: {report['ok']} ok, "
                f"{report['shed']} shed ({report['shed_rate']:.1%}), "
                f"{report['errors']} errors -> availability "
                f"{report['availability']:.1%}"
            )
            print(
                f"  {report['qps']} qps sustained; latency p50 "
                f"{report['p50_ms']}ms / p95 {report['p95_ms']}ms / "
                f"p99 {report['p99_ms']}ms"
            )
            if mismatches is not None:
                print(f"  parity sweep: {mismatches} mismatches")
        if args.check:
            if report["availability"] < 1.0:
                print(
                    f"CHECK FAILED: availability {report['availability']:.2%} < 100%",
                    file=sys.stderr,
                )
                return 1
            if mismatches:
                print(
                    f"CHECK FAILED: {mismatches} scatter/gather parity mismatches",
                    file=sys.stderr,
                )
                return 1
            print("check passed: availability 100%, parity clean")
        return 0
    finally:
        service.close()


def _search_main(args) -> int:
    """The ``--mix search`` path: a full-text document tier under load."""
    from ..collections import SearchService
    from ..testing.models import random_document_store

    store = random_document_store(args.seed, docs=args.docs)
    service = SearchService(
        store, shards=max(1, args.workers), mode=args.mode
    )
    try:
        report = run_search_load(
            service,
            clients=args.clients,
            duration=args.duration,
            seed=args.seed,
        )
        mismatches = search_parity_sweep(service, args.seed)
        report["parity_mismatches"] = mismatches
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(
                f"search mix, {report['mode']} mode, {report['shards']} shards, "
                f"{report['clients']} clients, {report['duration_s']}s"
            )
            print(
                f"  {report['requests']} requests: {report['ok']} ok, "
                f"{report['errors']} errors -> availability "
                f"{report['availability']:.1%}; {report['writes']} writes, "
                f"cache hit rate {report['cache_hit_rate']:.1%}"
            )
            print(
                f"  {report['qps']} qps sustained; latency p50 "
                f"{report['p50_ms']}ms / p95 {report['p95_ms']}ms / "
                f"p99 {report['p99_ms']}ms"
            )
            print(f"  parity sweep: {mismatches} mismatches")
        if args.check:
            if report["availability"] < 1.0:
                print(
                    f"CHECK FAILED: availability {report['availability']:.2%} < 100%",
                    file=sys.stderr,
                )
                return 1
            if mismatches:
                print(
                    f"CHECK FAILED: {mismatches} search parity mismatches",
                    file=sys.stderr,
                )
                return 1
            print("check passed: availability 100%, parity clean")
        return 0
    finally:
        service.close()


if __name__ == "__main__":
    raise SystemExit(main())
