"""Model partitioning and query routing for the shared-nothing serving tier.

The tier partitions the *start space* of the calculus: every model node has
exactly one owning shard, and a worker process answers a query only for the
start nodes it owns.  Because every pipeline step maps each node
independently of its siblings (``follow`` distributes over union, filters
are per-node, and ``collect`` is a dedup+sort that merges), evaluating the
full pipeline per-shard and merging the partials is *exactly* the
single-process result — the algebraic property the scatter/gather layer
leans on, and the one the parity property suite pins.

Two partitioning schemes, straight from the issue:

``type``
    nodes are owned by the shard of their metamodel class
    (``crc32(type_name) % shards``).  Start-by-type queries whose subtype
    closure lands on one shard get the single-shard fast path.
``hash``
    nodes are owned by ``crc32(node_id) % shards``.  Start-by-id queries
    always route to exactly one shard.

Hashes are CRC32, not Python's ``hash()``: worker processes must agree on
ownership with the front-end across interpreter boundaries, and ``str``
hashing is salted per process.

Routing consults the optimizer's statistics catalog: the export walk
records the small value domain of ``node/@type``, which is precisely the
evidence needed to *prove* a start set touches one partition (see
:func:`route_query`).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence

from ..querycalc.ast import Query

__all__ = ["PARTITION_SCHEMES", "Partitioner", "Route", "route_query"]

#: the partitioning schemes the tier supports.
PARTITION_SCHEMES = ("type", "hash")

#: the external variable the sharded plan filters its start set with.
SHARD_VARIABLE = {"type": "awb-shard-types", "hash": "awb-shard-ids"}


def _bucket(value: str, shards: int) -> int:
    """A process-independent stable bucket for a string key."""
    return zlib.crc32(value.encode("utf-8")) % shards


class Partitioner:
    """Assigns every model node to exactly one of ``shards`` partitions."""

    def __init__(self, scheme: str = "type", shards: int = 2):
        if scheme not in PARTITION_SCHEMES:
            raise ValueError(
                f"partition scheme must be one of {PARTITION_SCHEMES}, not {scheme!r}"
            )
        if shards < 1:
            raise ValueError(f"shards must be >= 1, not {shards}")
        self.scheme = scheme
        self.shards = shards

    def shard_of(self, node_id: str, type_name: str) -> int:
        """The shard owning a node, given both identifying facts."""
        if self.scheme == "type":
            return _bucket(type_name, self.shards)
        return _bucket(node_id, self.shards)

    def shard_of_type(self, type_name: str) -> int:
        return _bucket(type_name, self.shards)

    def shard_of_id(self, node_id: str) -> int:
        return _bucket(node_id, self.shards)

    def shards_of_types(self, type_names: Iterable[str]) -> FrozenSet[int]:
        """The set of shards owning any of the given node types."""
        return frozenset(_bucket(name, self.shards) for name in type_names)

    def shard_variable(self) -> str:
        """The external variable name the sharded plan's start filter reads."""
        return SHARD_VARIABLE[self.scheme]

    def owned_values(
        self, shard: int, node_ids: Sequence[str], type_names: Sequence[str]
    ) -> List[str]:
        """The values worker ``shard`` binds to its shard variable.

        Under ``type`` partitioning these are the *present* type names the
        shard owns; under ``hash`` partitioning the node ids.  Computed
        worker-side at startup/refresh from the worker's own replica, so
        the front-end never ships ownership lists over the wire.
        """
        if self.scheme == "type":
            return sorted(
                name for name in set(type_names) if _bucket(name, self.shards) == shard
            )
        return [nid for nid in node_ids if _bucket(nid, self.shards) == shard]

    def describe(self) -> dict:
        return {"scheme": self.scheme, "shards": self.shards}


@dataclass
class Route:
    """Where one query executes: one worker's full replica, or everywhere.

    ``kind`` is ``"single"`` (the named worker evaluates the *unsharded*
    plan over its full replica — exact single-process semantics) or
    ``"scatter"`` (every worker evaluates the sharded plan over its own
    start partition and the front-end merges the partials).  ``reason`` is
    the routing proof, surfaced through metrics and ``explain``.
    """

    kind: str  # "single" | "scatter"
    shard: Optional[int] = None
    reason: str = ""


def route_query(
    query: Query,
    partitioner: Partitioner,
    present_types: Optional[FrozenSet[str]],
    subtype_names,
    owner_of_id=None,
) -> Route:
    """Decide the execution route for one calculus query.

    ``present_types`` is the set of node type names that actually occur in
    the current export — taken from the statistics catalog's
    ``node/@type`` value domain when the export walk captured it (the
    catalog caps recorded domains, so a very type-diverse model yields
    ``None`` and the router conservatively scatters).  ``subtype_names``
    maps a type name to its subtype closure (the metamodel's view);
    ``owner_of_id`` maps a node id to its owning shard under ``hash``
    partitioning (``None`` when unknown).

    The fast path triggers only on *proof*: every start node the query can
    possibly select is owned by one shard.  Anything unprovable scatters,
    which is always correct — merely wider.
    """
    if partitioner.shards == 1:
        return Route("single", 0, "one-shard-tier")
    if query.trace is not None:
        # fn:trace emits one message for the whole collected sequence; a
        # scatter would emit one partial message per shard.  Traced queries
        # are diagnostics, so they take a single full-replica evaluation.
        shard = _bucket(query.trace, partitioner.shards)
        return Route("single", shard, "traced-query")
    start = query.start
    if start.node_id is not None:
        if partitioner.scheme == "hash":
            return Route(
                "single", partitioner.shard_of_id(start.node_id), "start-id-owner"
            )
        if owner_of_id is not None:
            shard = owner_of_id(start.node_id)
            if shard is not None:
                return Route("single", shard, "start-id-owner")
        return Route("scatter", None, "start-id-unmapped")
    if start.all_nodes:
        return Route("scatter", None, "start-all-nodes")
    if partitioner.scheme == "type" and start.type is not None:
        names = set(subtype_names(start.type))
        if present_types is not None:
            names &= present_types
        if not names:
            # provably empty start set: any single worker returns () —
            # cheapest possible proof, no scatter needed.
            return Route("single", 0, "start-type-absent")
        shards = partitioner.shards_of_types(names)
        if len(shards) == 1:
            return Route("single", next(iter(shards)), "start-type-single-shard")
        return Route("scatter", None, "start-type-spans-shards")
    return Route("scatter", None, "start-type-hash-partitioned")
