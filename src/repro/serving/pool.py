"""The process pool: worker lifecycle, scatter/gather, and the plan-blob store.

The front-end owns one :class:`ProcessPool`.  Each worker is a real OS
process (fork where available) holding a full model replica and its own
engine compile LRU — shared-nothing, so N workers really do evaluate N
plans concurrently instead of time-slicing one GIL.

The pool also owns the **cross-process plan story**: compiled closures
don't pickle, so the parent never ships plans.  It builds the *source*
variants once per normalized query (a cheap string build), stores them in
a :class:`PlanBlob`, and lets each worker compile on first use (its LRU
makes every later use a hit — re-compile-on-miss, compile-once-per-worker
amortized).  Workers report the plan's structural signature back, and the
blob records it: the signature is the cross-process plan identity the
front-end's result cache keys on, so two textually different queries with
the same optimized plan share cached results exactly as they do in thread
mode.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from itertools import count
from typing import Dict, List, Optional, Tuple

from ..awb.model import Model
from ..awb.xml_io import export_model_text
from ..querycalc.service.errors import RemoteQueryError
from ..xquery.errors import XQueryTimeoutError
from .partition import Partitioner, Route
from .worker import WorkerConfig, worker_main

__all__ = ["PlanBlob", "ProcessPool", "merge_partials"]

#: hard ceiling on one worker round-trip when no query deadline is set.
DEFAULT_REQUEST_TIMEOUT = 60.0

#: wall-clock grace added to a query's own budget before the parent
#: declares the worker unresponsive and respawns it.
REQUEST_GRACE = 5.0

#: how long a worker may take to import its replica and report ready.
BOOT_TIMEOUT = 120.0


@dataclass
class PlanBlob:
    """One normalized query's shareable plan material.

    ``source_full`` is the ordinary generated program (single-shard
    route); ``source_shard`` filters the start set by the partition
    scheme's external variable (scatter route).  ``signature`` is learned
    from the first worker reply — the structural plan identity used as
    the result-cache key across processes.
    """

    key: str
    source_full: str
    source_shard: str
    sort_property: str
    descending: bool
    distinct: bool
    signature: Optional[str] = None


class WorkerUnresponsiveError(XQueryTimeoutError):
    """The worker missed the parent-side deadline and was respawned."""


def merge_partials(
    partials: List[dict], descending: bool, distinct: bool
) -> Tuple[List[str], Tuple[str, ...]]:
    """Gather: merge per-shard partials into the global result order.

    Each partial's rows are ``(sort_key, node_id)`` pairs where the key is
    exactly the string the per-shard ``order by`` sorted on.  The global
    sort therefore orders by the same ``(key, id)`` tuple — with the id
    tie-break taking the sort's direction, matching both engines — and is
    independent of arrival order.  Under ``distinct`` a node reachable
    from start nodes on several shards appears in several partials;
    duplicates sort adjacent (same key, same id) and collapse here.
    """
    rows: List[Tuple[str, str]] = []
    traces: List[str] = []
    for partial in partials:
        rows.extend(partial["rows"])
        traces.extend(partial["traces"])
    rows.sort(key=lambda row: (row[0], row[1]), reverse=descending)
    ids: List[str] = []
    for _, node_id in rows:
        if distinct and ids and ids[-1] == node_id:
            continue
        ids.append(node_id)
    return ids, tuple(traces)


class WorkerHandle:
    """One worker process plus the parent's end of its pipe.

    A lock is held across each send+recv pair, so the pipe never carries
    interleaved conversations.  A request that misses its deadline kills
    and respawns the worker (the pipe would otherwise hold a stale reply),
    surfacing as ``XQDY_TIMEOUT``.
    """

    def __init__(self, shard: int, pool: "ProcessPool"):
        self.shard = shard
        self._pool = pool
        self._lock = threading.Lock()
        self._req_ids = count()
        self.restarts = 0
        self.process = None
        self.conn = None
        self._spawn()

    def _spawn(self) -> None:
        ctx = self._pool._ctx
        parent_conn, child_conn = ctx.Pipe()
        config = WorkerConfig(
            shard=self.shard,
            shards=self._pool.shards,
            scheme=self._pool.scheme,
            metamodel=self._pool.metamodel,
            # current_export_text regenerates lazily: after delta
            # broadcasts the stored text is stale, and a respawned worker
            # must boot from the live model's state, not the last full
            # export.
            export_text=self._pool.current_export_text(),
            generation=self._pool.generation,
            plan_cache_size=self._pool.plan_cache_size,
        )
        process = ctx.Process(
            target=worker_main, args=(child_conn, config), daemon=True
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(BOOT_TIMEOUT):
            process.terminate()
            raise RuntimeError(f"worker {self.shard} failed to boot in time")
        status, _, payload = parent_conn.recv()
        if status != "ok":
            process.join(timeout=5.0)
            raise RemoteQueryError(payload)
        self.process = process
        self.conn = parent_conn

    def _respawn(self) -> None:
        self.restarts += 1
        self._kill()
        self._spawn()

    def _kill(self) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
        self.process = None
        self.conn = None

    def request(self, op: str, payload: dict, timeout: Optional[float] = None):
        """One round-trip; raises the worker's structured error on failure."""
        wait = (
            timeout + REQUEST_GRACE
            if timeout is not None
            else self._pool.request_timeout
        )
        with self._lock:
            req_id = next(self._req_ids)
            try:
                self.conn.send((op, req_id, payload))
                if not self.conn.poll(wait):
                    self._respawn()
                    raise WorkerUnresponsiveError(
                        f"worker {self.shard} missed its {wait:.1f}s deadline "
                        "and was respawned"
                    )
                status, reply_id, body = self.conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                # the worker died mid-request (crash, OOM kill): bring a
                # fresh one up before surfacing the failure.
                self._respawn()
                raise RuntimeError(
                    f"worker {self.shard} died mid-request and was respawned"
                )
        if reply_id != req_id:
            # a stale reply on a fresh pipe cannot happen (respawn drops the
            # pipe), so this is a protocol bug worth failing loudly on.
            raise RuntimeError(
                f"worker {self.shard} answered request {reply_id}, expected {req_id}"
            )
        if status == "err":
            raise RemoteQueryError(body)
        return body

    def close(self) -> None:
        if self.conn is not None:
            try:
                self.conn.send(("shutdown", -1, {}))
                self.conn.poll(2.0)
            except (BrokenPipeError, OSError):
                pass
        if self.process is not None:
            self.process.join(timeout=5.0)
        self._kill()


class ProcessPool:
    """N shard workers plus the scatter/gather and plan-blob machinery."""

    def __init__(
        self,
        model: Model,
        shards: int,
        scheme: str = "type",
        plan_cache_size: int = 128,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ):
        self.model = model
        self.metamodel = model.metamodel
        self.shards = shards
        self.scheme = scheme
        self.partitioner = Partitioner(scheme, shards)
        self.plan_cache_size = plan_cache_size
        self.request_timeout = request_timeout
        self.generation = model.generation
        self.export_text = export_model_text(model, indent=False)
        self.refreshes = 0
        self.deltas = 0
        self._blobs: Dict[str, PlanBlob] = {}
        self._blob_lock = threading.Lock()
        self._refresh_lock = threading.Lock()
        #: set when delta broadcasts outran the stored ``export_text``;
        #: guarded by its own lock so a worker respawn (which regenerates
        #: lazily) cannot deadlock against an in-flight broadcast.
        self._export_dirty = False
        self._export_text_lock = threading.Lock()
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platform without fork
            self._ctx = multiprocessing.get_context("spawn")
        self.handles = [WorkerHandle(shard, self) for shard in range(shards)]
        self._scatter_pool = ThreadPoolExecutor(
            max_workers=shards, thread_name_prefix="awb-scatter"
        )
        self._closed = False

    # -- plan blobs --------------------------------------------------------

    def blob(self, key: str, build) -> PlanBlob:
        """The shared plan material for one normalized query key."""
        with self._blob_lock:
            existing = self._blobs.get(key)
        if existing is not None:
            return existing
        built = build()
        with self._blob_lock:
            # lost race: keep the first build (it may already carry a
            # learned signature).
            return self._blobs.setdefault(key, built)

    def learn_signature(self, blob: PlanBlob, signature: Optional[str]) -> None:
        if signature and blob.signature is None:
            blob.signature = signature

    def blob_stats(self) -> Dict[str, int]:
        with self._blob_lock:
            blobs = list(self._blobs.values())
        return {
            "blobs": len(blobs),
            "signed": sum(1 for blob in blobs if blob.signature is not None),
        }

    # -- replica refresh ---------------------------------------------------

    def current_export_text(self) -> str:
        """The export text matching the pool's generation, regenerated
        lazily when delta broadcasts have outrun the stored copy."""
        with self._export_text_lock:
            if self._export_dirty:
                self.export_text = export_model_text(self.model, indent=False)
                self._export_dirty = False
            return self.export_text

    def _set_export_text(self, text: str) -> None:
        with self._export_text_lock:
            self.export_text = text
            self._export_dirty = False

    def _mark_export_dirty(self) -> None:
        with self._export_text_lock:
            self._export_dirty = True

    def ensure_generation(self, generation: int) -> None:
        """Broadcast a replica refresh if the model moved past the pool."""
        if generation == self.generation:
            return
        with self._refresh_lock:
            if generation == self.generation:
                return
            export_text = export_model_text(self.model, indent=False)
            payload = {"export_text": export_text, "generation": generation}
            for handle in self.handles:
                handle.request("refresh", dict(payload))
            self._set_export_text(export_text)
            self.generation = generation
            self.refreshes += 1

    def apply_delta(
        self,
        script_text: str,
        base_generation: int,
        new_generation: int,
        in_sync: bool = True,
    ) -> bool:
        """Broadcast one resolved update script instead of a full re-export.

        Workers replay the script against their live replicas (O(delta)
        per worker, versus the O(model) serialize + reparse of
        :meth:`ensure_generation`).  Preconditions for soundness: the pool
        must currently be at *base_generation* and the caller's model must
        have been in sync with its export when the script was applied —
        otherwise the replicas would replay the delta on top of state the
        primary never had.  When the preconditions fail, or any worker's
        replay fails, the pool falls back to the full-refresh path: the
        stored export text is marked stale and the generation is reset so
        the next :meth:`ensure_generation` rebuilds every replica.

        Returns True when the delta path was used.
        """
        with self._refresh_lock:
            if not in_sync or self.generation != base_generation:
                self._mark_export_dirty()
                return False
            payload = {"script": script_text, "generation": new_generation}
            try:
                for handle in self.handles:
                    handle.request("delta", dict(payload))
            except Exception:
                # a partial broadcast leaves the replicas mixed: poison the
                # pool generation so the next snapshot refreshes them all.
                self.generation = -1
                self._mark_export_dirty()
                return False
            self.generation = new_generation
            self._mark_export_dirty()
            self.deltas += 1
            return True

    # -- execution ---------------------------------------------------------

    def execute(
        self, blob: PlanBlob, route: Route, remaining: Optional[float]
    ) -> Tuple[List[str], Tuple[str, ...]]:
        """Run one routed query, returning (ordered node ids, traces)."""
        if route.kind == "single":
            payload = {
                "key": blob.key,
                "source": blob.source_full,
                "variant": "full",
                "sort_property": blob.sort_property,
                "remaining": remaining,
            }
            reply = self.handles[route.shard].request("run", payload, remaining)
            self.learn_signature(blob, reply.get("signature"))
            return [node_id for _, node_id in reply["rows"]], tuple(reply["traces"])
        payload = {
            "key": blob.key,
            "source": blob.source_shard,
            "variant": "shard",
            "sort_property": blob.sort_property,
            "remaining": remaining,
        }

        def one(handle: WorkerHandle) -> dict:
            return handle.request("run", dict(payload), remaining)

        futures = [self._scatter_pool.submit(one, handle) for handle in self.handles]
        partials: List[dict] = []
        failure: Optional[BaseException] = None
        for future in futures:
            try:
                partials.append(future.result())
            except BaseException as exc:  # keep draining: siblings must finish
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure
        for partial in partials:
            self.learn_signature(blob, partial.get("signature"))
        return merge_partials(partials, blob.descending, blob.distinct)

    # -- observability / lifecycle ----------------------------------------

    def stats(self) -> Dict[str, object]:
        """Synchronous per-worker counters plus pool-level aggregates."""
        workers = []
        for handle in self.handles:
            try:
                entry = handle.request("stats", {})
            except Exception as exc:
                entry = {"shard": handle.shard, "error": str(exc)}
            entry["restarts"] = handle.restarts
            workers.append(entry)
        return {
            "mode": "process",
            "scheme": self.scheme,
            "shards": self.shards,
            "generation": self.generation,
            "refreshes": self.refreshes,
            "deltas": self.deltas,
            "plan_blobs": self.blob_stats(),
            "workers": workers,
            "runs": sum(w.get("runs", 0) for w in workers),
            "fallbacks": sum(w.get("fallbacks", 0) for w in workers),
            "restarts": sum(h.restarts for h in self.handles),
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._scatter_pool.shutdown(wait=False)
        for handle in self.handles:
            handle.close()

    def __del__(self):  # best-effort: daemon workers die with the parent anyway
        try:
            self.close()
        except Exception:
            pass

