"""The shard worker: one process, one full model replica, one start partition.

Each worker imports the model from the front-end's XML export (faithfully:
``apply_defaults=False``, so deleted default-valued properties stay
deleted), owns its own :class:`XQueryCalculusBackend` + engine compile LRU,
and answers two kinds of evaluation request:

``full``
    evaluate the unsharded plan over the whole replica — exact
    single-process semantics.  The front-end routes here when the
    statistics catalog *proves* the query touches one partition.
``shard``
    evaluate the sharded plan (start set filtered by an external
    variable) bound to this worker's ownership list.  The front-end
    merges the per-shard partials by ``(sort key, id)``.

Everything the parent needs for the merge rides back in the reply:
``(sort_key, node_id)`` pairs in the worker's result order, trace
messages, and the plan's structural signature (the cross-process plan
identity used by the blob store and result cache).

The module pre-imports every dependency at top level: under the ``fork``
start method a lazily-imported module could otherwise deadlock on an
import lock the parent held at fork time, and under ``spawn`` the child
needs them anyway.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..awb.metamodel import Metamodel
from ..awb.xml_io import import_model_text
from ..querycalc.service.errors import Deadline, classify_error
from ..querycalc.service.plans import PlanCache
from ..querycalc.via_xquery import XQueryCalculusBackend
from ..xquery.updates.apply import apply_script
from ..xdm import ElementNode
from ..xquery import EngineConfig, TraceLog, XQueryEngine
from ..xquery.errors import XQueryError, XQueryTimeoutError
from .partition import Partitioner

__all__ = ["WorkerConfig", "ShardWorker", "worker_main"]


@dataclass
class WorkerConfig:
    """Everything a worker process needs to build its replica (picklable)."""

    shard: int
    shards: int
    scheme: str
    metamodel: Metamodel
    export_text: str
    generation: int
    plan_cache_size: int = 128


class ShardWorker:
    """The in-process half of one worker: replica, backend, plan cache."""

    def __init__(self, config: WorkerConfig):
        self.shard = config.shard
        self.partitioner = Partitioner(config.scheme, config.shards)
        self.metamodel = config.metamodel
        self.plan_cache_size = config.plan_cache_size
        self._plans = PlanCache(maxsize=config.plan_cache_size)
        self.runs = 0
        self.fallbacks = 0
        self.errors = 0
        self.deltas = 0
        self._load(config.export_text, config.generation)

    # -- replica lifecycle -------------------------------------------------

    def _load(self, export_text: str, generation: int) -> None:
        self.model = import_model_text(
            export_text, self.metamodel, apply_defaults=False
        )
        self.engine = XQueryEngine(EngineConfig(backend="algebra"))
        self.backend = XQueryCalculusBackend(self.model, engine=self.engine)
        self.generation = generation
        self.owned = self.partitioner.owned_values(
            self.shard,
            node_ids=list(self.model.nodes),
            type_names=[node.type_name for node in self.model.nodes.values()],
        )

    def refresh(self, export_text: str, generation: int) -> Dict[str, int]:
        """Swap in a new export generation (a full replica rebuild)."""
        # the plan cache survives: generated source depends only on the
        # metamodel, not the instance data.  Only the replica moves.
        plans = self._plans
        self._load(export_text, generation)
        self._plans = plans
        return {"generation": self.generation, "owned": len(self.owned)}

    def delta(self, script_text: str, generation: int) -> Dict[str, int]:
        """Replay one resolved update script against the live replica.

        The primary already checked the script and resolved auto-assigned
        ids, so the replay is ``check="off"`` and deterministic: the same
        create/connect/remove/retype calls land here as landed on the
        primary, the replica's incremental exporter patches the same
        subtrees, and the next query sees a byte-identical export —
        without the O(model) serialize/reparse of a full refresh.
        """
        apply_script(script_text, self.model, check="off")
        self.generation = generation
        # membership may have moved (inserts/deletes/renames): recompute
        # this shard's ownership the same way a full load would.
        self.owned = self.partitioner.owned_values(
            self.shard,
            node_ids=list(self.model.nodes),
            type_names=[node.type_name for node in self.model.nodes.values()],
        )
        self.deltas += 1
        return {"generation": self.generation, "owned": len(self.owned)}

    # -- evaluation --------------------------------------------------------

    def run(self, payload: Dict) -> Dict:
        """Evaluate one request; see the protocol note in :func:`worker_main`.

        ``payload`` carries: ``key`` (normalized plan key), ``source``
        (XQuery text — full or sharded variant), ``variant`` ("full" |
        "shard"), ``sort_property`` (for merge-key extraction), and
        ``remaining`` (seconds of wall-clock budget left, or None).
        """
        self.runs += 1
        key = payload["key"]
        variant = payload["variant"]
        deadline = (
            Deadline.after(payload["remaining"])
            if payload.get("remaining") is not None
            else None
        )
        plan_key = f"{variant}:{key}"
        compiled = self._plans.get_or_build(
            plan_key, lambda: self.engine.compile(payload["source"])
        )
        variables: Dict[str, object] = {
            "model": self.backend.export.document_element()
        }
        if variant == "shard":
            variables[self.partitioner.shard_variable()] = list(self.owned)
        primary = self.engine.config.backend
        try:
            result, traces = self._evaluate(compiled, variables, deadline, primary)
        except XQueryError:
            raise
        except Exception as first:
            if primary == "treewalk":
                raise
            self.fallbacks += 1
            try:
                result, traces = self._evaluate(
                    compiled, variables, deadline, "treewalk"
                )
            except XQueryTimeoutError:
                raise
            except Exception:
                raise first
        rows = self._rows(result, payload.get("sort_property", ""))
        return {
            "rows": rows,
            "traces": traces,
            "signature": compiled.plan_signature,
            "shard": self.shard,
            "generation": self.generation,
        }

    def _evaluate(
        self,
        compiled,
        variables: Dict[str, object],
        deadline: Optional[Deadline],
        backend: str,
    ) -> Tuple[List, Tuple[str, ...]]:
        if deadline is not None:
            deadline.check("worker evaluate")
        trace = TraceLog()
        algebra = backend == "algebra"
        result = compiled.run(
            variables=variables,
            trace=trace,
            backend=backend,
            deadline=deadline.at if deadline is not None else None,
            statistics=self.backend.statistics if algebra else None,
        )
        if deadline is not None:
            deadline.check("worker materialize")
        return result, tuple(trace.messages)

    def _rows(self, result, sort_property: str) -> List[Tuple[str, str]]:
        """(sort key, node id) pairs, in the engine's result order.

        The sort key is exactly what the generated ``order by`` computed —
        ``string($result/property[@name eq "<prop>"])`` — so the
        front-end's merge sorts per-shard partials by the same key the
        per-shard sort used.
        """
        rows: List[Tuple[str, str]] = []
        for item in result:
            if not isinstance(item, ElementNode):
                continue
            node_id = item.get_attribute("id")
            if node_id is None:
                continue
            key = ""
            for child in item.child_elements("property"):
                if child.get_attribute("name") == sort_property:
                    key = child.string_value()
                    break
            rows.append((key, node_id))
        return rows

    def stats(self) -> Dict[str, object]:
        return {
            "shard": self.shard,
            "generation": self.generation,
            "owned": len(self.owned),
            "runs": self.runs,
            "fallbacks": self.fallbacks,
            "errors": self.errors,
            "deltas": self.deltas,
            "plans": self._plans.stats(),
            "compile_cache": self.engine.cache_info(),
            "export": self.backend.export_stats(),
        }


def worker_main(conn, config: WorkerConfig) -> None:
    """The worker process entry point: a request loop over one Pipe end.

    Protocol: the parent sends ``(op, req_id, payload)`` tuples and the
    worker replies ``("ok", req_id, result)`` or ``("err", req_id,
    QueryError)``.  Ops: ``run`` (evaluate), ``refresh`` (new export
    generation), ``delta`` (replay one resolved update script in place),
    ``stats`` (counters), ``ping`` (liveness), ``shutdown``.
    Every reply carries the request id, so a parent that timed out one
    request and kept the pipe can discard stale replies instead of
    desynchronizing.
    """
    worker = None
    try:
        worker = ShardWorker(config)
        conn.send(("ok", "boot", {"shard": worker.shard, "owned": len(worker.owned)}))
    except Exception as exc:  # a broken boot must still answer the parent
        conn.send(("err", "boot", classify_error(exc)))
        conn.close()
        return
    while True:
        try:
            op, req_id, payload = conn.recv()
        except (EOFError, OSError):
            break
        try:
            if op == "run":
                conn.send(("ok", req_id, worker.run(payload)))
            elif op == "refresh":
                result = worker.refresh(
                    payload["export_text"], payload["generation"]
                )
                conn.send(("ok", req_id, result))
            elif op == "delta":
                result = worker.delta(payload["script"], payload["generation"])
                conn.send(("ok", req_id, result))
            elif op == "stats":
                conn.send(("ok", req_id, worker.stats()))
            elif op == "ping":
                conn.send(("ok", req_id, {"time": time.monotonic()}))
            elif op == "shutdown":
                conn.send(("ok", req_id, {}))
                break
            else:
                raise ValueError(f"unknown worker op {op!r}")
        except Exception as exc:
            worker.errors += 1
            try:
                conn.send(
                    ("err", req_id, classify_error(exc, payload.get("key")
                                                   if isinstance(payload, dict) else None))
            )
            except (BrokenPipeError, OSError):
                break
    conn.close()
