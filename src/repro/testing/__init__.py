"""Generative differential conformance harness.

The repo carries four implementations that must agree — the treewalk
interpreter, the closure compiler, the cached/fault-tolerant
:class:`~repro.querycalc.service.QueryService`, and the native-vs-XQuery
calculus pair — and hand-written parity corpora only cover the programs
someone thought to write.  This package generates the rest:

* :mod:`repro.testing.generator` — a seeded, grammar-driven XQuery-subset
  program generator (weighted productions over FLWOR, paths, predicates,
  constructors with duplicate-attribute modes, error-as-value idioms,
  ``fn:trace``, typeswitch/try-catch);
* :mod:`repro.testing.models` — random AWB models and random calculus
  queries over them;
* :mod:`repro.testing.oracle` — the differential oracles that run one
  generated program under every implementation and compare serialized
  results, trace output, and error codes (with an allowlist for
  divergences that are deliberate period-accurate quirks);
* :mod:`repro.testing.metamorphic` — semantics-preserving rewrites
  (predicate↔where, let-inlining, sequence reassociation) whose two
  renderings must evaluate identically;
* :mod:`repro.testing.shrinker` — a delta-debugging reducer that turns
  any diverging program into a minimal reproducer;
* :mod:`repro.testing.corpus` — the persisted regression corpus under
  ``tests/corpus/fuzz/``, auto-replayed by ``tests/test_fuzz_regressions.py``;
* :mod:`repro.testing.fuzz` — the campaign driver and CLI
  (``python -m repro.testing.fuzz --seed N --budget K --shrink``).
"""

from .generator import GENERATOR_VERSION, GenExpr, ProgramGenerator
from .metamorphic import METAMORPHIC_RULES, metamorphic_pair
from .models import random_calculus_query, random_model
from .oracle import (
    ALLOWLIST,
    CalculusOracle,
    Divergence,
    ServingOracle,
    assert_calculus_parity,
    compare_xquery,
    run_outcome,
    xquery_outcomes,
)
from .shrinker import shrink_program, shrink_text


def __getattr__(name: str):
    # lazy: importing these eagerly would shadow ``python -m
    # repro.testing.fuzz`` (the module would exist in sys.modules before
    # runpy executes it, which CPython warns about).
    if name in ("CampaignStats", "run_campaign"):
        from . import fuzz

        return getattr(fuzz, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ALLOWLIST",
    "CampaignStats",
    "CalculusOracle",
    "Divergence",
    "GENERATOR_VERSION",
    "GenExpr",
    "METAMORPHIC_RULES",
    "ProgramGenerator",
    "ServingOracle",
    "assert_calculus_parity",
    "compare_xquery",
    "metamorphic_pair",
    "random_calculus_query",
    "random_model",
    "run_campaign",
    "run_outcome",
    "shrink_program",
    "shrink_text",
    "xquery_outcomes",
]
