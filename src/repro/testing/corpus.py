"""The persisted regression corpus: shrunk reproducers, pinned forever.

Every divergence the fuzzer ever finds is reduced and written here, so
the exact program that once exposed a bug (or documents a licensed
quirk) is replayed by ``tests/test_fuzz_regressions.py`` on every run —
the fuzzer's lottery wins become deterministic regression tests.

File formats under ``tests/corpus/fuzz/``:

* ``*.xq`` — an XQuery-pair case.  Header comments carry provenance and
  the engine configuration::

      (: fuzz-case kind=xquery seed=12345 gen=1 :)
      (: config: {"duplicate_attribute_mode": "keep"} :)
      (: note: one line on what this pinned and why :)
      (: allow: rule-name :)            <- only for licensed quirks
      <program text>

* ``*.calculus.xml`` — a calculus-fleet case::

      <fuzz-case kind="calculus" model-seed="3" model-size="24"
                 note="..." allow="html-property-filter">
        <query>...</query>
      </fuzz-case>
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import List, Optional

from ..xquery import EngineConfig

#: default corpus location, relative to the repo root.
DEFAULT_CORPUS = os.path.join("tests", "corpus", "fuzz")

_HEADER = re.compile(r"^\(:\s*(fuzz-case|config|note|allow):?\s*(.*?)\s*:\)\s*$")


@dataclass
class CorpusCase:
    """One pinned reproducer."""

    name: str
    kind: str  # "xquery" | "calculus"
    source: str  # program text (xquery) or <query> XML (calculus)
    config: dict = field(default_factory=dict)
    note: str = ""
    allow: Optional[str] = None
    seed: Optional[int] = None
    generator_version: Optional[int] = None
    model_seed: int = 0
    model_size: int = 24
    model_html: bool = False

    def engine_config(self) -> EngineConfig:
        return EngineConfig(**self.config)


def load_corpus(directory: str) -> List[CorpusCase]:
    """Every pinned case in ``directory``, sorted by file name."""
    cases: List[CorpusCase] = []
    if not os.path.isdir(directory):
        return cases
    for entry in sorted(os.listdir(directory)):
        path = os.path.join(directory, entry)
        if entry.endswith(".calculus.xml"):
            cases.append(_load_calculus(entry, path))
        elif entry.endswith(".xq"):
            cases.append(_load_xquery(entry, path))
    return cases


def _load_xquery(name: str, path: str) -> CorpusCase:
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    case = CorpusCase(name=name, kind="xquery", source="")
    body_start = 0
    for index, line in enumerate(lines):
        match = _HEADER.match(line)
        if match is None:
            body_start = index
            break
        tag, value = match.groups()
        if tag == "fuzz-case":
            for token in value.split():
                key, _, raw = token.partition("=")
                if key == "seed":
                    case.seed = int(raw)
                elif key == "gen":
                    case.generator_version = int(raw)
        elif tag == "config":
            case.config = json.loads(value) if value else {}
        elif tag == "note":
            case.note = value
        elif tag == "allow":
            case.allow = value or None
        body_start = index + 1
    case.source = "\n".join(lines[body_start:]).strip("\n")
    return case


def _load_calculus(name: str, path: str) -> CorpusCase:
    from ..xmlio import parse_element, serialize

    with open(path, "r", encoding="utf-8") as handle:
        root = parse_element(handle.read())
    if root.name != "fuzz-case":
        raise ValueError(f"{path}: expected <fuzz-case>, found <{root.name}>")
    queries = [child for child in root.child_elements() if child.name == "query"]
    if len(queries) != 1:
        raise ValueError(f"{path}: expected exactly one <query>")
    return CorpusCase(
        name=name,
        kind="calculus",
        source=serialize(queries[0]),
        note=root.get_attribute("note") or "",
        allow=root.get_attribute("allow") or None,
        seed=int(root.get_attribute("seed") or 0) or None,
        model_seed=int(root.get_attribute("model-seed") or 0),
        model_size=int(root.get_attribute("model-size") or 24),
        model_html=root.get_attribute("model-html") == "true",
    )


def write_xquery_case(
    directory: str,
    name: str,
    source: str,
    config: Optional[dict] = None,
    note: str = "",
    allow: Optional[str] = None,
    seed: Optional[int] = None,
    generator_version: Optional[int] = None,
) -> str:
    """Write a pinned ``.xq`` case with its provenance header."""
    os.makedirs(directory, exist_ok=True)
    if not name.endswith(".xq"):
        name += ".xq"
    lines = []
    provenance = []
    if seed is not None:
        provenance.append(f"seed={seed}")
    if generator_version is not None:
        provenance.append(f"gen={generator_version}")
    lines.append(f"(: fuzz-case kind=xquery {' '.join(provenance)} :)".replace("  ", " "))
    if config:
        lines.append(f"(: config: {json.dumps(config, sort_keys=True)} :)")
    if note:
        lines.append(f"(: note: {note} :)")
    if allow:
        lines.append(f"(: allow: {allow} :)")
    lines.append(source.strip("\n"))
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return path


def parse_corpus_query(case: CorpusCase):
    """The calculus Query a pinned calculus case replays."""
    from ..querycalc import parse_query_xml

    return parse_query_xml(case.source)
