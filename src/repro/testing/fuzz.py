"""The fuzz campaign driver and CLI.

One campaign interleaves the three program kinds — raw XQuery programs
for the engine pair, metamorphic pairs, and calculus queries for the
native/via-XQuery/service fleet — from a single seeded stream, so
``--seed N --budget K`` always regenerates the identical campaign.
Every raw XQuery program additionally feeds the type-soundness oracle:
the static analyzer's inferred type for the body must admit the runtime
value the reference backend produces (``kind="type-soundness"``
divergences are analyzer bugs, not backend bugs).

Usage::

    PYTHONPATH=src python -m repro.testing.fuzz --seed 7 --budget 500 --shrink
    PYTHONPATH=src python -m repro.testing.fuzz --seed 7 --budget 150 --check

``--check`` exits non-zero if any unallowlisted divergence survives —
that is the CI ``fuzz-smoke`` gate.  ``--pin DIR`` writes each shrunk
diverging program into the regression corpus with its provenance header.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..xquery import EngineConfig
from ..xquery.errors import XQueryStaticError  # noqa: F401  (re-export for tests)
from .generator import GENERATOR_VERSION, GenExpr, ProgramGenerator, atom
from .metamorphic import metamorphic_pair
from .models import (
    random_calculus_query,
    random_document_store,
    random_model,
    random_phrase,
)
from .oracle import (
    CalculusOracle,
    CollectionOracle,
    Divergence,
    compare_sources,
    divergence_from,
    has_timeout,
    type_soundness_divergence,
    xquery_outcomes,
)
from .shrinker import shrink_program

#: wall-clock budget per generated program run; a timeout skips the
#: comparison (the other backend may simply be faster), it never fails it.
PROGRAM_TIMEOUT = 2.0

#: how many calculus queries share one random model before a fresh one.
QUERIES_PER_MODEL = 25

KINDS = ("xquery", "metamorphic", "calculus", "collection")

#: how many collection programs share one seeded document store.  The
#: store is occasionally mutated between draws (an update script against
#: a model-backed document), so the incrementally-maintained index is
#: part of what every subsequent program differentially tests.
PROGRAMS_PER_STORE = 40


@dataclass
class CampaignStats:
    """Everything E17 and the CLI report about one campaign."""

    seed: int
    budget: int
    generator_version: int = GENERATOR_VERSION
    programs: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    outcomes: Dict[str, int] = field(default_factory=dict)
    coverage: Dict[str, int] = field(default_factory=dict)
    divergences: List[Divergence] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def unallowlisted(self) -> List[Divergence]:
        return [d for d in self.divergences if not d.allowlisted]

    @property
    def productions_hit(self) -> int:
        return sum(1 for p in ProgramGenerator.PRODUCTIONS if self.coverage.get(p))

    @property
    def production_coverage(self) -> float:
        return self.productions_hit / len(ProgramGenerator.PRODUCTIONS)

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "generator_version": self.generator_version,
            "programs": self.programs,
            "by_kind": dict(self.by_kind),
            "outcomes": dict(self.outcomes),
            "productions_total": len(ProgramGenerator.PRODUCTIONS),
            "productions_hit": self.productions_hit,
            "production_coverage": round(self.production_coverage, 4),
            "coverage": dict(sorted(self.coverage.items())),
            "divergences": len(self.divergences),
            "unallowlisted_divergences": len(self.unallowlisted),
            "allowlisted": [
                {"rule": d.allowlisted, "detail": d.detail, "source": d.source}
                for d in self.divergences
                if d.allowlisted
            ],
            "elapsed_seconds": round(self.elapsed, 3),
        }

    def summary(self) -> str:
        lines = [
            f"fuzz campaign: seed={self.seed} budget={self.budget} "
            f"gen=v{self.generator_version}",
            f"  programs          {self.programs}  ({self.by_kind})",
            f"  outcomes          {self.outcomes}",
            f"  grammar coverage  {self.productions_hit}/"
            f"{len(ProgramGenerator.PRODUCTIONS)} productions "
            f"({self.production_coverage:.0%})",
            f"  divergences       {len(self.divergences)} "
            f"({len(self.unallowlisted)} unallowlisted)",
            f"  elapsed           {self.elapsed:.1f}s",
        ]
        for divergence in self.divergences:
            lines.append("")
            lines.append(divergence.describe())
        return "\n".join(lines)


def _random_config(rng: random.Random) -> EngineConfig:
    """A per-program engine configuration draw.

    Defaults dominate; the quirk modes (duplicate-attribute handling,
    Galax diagnostics, the trace-deleting optimizer bug) appear often
    enough that their parity is continuously exercised.
    """
    mode = "last"
    if rng.random() < 0.4:
        mode = rng.choice(("last", "first", "keep", "error"))
    return EngineConfig(
        duplicate_attribute_mode=mode,
        galax_diagnostics=rng.random() < 0.08,
        optimize=rng.random() < 0.85,
        trace_is_dead_code=rng.random() < 0.15,
        # the pair oracle runs every backend regardless; drawing a default
        # here also exercises the algebra plan cache + default dispatch.
        backend=rng.choice(("treewalk", "treewalk", "closures", "algebra")),
    )


def _count_outcome(stats: CampaignStats, outcomes: Dict[str, tuple]) -> None:
    if has_timeout(outcomes):
        stats.outcomes["timeout-skipped"] = stats.outcomes.get("timeout-skipped", 0) + 1
        return
    first = next(iter(outcomes.values()))
    key = first[0] if first[0] in ("error", "crash") else "ok"
    stats.outcomes[key] = stats.outcomes.get(key, 0) + 1


def run_campaign(
    seed: int,
    budget: int,
    shrink: bool = False,
    kinds: Sequence[str] = KINDS,
    max_fuel: int = 14,
    time_limit: Optional[float] = None,
    serving: bool = True,
) -> CampaignStats:
    """Run one seeded campaign of ``budget`` generated programs.

    ``serving=True`` (the default) adds the sharded process-pool service
    to the calculus fleet: every calculus draw also runs through real
    worker processes with scatter/gather, alternating the partition
    scheme per model (odd model index → ``type``, even → ``hash``) so
    both schemes see every campaign.  The flag draws nothing from the
    RNG, so campaigns with and without it generate identical programs.
    """
    rng = random.Random(seed)
    stats = CampaignStats(seed=seed, budget=budget)
    generator = ProgramGenerator(rng, max_fuel=max_fuel, coverage=stats.coverage)
    started = time.perf_counter()
    oracle: Optional[CalculusOracle] = None
    model_queries = 0
    model_index = 0
    coll_oracle: Optional[CollectionOracle] = None
    store_programs = 0
    store_index = 0
    weights = {"xquery": 50, "metamorphic": 15, "calculus": 20, "collection": 15}
    active = [k for k in KINDS if k in kinds]
    for _ in range(budget):
        if time_limit is not None and time.perf_counter() - started > time_limit:
            break
        kind = rng.choices(active, weights=[weights[k] for k in active], k=1)[0]
        stats.programs += 1
        stats.by_kind[kind] = stats.by_kind.get(kind, 0) + 1
        if kind == "xquery":
            config = _random_config(rng)
            program = generator.program()
            source = program.render()
            outcomes = xquery_outcomes(source, config, timeout=PROGRAM_TIMEOUT)
            _count_outcome(stats, outcomes)
            divergence = divergence_from(source, outcomes, "xquery-pair")
            if divergence is not None:
                if shrink and not divergence.allowlisted:
                    divergence.shrunk_source = shrink_divergence(program, config)
                stats.divergences.append(divergence)
            # every raw program also feeds the type-soundness oracle: the
            # inferred static type of the body must admit the value the
            # reference backend actually produced.
            soundness = type_soundness_divergence(
                source, config, timeout=PROGRAM_TIMEOUT
            )
            stats.outcomes["type-soundness-checked"] = (
                stats.outcomes.get("type-soundness-checked", 0) + 1
            )
            if soundness is not None:
                if shrink and not soundness.allowlisted:
                    soundness.shrunk_source = shrink_soundness(program, config)
                stats.divergences.append(soundness)
        elif kind == "metamorphic":
            original, rewritten, rule = metamorphic_pair(rng, generator)
            divergence = compare_sources(
                original,
                rewritten,
                detail=f"rule={rule}",
                timeout=PROGRAM_TIMEOUT,
            )
            stats.outcomes["metamorphic-pair"] = (
                stats.outcomes.get("metamorphic-pair", 0) + 1
            )
            if divergence is not None:
                stats.divergences.append(divergence)
        elif kind == "collection":
            if coll_oracle is None or store_programs >= PROGRAMS_PER_STORE:
                store_index += 1
                if coll_oracle is not None:
                    coll_oracle.close()
                coll_oracle = CollectionOracle(
                    random_document_store(seed * 777 + store_index),
                    timeout=PROGRAM_TIMEOUT,
                    serving=serving,
                )
                store_programs = 0
            store_programs += 1
            divergence = _collection_draw(rng, generator, coll_oracle, serving)
            stats.outcomes["collection-program"] = (
                stats.outcomes.get("collection-program", 0) + 1
            )
            if divergence is not None:
                stats.divergences.append(divergence)
        else:
            if oracle is None or model_queries >= QUERIES_PER_MODEL:
                model_index += 1
                if oracle is not None:
                    oracle.close()
                oracle = CalculusOracle(
                    random_model(seed * 1000 + model_index),
                    serving=serving,
                    serving_scheme="type" if model_index % 2 else "hash",
                )
                model_queries = 0
            query = random_calculus_query(rng, oracle.model)
            model_queries += 1
            divergence = oracle.compare(query)
            stats.outcomes["calculus-query"] = (
                stats.outcomes.get("calculus-query", 0) + 1
            )
            if divergence is not None:
                stats.divergences.append(divergence)
    if oracle is not None:
        oracle.close()
    if coll_oracle is not None:
        coll_oracle.close()
    stats.elapsed = time.perf_counter() - started
    return stats


def _collection_draw(
    rng: random.Random,
    generator: ProgramGenerator,
    oracle: CollectionOracle,
    serving: bool,
) -> Optional[Divergence]:
    """One collection-kind draw against a shared seeded store.

    Occasionally mutates the store first — a write through every serving
    tier, so replicas patch incrementally and generation-keyed cache
    entries go cold — then compares either a generated program (all
    backends, indexed vs scan) or a structured request (direct engine vs
    service cold/warm vs sharded scatter/gather).  The RNG draws are
    identical with and without ``serving``: when the process/thread tiers
    are absent, the same generated request still runs as its source
    program under the six-way program oracle.
    """
    from ..collections import SearchRequest
    from ..collections.service import REQUEST_KINDS
    from .models import FT_COLLECTIONS

    store = oracle.store
    roll = rng.random()
    if roll < 0.12:
        uri = f"docs/w{rng.randrange(0, 5)}.xml"
        if rng.random() < 0.25 and uri in store:
            if oracle.services:
                oracle.sharded.delete(uri)
            else:
                store.remove(uri)
        else:
            words = " ".join(random_phrase(rng, 1) for _ in range(rng.randrange(2, 9)))
            text = f"<doc>{words}</doc>"
            if oracle.services:
                for service in oracle.services:
                    service.put_text(uri, text)
            else:
                store.put_text(uri, text)
    uris = store.uris()
    collections = store.known_collections() or list(FT_COLLECTIONS)
    phrases = [random_phrase(rng) for _ in range(4)]
    if rng.random() < 0.25:
        kind = rng.choice([k for k in REQUEST_KINDS if k != "doc"] + ["doc"] * 2)
        request = SearchRequest(
            kind=kind,
            uri=rng.choice(uris) if uris else "missing.xml",
            collection=rng.choice(list(collections)),
            phrase=random_phrase(rng),
            width=rng.choice((10, 20, 40)),
            limit=rng.choice((0, 0, 1, 3)),
        )
        if oracle.services:
            return oracle.compare_request(request)
        return oracle.compare(request.source())
    program = generator.collection_program(uris, list(collections), phrases)
    return oracle.compare(program.render())


def shrink_divergence(program: GenExpr, config: EngineConfig) -> str:
    """Reduce a diverging generated program to its minimal reproducer."""
    from .oracle import compare_xquery

    def is_interesting(source: str) -> bool:
        divergence = compare_xquery(source, config, timeout=PROGRAM_TIMEOUT)
        return divergence is not None and not divergence.allowlisted

    return shrink_program(program, is_interesting).render()


def shrink_soundness(program: GenExpr, config: EngineConfig) -> str:
    """Reduce a program whose runtime value escaped its inferred type."""

    def is_interesting(source: str) -> bool:
        divergence = type_soundness_divergence(
            source, config, timeout=PROGRAM_TIMEOUT
        )
        return divergence is not None and not divergence.allowlisted

    return shrink_program(program, is_interesting).render()


# -- deliberate fault injection (exercises the shrinker end to end) ------------


def graft_trigger(program: GenExpr, trigger_source: str = "7 idiv 2") -> GenExpr:
    """Bury ``trigger_source`` inside a generated program's body.

    Used by E17 and the harness tests: with :func:`injected_interesting`
    as the oracle, the grafted program "diverges", and the shrinker must
    dig the trigger back out as a ≤5-line reproducer.
    """
    parts = list(program.parts)
    body = parts[-1]
    assert isinstance(body, GenExpr)
    parts[-1] = GenExpr(
        "sequence", ["(", body, ", (", atom(trigger_source), "))"], flavor="sequence"
    )
    return GenExpr("program", parts, flavor="sequence")


def injected_interesting(
    config: Optional[EngineConfig] = None, trigger: str = "idiv"
):
    """An interestingness predicate simulating a backend bug on ``trigger``.

    A candidate is "diverging" when it still contains the trigger token
    and still compiles — the behavioral analogue of a codegen bug in one
    backend's handling of that operator.
    """

    def is_interesting(source: str) -> bool:
        if trigger not in source:
            return False
        outcomes = xquery_outcomes(source, config, timeout=PROGRAM_TIMEOUT)
        if has_timeout(outcomes):
            return False
        first = next(iter(outcomes.values()))
        # a static (compile) error means the candidate mangled the program
        # beyond the point where the "bug" could execute.
        return not (first[0] == "error" and first[1] == "XQueryStaticError")

    return is_interesting


# -- CLI -----------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.fuzz",
        description="Differential conformance fuzzing for the engine fleet.",
    )
    parser.add_argument("--seed", type=int, default=20040522, help="campaign seed")
    parser.add_argument(
        "--budget", type=int, default=200, help="number of generated programs"
    )
    parser.add_argument(
        "--shrink", action="store_true", help="reduce each diverging program"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 2 if any unallowlisted divergence is found (CI gate)",
    )
    parser.add_argument(
        "--kinds",
        default=",".join(KINDS),
        help=f"comma-separated subset of {KINDS}",
    )
    parser.add_argument(
        "--time-limit", type=float, default=None, help="stop after N seconds"
    )
    parser.add_argument("--max-fuel", type=int, default=14, help="program size budget")
    parser.add_argument(
        "--no-serving",
        action="store_true",
        help="skip the sharded process-pool oracle on calculus draws "
             "(the generated program stream is identical either way)",
    )
    parser.add_argument("--json", default=None, help="write stats JSON to this path")
    parser.add_argument(
        "--pin",
        default=None,
        metavar="DIR",
        help="write shrunk diverging programs into this corpus directory",
    )
    args = parser.parse_args(argv)
    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    unknown = set(kinds) - set(KINDS)
    if unknown:
        parser.error(f"unknown kinds: {sorted(unknown)}")
    stats = run_campaign(
        args.seed,
        args.budget,
        shrink=args.shrink,
        kinds=kinds,
        max_fuel=args.max_fuel,
        time_limit=args.time_limit,
        serving=not args.no_serving,
    )
    print(stats.summary())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(stats.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[stats written to {args.json}]")
    if args.pin and stats.divergences:
        from .corpus import write_xquery_case

        for index, divergence in enumerate(stats.divergences):
            if divergence.kind == "calculus":
                continue
            path = write_xquery_case(
                args.pin,
                f"pinned_seed{args.seed}_{index}",
                divergence.shrunk_source or divergence.source,
                note=f"auto-pinned divergence ({divergence.kind})",
                allow=divergence.allowlisted,
                seed=args.seed,
                generator_version=GENERATOR_VERSION,
            )
            print(f"[pinned {path}]")
    if args.check and stats.unallowlisted:
        print(
            f"FUZZ GATE FAILED: {len(stats.unallowlisted)} unallowlisted "
            "divergence(s)",
            file=sys.stderr,
        )
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
