"""Seeded, grammar-driven generator for the XQuery subset.

Programs are built as :class:`GenExpr` trees — each node one grammar
production with a mix of literal text and child expressions — so the same
structure serves three consumers:

* ``render()`` produces the source text the engines run;
* the metamorphic rewriter re-renders eligible shapes in equivalent forms;
* the shrinker replaces subtrees with atoms and drops list elements
  without ever re-parsing source text.

Production choice is weighted and fuel-bounded: every draw burns fuel,
and an empty tank forces a leaf, so generation always terminates and the
program size follows the fuel budget.  The generator tracks the variable
environment (``for``/``let``/quantifier/function-parameter bindings, each
with a rough value flavor) so references are almost always bound — with a
deliberate, rare production for the unbound-variable error the paper's
debugging chapter spends so much time on.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

#: bumped whenever the grammar changes shape enough that a recorded
#: (seed, version) pair would regenerate a different program.  Stored in
#: corpus provenance headers.
GENERATOR_VERSION = 2

Part = Union[str, "GenExpr"]


class GenExpr:
    """One grammar production: literal text interleaved with children.

    ``flavor`` is a rough value category ("numeric", "string", "boolean",
    "node", "sequence", "any") used to keep most programs well-typed;
    ``pure`` means evaluation has no observable effect (no ``fn:trace``,
    no ``fn:error``); ``creates_nodes`` marks constructor-containing
    subtrees, which the let-inlining rewrite must not duplicate (node
    identity is observable through ``is``/``<<``).
    """

    __slots__ = ("kind", "parts", "flavor", "pure", "creates_nodes")

    def __init__(
        self,
        kind: str,
        parts: Sequence[Part],
        flavor: str = "any",
        pure: Optional[bool] = None,
        creates_nodes: Optional[bool] = None,
    ):
        self.kind = kind
        self.parts: List[Part] = list(parts)
        self.flavor = flavor
        children = [p for p in self.parts if isinstance(p, GenExpr)]
        self.pure = all(c.pure for c in children) if pure is None else pure
        self.creates_nodes = (
            any(c.creates_nodes for c in children)
            if creates_nodes is None
            else creates_nodes
        )

    def render(self) -> str:
        return "".join(
            part if isinstance(part, str) else part.render() for part in self.parts
        )

    def children(self) -> List["GenExpr"]:
        return [p for p in self.parts if isinstance(p, GenExpr)]

    def walk(self, path: Tuple[int, ...] = ()) -> Iterator[Tuple[Tuple[int, ...], "GenExpr"]]:
        """Yield ``(path, node)`` pairs; a path indexes into ``parts``."""
        yield path, self
        for index, part in enumerate(self.parts):
            if isinstance(part, GenExpr):
                yield from part.walk(path + (index,))

    def replace(self, path: Tuple[int, ...], new: "GenExpr") -> "GenExpr":
        """A copy of this tree with the node at ``path`` swapped for ``new``."""
        if not path:
            return new
        parts = list(self.parts)
        child = parts[path[0]]
        assert isinstance(child, GenExpr), "path must address a child expression"
        parts[path[0]] = child.replace(path[1:], new)
        return GenExpr(
            self.kind,
            parts,
            flavor=self.flavor,
            pure=None,
            creates_nodes=None,
        )

    def without_part(self, path: Tuple[int, ...], index: int) -> "GenExpr":
        """A copy with ``parts[index]`` of the node at ``path`` removed."""
        if not path:
            parts = self.parts[:index] + self.parts[index + 1 :]
            return GenExpr(self.kind, parts, flavor=self.flavor)
        parts = list(self.parts)
        child = parts[path[0]]
        assert isinstance(child, GenExpr)
        parts[path[0]] = child.without_part(path[1:], index)
        return GenExpr(self.kind, parts, flavor=self.flavor)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GenExpr {self.kind} {self.render()!r}>"


def atom(text: str, flavor: str = "any") -> GenExpr:
    """A literal leaf (also the shrinker's replacement vocabulary)."""
    return GenExpr("atom", [text], flavor=flavor)


#: binding flavors the environment tracks.
_ITEM, _SEQ, _NODE = "item", "sequence", "node"


class _Binding:
    __slots__ = ("name", "kind", "flavor")

    def __init__(self, name: str, kind: str, flavor: str):
        self.name = name
        self.kind = kind  # _ITEM / _SEQ / _NODE
        self.flavor = flavor  # numeric / string / node / any


class ProgramGenerator:
    """Draws weighted productions from the grammar under a fuel budget.

    ``coverage`` maps production name → times drawn, across every program
    this generator has produced; E17 reports it as grammar coverage.
    """

    #: every production the generator can draw, for coverage accounting.
    PRODUCTIONS = (
        "int",
        "decimal",
        "string",
        "range",
        "sequence",
        "empty-sequence",
        "arith",
        "unary-minus",
        "general-compare",
        "value-compare",
        "node-compare",
        "logic",
        "not",
        "if",
        "flwor",
        "flwor-where",
        "flwor-order",
        "flwor-at",
        "let",
        "quantified",
        "predicate",
        "positional-predicate",
        "typeswitch",
        "try-catch",
        "direct-element",
        "computed-element",
        "computed-attribute",
        "duplicate-attributes",
        "text-constructor",
        "comment-constructor",
        "document-constructor",
        "enclosed-multi",
        "path-child",
        "path-descendant",
        "path-attribute",
        "path-axis",
        "path-kind-test",
        "numeric-builtin",
        "string-builtin",
        "sequence-builtin",
        "aggregate",
        "cast",
        "castable",
        "instance-of",
        "treat-as",
        "trace",
        "error-as-value",
        "user-function",
        "recursive-function",
        "global-variable",
        "var-ref",
        "err-unbound-variable",
        "err-type-clash",
        "err-div-zero",
        "err-attr-after-content",
        "err-user-error",
        "err-bad-cast",
        "err-cardinality",
        "fn-doc",
        "fn-collection",
        "ft-search",
        "ft-score",
        "ft-kwic",
    )

    def __init__(
        self,
        rng: random.Random,
        max_fuel: int = 14,
        coverage: Optional[Dict[str, int]] = None,
    ):
        self.rng = rng
        self.max_fuel = max_fuel
        self.coverage: Dict[str, int] = coverage if coverage is not None else {}
        self._name_counter = 0
        # per-program state, reset by program():
        self._functions: List[Tuple[str, int]] = []
        self._trace_counter = 0

    # -- bookkeeping ----------------------------------------------------------

    def _hit(self, production: str) -> None:
        self.coverage[production] = self.coverage.get(production, 0) + 1

    def _fresh(self, prefix: str = "v") -> str:
        self._name_counter += 1
        return f"{prefix}{self._name_counter}"

    def _choice(self, weighted: List[Tuple[str, int]]) -> str:
        names = [name for name, _ in weighted]
        weights = [weight for _, weight in weighted]
        return self.rng.choices(names, weights=weights, k=1)[0]

    # -- program --------------------------------------------------------------

    def program(self) -> GenExpr:
        """A complete program: optional declarations plus a body expression.

        Top-level parts render one per line, so shrunk reproducers measure
        naturally in lines.
        """
        self._functions = []
        self._trace_counter = 0
        env: List[_Binding] = []
        parts: List[Part] = []
        for _ in range(self.rng.randrange(3)):
            parts.append(self._declaration(env))
            parts.append("\n")
        body = self._expr(env, self.max_fuel)
        parts.append(body)
        return GenExpr("program", parts, flavor=body.flavor)

    def collection_program(
        self,
        uris: Sequence[str],
        collections: Sequence[str],
        phrases: Sequence[str],
    ) -> GenExpr:
        """A program over a document store's corpus (the "collection" kind).

        Draws uris, collection prefixes, and search phrases from the
        supplied corpus so most programs hit real documents; a rare draw
        of a uri that is *not* in the corpus exercises the ``FODC0002``
        path, which every backend must classify identically (no
        allowlisting for collection divergences).
        """
        self._functions = []
        self._trace_counter = 0

        def lit(value: str) -> str:
            return '"' + value.replace('"', '""') + '"'

        def a_uri() -> str:
            if uris and self.rng.random() < 0.92:
                return self.rng.choice(list(uris))
            return f"missing/u{self.rng.randrange(0, 100)}.xml"

        def a_coll() -> str:
            return self.rng.choice(list(collections) or [""])

        def a_phrase() -> str:
            return self.rng.choice(list(phrases) or ["alpha"])

        production = self._choice(
            [
                ("fn-doc", 18),
                ("fn-collection", 22),
                ("ft-search", 30),
                ("ft-score", 14),
                ("ft-kwic", 16),
            ]
        )
        self._hit(production)
        if production == "fn-doc":
            uri = a_uri()
            shape = self.rng.random()
            if shape < 0.4:
                body = f"fn:doc({lit(uri)})"
            elif shape < 0.7:
                body = f"count(fn:doc({lit(uri)})//*)"
            else:
                body = (
                    f"if (fn:doc-available({lit(uri)})) "
                    f"then string-length(string(fn:doc({lit(uri)}))) else -1"
                )
            return GenExpr("fn-doc", [body], flavor="any")
        if production == "fn-collection":
            coll = a_coll()
            shape = self.rng.random()
            if shape < 0.35:
                body = f"count(fn:collection({lit(coll)}))"
            elif shape < 0.7:
                body = (
                    f"for $d in fn:collection({lit(coll)}) "
                    f"return element member {{ attribute uri {{ ft:uri($d) }} }}"
                )
            else:
                body = (
                    f"sum(for $d in fn:collection({lit(coll)}) "
                    f"return string-length(string($d)))"
                )
            return GenExpr("fn-collection", [body], flavor="any")
        if production == "ft-search":
            coll, phrase = a_coll(), a_phrase()
            shape = self.rng.random()
            if shape < 0.5:
                body = (
                    f"for $d in ft:search({lit(coll)}, {lit(phrase)}) "
                    f"return element hit {{ attribute uri {{ ft:uri($d) }}, "
                    f"attribute score {{ ft:score($d, {lit(phrase)}) }} }}"
                )
            elif shape < 0.75:
                body = f"count(ft:search({lit(coll)}, {lit(phrase)}))"
            else:
                body = (
                    f"for $d in ft:search({lit(phrase)}) "
                    f"return element hit {{ attribute uri {{ ft:uri($d) }} }}"
                )
            return GenExpr("ft-search", [body], flavor="any")
        if production == "ft-score":
            phrase = a_phrase()
            body = (
                f"for $d in fn:collection({lit(a_coll())}) "
                f"return ft:score($d, {lit(phrase)})"
            )
            return GenExpr("ft-score", [body], flavor="sequence")
        phrase = a_phrase()
        width = self.rng.choice((10, 20, 40))
        body = (
            f"for $d in ft:search({lit(a_coll())}, {lit(phrase)}) "
            f"return for $s in ft:kwic($d, {lit(phrase)}, {width}) "
            f"return element snippet {{ $s }}"
        )
        return GenExpr("ft-kwic", [body], flavor="any")

    def _declaration(self, env: List[_Binding]) -> GenExpr:
        roll = self.rng.random()
        if roll < 0.35:
            self._hit("global-variable")
            name = self._fresh("g")
            value = self._expr([], 4)
            env.append(_Binding(name, _SEQ, value.flavor))
            return GenExpr(
                "global-variable",
                [f"declare variable ${name} := ", value, ";"],
            )
        if roll < 0.75:
            self._hit("user-function")
            name = self._fresh("f")
            param = self._fresh("p")
            flavor = self.rng.choice(("numeric", "string"))
            body = self._expr([_Binding(param, _SEQ, flavor)], 5)
            self._functions.append((f"local:{name}", 1))
            return GenExpr(
                "user-function",
                [f"declare function local:{name}(${param}) {{ ", body, " };"],
            )
        self._hit("recursive-function")
        name = self._fresh("f")
        self._functions.append((f"local:{name}", 1))
        # the guarded countdown shape: recursion that always terminates.
        step = self.rng.choice(("$n - 1", "$n - 2"))
        yield_expr = self.rng.choice(("$n", "$n * $n", "concat('#', string($n))"))
        return GenExpr(
            "recursive-function",
            [
                f"declare function local:{name}($n) {{ "
                f"if ($n <= 0) then () else ({yield_expr}, "
                f"local:{name}({step})) }};"
            ],
        )

    # -- expression dispatch --------------------------------------------------

    def _expr(self, env: List[_Binding], fuel: int) -> GenExpr:
        """Any expression; occasionally one of the deliberate error idioms."""
        if fuel <= 0:
            return self._leaf(env)
        if self.rng.random() < 0.04:
            return self._error_idiom(env, fuel)
        flavor = self._choice(
            [
                ("numeric", 30),
                ("string", 16),
                ("boolean", 12),
                ("sequence", 22),
                ("node", 20),
            ]
        )
        if flavor == "numeric":
            return self._numeric(env, fuel)
        if flavor == "string":
            return self._string(env, fuel)
        if flavor == "boolean":
            return self._boolean(env, fuel)
        if flavor == "sequence":
            return self._sequence(env, fuel)
        return self._node(env, fuel)

    def _leaf(self, env: List[_Binding]) -> GenExpr:
        bound = [b for b in env if b.kind != _NODE]
        if bound and self.rng.random() < 0.4:
            self._hit("var-ref")
            binding = self.rng.choice(bound)
            return GenExpr(
                "var-ref", [f"${binding.name}"], flavor=binding.flavor
            )
        roll = self.rng.random()
        if roll < 0.5:
            self._hit("int")
            return atom(str(self.rng.randrange(-9, 100)), "numeric")
        if roll < 0.7:
            self._hit("string")
            return atom(f"'{self._word()}'", "string")
        if roll < 0.85:
            self._hit("decimal")
            return atom(
                f"{self.rng.randrange(0, 50)}.{self.rng.randrange(0, 10)}", "numeric"
            )
        self._hit("empty-sequence")
        return atom("()", "sequence")

    def _word(self) -> str:
        words = ("alpha", "beta", "gamma", "delta", "omega", "kappa", "zeta")
        return self.rng.choice(words)

    def _var_of(self, env: List[_Binding], flavors: Tuple[str, ...]) -> Optional[GenExpr]:
        suitable = [b for b in env if b.flavor in flavors and b.kind != _NODE]
        if not suitable:
            return None
        self._hit("var-ref")
        binding = self.rng.choice(suitable)
        return GenExpr("var-ref", [f"${binding.name}"], flavor=binding.flavor)

    # -- numeric --------------------------------------------------------------

    def _numeric(self, env: List[_Binding], fuel: int) -> GenExpr:
        if fuel <= 1:
            if self.rng.random() < 0.3:
                ref = self._var_of(env, ("numeric",))
                if ref is not None:
                    return ref
            self._hit("int")
            return atom(str(self.rng.randrange(-9, 100)), "numeric")
        production = self._choice(
            [
                ("int", 18),
                ("arith", 24),
                ("unary-minus", 5),
                ("numeric-builtin", 12),
                ("aggregate", 10),
                ("cast", 6),
                ("if", 6),
                ("var", 12),
                ("call", 6 if self._functions else 0),
                ("trace", 3),
            ]
        )
        if production == "var":
            ref = self._var_of(env, ("numeric", "any"))
            if ref is not None:
                return ref
            production = "int"
        if production == "int":
            self._hit("int")
            return atom(str(self.rng.randrange(-9, 100)), "numeric")
        if production == "arith":
            self._hit("arith")
            op = self.rng.choice((" + ", " - ", " * ", " idiv ", " mod ", " div "))
            left = self._numeric(env, fuel - 2)
            right = (
                atom(str(self.rng.randrange(1, 9)), "numeric")
                if op in (" idiv ", " mod ", " div ")
                else self._numeric(env, fuel - 2)
            )
            return GenExpr("arith", ["(", left, op, right, ")"], flavor="numeric")
        if production == "unary-minus":
            self._hit("unary-minus")
            return GenExpr(
                "unary-minus", ["(-", self._numeric(env, fuel - 1), ")"], flavor="numeric"
            )
        if production == "numeric-builtin":
            self._hit("numeric-builtin")
            fn = self.rng.choice(("abs", "floor", "ceiling", "round", "number"))
            return GenExpr(
                "numeric-builtin",
                [f"{fn}(", self._numeric(env, fuel - 2), ")"],
                flavor="numeric",
            )
        if production == "aggregate":
            self._hit("aggregate")
            fn = self.rng.choice(("count", "sum", "min", "max", "avg"))
            inner = (
                self._numeric_sequence(env, fuel - 2)
                if fn != "count"
                else self._sequence(env, fuel - 2)
            )
            return GenExpr("aggregate", [f"{fn}(", inner, ")"], flavor="numeric")
        if production == "cast":
            self._hit("cast")
            n = self.rng.randrange(0, 50)
            return GenExpr("cast", [f"xs:integer('{n}')"], flavor="numeric")
        if production == "call":
            name, _ = self.rng.choice(self._functions)
            return GenExpr(
                "call",
                [f"{name}(", self._numeric(env, fuel - 2), ")"],
                flavor="any",
            )
        if production == "trace":
            return self._trace(self._numeric(env, fuel - 1))
        self._hit("if")
        return GenExpr(
            "if",
            [
                "(if (",
                self._boolean(env, fuel - 2),
                ") then ",
                self._numeric(env, fuel - 2),
                " else ",
                self._numeric(env, fuel - 2),
                ")",
            ],
            flavor="numeric",
        )

    def _numeric_sequence(self, env: List[_Binding], fuel: int) -> GenExpr:
        roll = self.rng.random()
        if roll < 0.4:
            self._hit("range")
            lo = self.rng.randrange(0, 6)
            return atom(f"({lo} to {lo + self.rng.randrange(0, 8)})", "sequence")
        if roll < 0.8:
            self._hit("sequence")
            items: List[Part] = ["("]
            for index in range(self.rng.randrange(1, 4)):
                if index:
                    items.append(", ")
                items.append(self._numeric(env, max(0, fuel - 2)))
            items.append(")")
            return GenExpr("sequence", items, flavor="sequence")
        return self._numeric(env, fuel)

    # -- strings --------------------------------------------------------------

    def _string(self, env: List[_Binding], fuel: int) -> GenExpr:
        if fuel <= 1:
            self._hit("string")
            return atom(f"'{self._word()}'", "string")
        production = self._choice(
            [
                ("literal", 20),
                ("string-builtin", 30),
                ("var", 10),
                ("if", 5),
                ("trace", 2),
            ]
        )
        if production == "var":
            ref = self._var_of(env, ("string",))
            if ref is not None:
                return ref
            production = "literal"
        if production == "literal":
            self._hit("string")
            return atom(f"'{self._word()}'", "string")
        if production == "trace":
            return self._trace(self._string(env, fuel - 1))
        if production == "if":
            self._hit("if")
            return GenExpr(
                "if",
                [
                    "(if (",
                    self._boolean(env, fuel - 2),
                    ") then ",
                    self._string(env, fuel - 2),
                    " else ",
                    self._string(env, fuel - 2),
                    ")",
                ],
                flavor="string",
            )
        self._hit("string-builtin")
        fn = self.rng.choice(
            ("concat2", "upper", "lower", "substr", "join", "stringof", "translate")
        )
        if fn == "concat2":
            return GenExpr(
                "string-builtin",
                ["concat(", self._string(env, fuel - 2), ", ", self._string(env, fuel - 2), ")"],
                flavor="string",
            )
        if fn in ("upper", "lower"):
            name = "upper-case" if fn == "upper" else "lower-case"
            return GenExpr(
                "string-builtin",
                [f"{name}(", self._string(env, fuel - 2), ")"],
                flavor="string",
            )
        if fn == "substr":
            return GenExpr(
                "string-builtin",
                [
                    "substring(",
                    self._string(env, fuel - 2),
                    f", {self.rng.randrange(1, 4)}, {self.rng.randrange(1, 5)})",
                ],
                flavor="string",
            )
        if fn == "join":
            return GenExpr(
                "string-builtin",
                [
                    "string-join(for $s in ",
                    self._numeric_sequence(env, fuel - 3),
                    " return string($s), '-')",
                ],
                flavor="string",
            )
        if fn == "translate":
            return GenExpr(
                "string-builtin",
                ["translate(", self._string(env, fuel - 2), ", 'abg', 'xyz')"],
                flavor="string",
            )
        return GenExpr(
            "string-builtin", ["string(", self._expr(env, fuel - 2), ")"], flavor="string"
        )

    # -- booleans -------------------------------------------------------------

    def _boolean(self, env: List[_Binding], fuel: int) -> GenExpr:
        if fuel <= 1:
            return atom(self.rng.choice(("true()", "false()")), "boolean")
        production = self._choice(
            [
                ("general-compare", 22),
                ("value-compare", 16),
                ("node-compare", 5),
                ("logic", 12),
                ("not", 6),
                ("quantified", 8),
                ("exists", 8),
                ("castable", 5),
                ("instance-of", 5),
                ("literal", 6),
            ]
        )
        if production == "literal":
            return atom(self.rng.choice(("true()", "false()")), "boolean")
        if production == "general-compare":
            self._hit("general-compare")
            op = self.rng.choice((" = ", " != ", " < ", " <= ", " > ", " >= "))
            kind = self.rng.random()
            if kind < 0.5:
                left = self._numeric(env, fuel - 2)
                right = self._numeric_sequence(env, fuel - 2)
            else:
                left = self._numeric_sequence(env, fuel - 2)
                right = self._numeric(env, fuel - 2)
            return GenExpr("general-compare", ["(", left, op, right, ")"], flavor="boolean")
        if production == "value-compare":
            self._hit("value-compare")
            if self.rng.random() < 0.5:
                op = self.rng.choice((" eq ", " ne ", " lt ", " le ", " gt ", " ge "))
                left = self._numeric(env, fuel - 2)
                right = self._numeric(env, fuel - 2)
            else:
                op = self.rng.choice((" eq ", " ne ", " lt ", " ge "))
                left = self._string(env, fuel - 2)
                right = self._string(env, fuel - 2)
            return GenExpr("value-compare", ["(", left, op, right, ")"], flavor="boolean")
        if production == "node-compare":
            self._hit("node-compare")
            name = self._fresh("n")
            op = self.rng.choice((" is ", " << ", " >> "))
            second = self.rng.choice((f"${name}", "<q/>"))
            return GenExpr(
                "node-compare",
                [f"(let ${name} := <p/> return ${name}{op}{second})"],
                flavor="boolean",
            )
        if production == "logic":
            self._hit("logic")
            op = self.rng.choice((" and ", " or "))
            return GenExpr(
                "logic",
                ["(", self._boolean(env, fuel - 2), op, self._boolean(env, fuel - 2), ")"],
                flavor="boolean",
            )
        if production == "not":
            self._hit("not")
            return GenExpr(
                "not", ["not(", self._boolean(env, fuel - 2), ")"], flavor="boolean"
            )
        if production == "quantified":
            self._hit("quantified")
            word = self.rng.choice(("some", "every"))
            name = self._fresh("q")
            inner_env = env + [_Binding(name, _ITEM, "numeric")]
            return GenExpr(
                "quantified",
                [
                    f"({word} ${name} in ",
                    self._numeric_sequence(env, fuel - 2),
                    " satisfies ",
                    self._boolean(inner_env, fuel - 3),
                    ")",
                ],
                flavor="boolean",
            )
        if production == "exists":
            self._hit("sequence-builtin")
            fn = self.rng.choice(("exists", "empty"))
            return GenExpr(
                "sequence-builtin",
                [f"{fn}(", self._sequence(env, fuel - 2), ")"],
                flavor="boolean",
            )
        if production == "castable":
            self._hit("castable")
            target = self.rng.choice(("xs:integer", "xs:decimal", "xs:string"))
            return GenExpr(
                "castable",
                ["(", self._leaf(env), f" castable as {target})"],
                flavor="boolean",
            )
        self._hit("instance-of")
        target = self.rng.choice(
            ("xs:integer", "xs:integer+", "xs:string", "element()", "item()*")
        )
        return GenExpr(
            "instance-of",
            ["(", self._expr(env, fuel - 2), f" instance of {target})"],
            flavor="boolean",
        )

    # -- sequences (incl. FLWOR, predicates, typeswitch, try/catch) -----------

    def _sequence(self, env: List[_Binding], fuel: int) -> GenExpr:
        if fuel <= 1:
            self._hit("range")
            lo = self.rng.randrange(0, 5)
            return atom(f"({lo} to {lo + self.rng.randrange(0, 6)})", "sequence")
        production = self._choice(
            [
                ("sequence", 14),
                ("range", 8),
                ("flwor", 22),
                ("let", 10),
                ("predicate", 12),
                ("positional-predicate", 6),
                ("typeswitch", 6),
                ("try-catch", 7),
                ("sequence-builtin", 10),
                ("path", 10),
                ("treat-as", 3),
            ]
        )
        if production == "sequence":
            self._hit("sequence")
            items: List[Part] = ["("]
            for index in range(self.rng.randrange(2, 5)):
                if index:
                    items.append(", ")
                items.append(self._expr(env, fuel - 2))
            items.append(")")
            return GenExpr("sequence", items, flavor="sequence")
        if production == "range":
            self._hit("range")
            lo = self.rng.randrange(0, 5)
            return atom(f"({lo} to {lo + self.rng.randrange(0, 8)})", "sequence")
        if production == "flwor":
            return self._flwor(env, fuel)
        if production == "let":
            self._hit("let")
            name = self._fresh("l")
            value = self._expr(env, fuel - 2)
            body_env = env + [_Binding(name, _SEQ, value.flavor)]
            return GenExpr(
                "let",
                [f"(let ${name} := ", value, " return ", self._expr(body_env, fuel - 2), ")"],
                flavor="sequence",
            )
        if production == "predicate":
            self._hit("predicate")
            base = self._numeric_sequence(env, fuel - 2)
            predicate = self._focus_predicate(env, fuel - 3)
            return GenExpr("predicate", ["(", base, ")[", predicate, "]"], flavor="sequence")
        if production == "positional-predicate":
            self._hit("positional-predicate")
            base = self._numeric_sequence(env, fuel - 2)
            form = self.rng.choice(
                (
                    f"[{self.rng.randrange(1, 5)}]",
                    "[last()]",
                    f"[position() > {self.rng.randrange(0, 4)}]",
                    f"[position() < {self.rng.randrange(2, 6)}]",
                )
            )
            return GenExpr(
                "positional-predicate", ["(", base, ")", form], flavor="sequence"
            )
        if production == "typeswitch":
            self._hit("typeswitch")
            name = self._fresh("t")
            operand = self._expr(env, fuel - 3)
            case_env = env + [_Binding(name, _SEQ, "any")]
            case_type = self.rng.choice(("element()", "xs:integer", "xs:string"))
            return GenExpr(
                "typeswitch",
                [
                    "(typeswitch (",
                    operand,
                    f") case ${name} as {case_type} return ",
                    self._expr(case_env, fuel - 3),
                    " default return ",
                    self._expr(env, fuel - 3),
                    ")",
                ],
                flavor="sequence",
            )
        if production == "try-catch":
            self._hit("try-catch")
            body = self._expr(env, fuel - 2)
            if self.rng.random() < 0.5:
                name = self._fresh("e")
                catch_env = env + [_Binding(name, _SEQ, "node")]
                handler: List[Part] = [
                    f" }} catch ${name} {{ ",
                    self._expr(catch_env, fuel - 3),
                    " })",
                ]
            else:
                handler = [" } catch { ", self._expr(env, fuel - 3), " })"]
            return GenExpr(
                "try-catch", ["(try { ", body] + handler, flavor="sequence"
            )
        if production == "sequence-builtin":
            self._hit("sequence-builtin")
            fn = self.rng.choice(
                ("reverse", "distinct-values", "subsequence", "insert-before", "remove", "data")
            )
            inner = self._numeric_sequence(env, fuel - 2)
            if fn == "subsequence":
                return GenExpr(
                    "sequence-builtin",
                    [
                        "subsequence(",
                        inner,
                        f", {self.rng.randrange(1, 4)}, {self.rng.randrange(1, 5)})",
                    ],
                    flavor="sequence",
                )
            if fn == "insert-before":
                return GenExpr(
                    "sequence-builtin",
                    [
                        "insert-before(",
                        inner,
                        f", {self.rng.randrange(1, 4)}, ",
                        self._numeric(env, fuel - 3),
                        ")",
                    ],
                    flavor="sequence",
                )
            if fn == "remove":
                return GenExpr(
                    "sequence-builtin",
                    ["remove(", inner, f", {self.rng.randrange(1, 5)})"],
                    flavor="sequence",
                )
            return GenExpr("sequence-builtin", [f"{fn}(", inner, ")"], flavor="sequence")
        if production == "treat-as":
            self._hit("treat-as")
            return GenExpr(
                "treat-as",
                ["(", self._numeric(env, fuel - 2), " treat as xs:integer)"],
                flavor="numeric",
            )
        return self._path(env, fuel)

    def _focus_predicate(self, env: List[_Binding], fuel: int) -> GenExpr:
        """A predicate over the context item ``.`` (numeric focus)."""
        form = self.rng.choice(
            (
                f". mod {self.rng.randrange(2, 5)} = {self.rng.randrange(0, 3)}",
                f". >= {self.rng.randrange(0, 9)}",
                f". * 2 <= {self.rng.randrange(0, 18)}",
                f"not(. = {self.rng.randrange(0, 9)})",
            )
        )
        return atom(form, "boolean")

    def _flwor(self, env: List[_Binding], fuel: int) -> GenExpr:
        self._hit("flwor")
        name = self._fresh("i")
        parts: List[Part] = []
        source = self._numeric_sequence(env, fuel - 2)
        inner_env = env + [_Binding(name, _ITEM, "numeric")]
        use_at = self.rng.random() < 0.25
        if use_at:
            self._hit("flwor-at")
            pos = self._fresh("a")
            parts += [f"(for ${name} at ${pos} in ", source]
            inner_env.append(_Binding(pos, _ITEM, "numeric"))
        else:
            parts += [f"(for ${name} in ", source]
        if self.rng.random() < 0.3:
            let_name = self._fresh("l")
            parts += [f" let ${let_name} := ", self._expr(inner_env, fuel - 3)]
            inner_env.append(_Binding(let_name, _SEQ, "any"))
        if self.rng.random() < 0.4:
            self._hit("flwor-where")
            parts += [" where ", self._boolean(inner_env, fuel - 3)]
        if self.rng.random() < 0.3:
            self._hit("flwor-order")
            direction = self.rng.choice(("", " descending", " ascending"))
            parts.append(f" order by ${name}{direction}")
        parts += [" return ", self._expr(inner_env, fuel - 3), ")"]
        return GenExpr("flwor", parts, flavor="sequence")

    # -- nodes, constructors, paths -------------------------------------------

    def _node(self, env: List[_Binding], fuel: int) -> GenExpr:
        if fuel <= 1:
            return GenExpr("direct-element", ["<leaf/>"], flavor="node", creates_nodes=True)
        production = self._choice(
            [
                ("direct-element", 26),
                ("computed-element", 10),
                ("computed-attribute", 5),
                ("duplicate-attributes", 7),
                ("text-constructor", 5),
                ("comment-constructor", 3),
                ("document-constructor", 5),
                ("enclosed-multi", 12),
                ("path", 18),
            ]
        )
        if production == "direct-element":
            self._hit("direct-element")
            tag = self.rng.choice(("a", "b", "item", "rec"))
            parts: List[Part] = [f"<{tag}"]
            if self.rng.random() < 0.4:
                parts.append(f" k='{self.rng.randrange(0, 9)}'")
            if self.rng.random() < 0.25:
                parts += [" v='{", self._numeric(env, fuel - 3), "}'"]
            parts.append(">")
            for _ in range(self.rng.randrange(0, 3)):
                roll = self.rng.random()
                if roll < 0.35:
                    parts.append(self._word())
                elif roll < 0.75:
                    parts += ["{ ", self._expr(env, fuel - 3), " }"]
                else:
                    parts.append(self._node(env, fuel - 3))
            parts.append(f"</{tag}>")
            return GenExpr("direct-element", parts, flavor="node", creates_nodes=True)
        if production == "computed-element":
            self._hit("computed-element")
            tag = self.rng.choice(("x", "y", "gen"))
            return GenExpr(
                "computed-element",
                [f"element {tag} {{ ", self._expr(env, fuel - 3), " }"],
                flavor="node",
                creates_nodes=True,
            )
        if production == "computed-attribute":
            self._hit("computed-attribute")
            # legal on its own; becomes the paper's XQTY0024 trap when the
            # enclosing constructor already emitted content.
            return GenExpr(
                "computed-attribute",
                [
                    f"(let $at := attribute k{self.rng.randrange(0, 4)} {{",
                    self._numeric(env, fuel - 3),
                    "} return <holder> {$at} </holder>)",
                ],
                flavor="node",
                creates_nodes=True,
            )
        if production == "duplicate-attributes":
            self._hit("duplicate-attributes")
            name = self.rng.choice(("dup", "k"))
            form = self.rng.random()
            if form < 0.5:
                return GenExpr(
                    "duplicate-attributes",
                    [
                        f"(let $a := attribute {name} {{",
                        self._numeric(env, fuel - 3),
                        f"}} let $b := attribute {name} {{",
                        self._numeric(env, fuel - 3),
                        "} return <el> {$a}{$b} </el>)",
                    ],
                    flavor="node",
                    creates_nodes=True,
                )
            return GenExpr(
                "duplicate-attributes",
                [
                    f"<el {name}='1' {name}2='2'>{{attribute {name} {{",
                    self._numeric(env, fuel - 3),
                    "} }</el>",
                ],
                flavor="node",
                creates_nodes=True,
            )
        if production == "text-constructor":
            self._hit("text-constructor")
            return GenExpr(
                "text-constructor",
                ["text { ", self._expr(env, fuel - 3), " }"],
                flavor="node",
                creates_nodes=True,
            )
        if production == "comment-constructor":
            self._hit("comment-constructor")
            return GenExpr(
                "comment-constructor",
                [f"comment {{'{self._word()}'}}"],
                flavor="node",
                creates_nodes=True,
            )
        if production == "document-constructor":
            self._hit("document-constructor")
            return GenExpr(
                "document-constructor",
                ["document {<r>", self._node(env, fuel - 3), "</r>}"],
                flavor="node",
                creates_nodes=True,
            )
        if production == "enclosed-multi":
            # the e01 quirk shape: adjacent enclosed expressions whose
            # boundary decides where spaces land in the text content.
            self._hit("enclosed-multi")
            return GenExpr(
                "enclosed-multi",
                [
                    "<el>{ ",
                    self._expr(env, fuel - 3),
                    " }{ ",
                    self._expr(env, fuel - 3),
                    " }</el>",
                ],
                flavor="node",
                creates_nodes=True,
            )
        return self._path(env, fuel)

    def _tree_literal(self, fuel: int) -> str:
        """A small deterministic XML tree for paths to walk."""
        count = self.rng.randrange(2, 5)
        rows = []
        for index in range(count):
            tag = self.rng.choice(("a", "b"))
            attr = f" x='{self.rng.randrange(0, 4)}'" if self.rng.random() < 0.5 else ""
            if self.rng.random() < 0.4:
                rows.append(f"<{tag}{attr}><c>{index}</c></{tag}>")
            else:
                rows.append(f"<{tag}{attr}>{index}</{tag}>")
        return f"<r>{''.join(rows)}</r>"

    def _path(self, env: List[_Binding], fuel: int) -> GenExpr:
        tree = self._tree_literal(fuel)
        production = self._choice(
            [
                ("path-child", 24),
                ("path-descendant", 18),
                ("path-attribute", 14),
                ("path-axis", 18),
                ("path-kind-test", 14),
            ]
        )
        self._hit(production)
        tag = self.rng.choice(("a", "b"))
        if production == "path-child":
            steps = self.rng.choice(
                (f"/{tag}", f"/{tag}/c", f"/{tag}/text()", f"/{tag}[c]")
            )
        elif production == "path-descendant":
            steps = self.rng.choice(("//c", f"//{tag}", "//c/text()", f"//{tag}[@x]"))
        elif production == "path-attribute":
            steps = self.rng.choice((f"/{tag}/@x", "//@x", f"/{tag}[@x='1']"))
        elif production == "path-axis":
            steps = self.rng.choice(
                (
                    f"/{tag}/following-sibling::*",
                    f"/{tag}/preceding-sibling::*",
                    "//c/parent::*",
                    "//c/ancestor::*",
                    f"/{tag}[last()]",
                )
            )
        else:
            steps = self.rng.choice(("/node()", "/*", "//node()", "/text()"))
        wrap = self.rng.random()
        expr = GenExpr(
            "path",
            [f"({tree}){steps}"],
            flavor="sequence",
            creates_nodes=True,
        )
        if wrap < 0.3:
            self._hit("aggregate")
            return GenExpr("aggregate", ["count(", expr, ")"], flavor="numeric")
        if wrap < 0.45:
            self._hit("string-builtin")
            return GenExpr(
                "string-builtin",
                ["string-join(for $p in ", expr, " return string($p), '|')"],
                flavor="string",
            )
        return expr

    # -- trace and error idioms ----------------------------------------------

    def _trace(self, value: GenExpr) -> GenExpr:
        self._hit("trace")
        self._trace_counter += 1
        return GenExpr(
            "trace",
            [f"trace('t{self._trace_counter}', ", value, ")"],
            flavor=value.flavor,
            pure=False,
        )

    def _error_idiom(self, env: List[_Binding], fuel: int) -> GenExpr:
        production = self._choice(
            [
                ("err-unbound-variable", 8),
                ("err-type-clash", 15),
                ("err-div-zero", 10),
                ("err-attr-after-content", 10),
                ("err-user-error", 10),
                ("err-bad-cast", 12),
                ("err-cardinality", 10),
                ("error-as-value", 35),
            ]
        )
        self._hit(production)
        if production == "err-unbound-variable":
            return GenExpr("err-unbound-variable", ["$unbound"], flavor="any", pure=False)
        if production == "err-type-clash":
            form = self.rng.choice(
                ("(1 + <a>x</a>)", "(-'text')", "(('a','b') is <x/>)", "(1/child::a)")
            )
            return GenExpr("err-type-clash", [form], flavor="any", pure=False)
        if production == "err-div-zero":
            return GenExpr(
                "err-div-zero",
                ["(", self._numeric(env, fuel - 2), " div 0)"],
                flavor="numeric",
                pure=False,
            )
        if production == "err-attr-after-content":
            return GenExpr(
                "err-attr-after-content",
                ["(let $a := attribute late {1} return <el>x{$a}</el>)"],
                flavor="node",
                pure=False,
            )
        if production == "err-user-error":
            return GenExpr(
                "err-user-error",
                [f"error('{self._word().upper()}')"],
                flavor="any",
                pure=False,
            )
        if production == "err-bad-cast":
            form = self.rng.choice(
                ("xs:integer('nope')", "(() cast as xs:integer)", "(5 treat as xs:string)")
            )
            return GenExpr("err-bad-cast", [form], flavor="any", pure=False)
        if production == "err-cardinality":
            form = self.rng.choice(
                ("((1,2) eq 3)", "((1, 2) to 3)", "exactly-one((1,2))", "zero-or-one((1,2,3))")
            )
            return GenExpr("err-cardinality", [form], flavor="any", pure=False)
        # error-as-value: the paper's convention of *returning* an <error>
        # element instead of raising, then testing for it downstream.
        message = self._word()
        return GenExpr(
            "error-as-value",
            [
                "(let $r := (if (",
                self._boolean(env, fuel - 2),
                f") then <error><message>{message}</message></error> else ",
                self._numeric(env, fuel - 2),
                ") return (if ($r instance of element(error)) "
                "then string($r/message) else $r))",
            ],
            flavor="any",
            creates_nodes=True,
        )
