"""Metamorphic rewrites: two renderings of one meaning.

Each rule builds a *pair* of source programs from the same random
ingredients, constructed so XQuery semantics guarantee they evaluate
identically; the oracle then runs both renderings under both backends.
The rules are deliberately conservative — each one's preconditions are
enforced by construction, not checked after the fact:

``predicate-where``
    ``for $v in (S)[P(.)] return B``  ≡  ``for $v in S where P($v) return B``
    whenever ``P`` is position-free (no ``position()``/``last()``) and
    ``S`` is a sequence of atomics (so the predicate's context item is
    the same value the range variable binds).

``let-inline``
    ``let $v := E return B($v)``  ≡  ``B((E))`` whenever ``E`` is pure
    and constructor-free — inlining duplicates evaluation, which is only
    unobservable when ``E`` has no side effects (``fn:trace``,
    ``fn:error``) and creates no nodes (identity is observable via
    ``is``/``<<``).

``reassociate``
    ``(($a, $b), $c)``  ≡  ``($a, ($b, $c))`` — sequence construction
    flattens, so grouping is unobservable *within a single enclosed
    expression*.  (Across two enclosed expressions it is famously NOT:
    that boundary is the paper's E1 quirk table, which the plain pair
    oracle covers.)
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Tuple

from .generator import ProgramGenerator

METAMORPHIC_RULES = ("predicate-where", "let-inline", "reassociate")


def metamorphic_pair(
    rng: random.Random, generator: ProgramGenerator
) -> Tuple[str, str, str]:
    """Returns ``(original_source, rewritten_source, rule_name)``."""
    rule = rng.choice(METAMORPHIC_RULES)
    return _BUILDERS[rule](rng, generator) + (rule,)


def _pure_numeric(rng: random.Random, generator: ProgramGenerator, fuel: int) -> str:
    """A pure, constructor-free numeric expression."""
    for _ in range(8):
        expr = generator._numeric([], fuel)
        if expr.pure and not expr.creates_nodes:
            return expr.render()
    return str(rng.randrange(0, 50))


def _predicate_where(rng: random.Random, generator: ProgramGenerator) -> Tuple[str, str]:
    lo = rng.randrange(0, 5)
    hi = lo + rng.randrange(2, 9)
    items = ", ".join(
        str(rng.randrange(-5, 20)) for _ in range(rng.randrange(3, 7))
    )
    source_seq = rng.choice((f"({lo} to {hi})", f"({items})"))
    predicate = rng.choice(
        (
            f"{{}} mod {rng.randrange(2, 5)} = {rng.randrange(0, 3)}",
            f"{{}} >= {rng.randrange(0, 9)}",
            f"{{}} * 2 <= {rng.randrange(0, 20)}",
            f"not({{}} = {rng.randrange(0, 9)})",
        )
    )
    body = rng.choice(("$v", "$v + 100", "$v * $v", "concat('#', string($v))"))
    original = (
        f"for $v in {source_seq}[{predicate.format('.')}] return {body}"
    )
    rewritten = (
        f"for $v in {source_seq} where {predicate.format('$v')} return {body}"
    )
    return original, rewritten


def _let_inline(rng: random.Random, generator: ProgramGenerator) -> Tuple[str, str]:
    value = _pure_numeric(rng, generator, fuel=5)
    body = rng.choice(
        (
            "{v} + {v}",
            "({v}, {v})",
            "sum(({v}, 1, {v}))",
            "(if ({v} >= 0) then {v} else -{v})",
            "string({v})",
        )
    )
    original = "let $x := " + value + " return " + body.format(v="$x")
    rewritten = body.format(v=f"({value})")
    return original, rewritten


def _reassociate(rng: random.Random, generator: ProgramGenerator) -> Tuple[str, str]:
    a = _pure_numeric(rng, generator, 3)
    b = _pure_numeric(rng, generator, 3)
    c = rng.choice((f"'{generator._word()}'", _pure_numeric(rng, generator, 3)))
    left = f"(({a}, {b}), {c})"
    right = f"({a}, ({b}, {c}))"
    wrapper = rng.choice(
        (
            "count({s})",
            "string-join(for $i in {s} return string($i), '-')",
            "<el>{{{s}}}</el>",
            "reverse({s})",
        )
    )
    return wrapper.format(s=left), wrapper.format(s=right)


_BUILDERS: Dict[str, Callable] = {
    "predicate-where": _predicate_where,
    "let-inline": _let_inline,
    "reassociate": _reassociate,
}
