"""Random AWB models and random calculus queries over them.

The models are structurally honest to the paper's engagements — people,
programs, servers, documents tied together by ``has``/``uses``/``runs``/
``likes`` — but the generator deliberately exercises the permissive
corners the metamodel chapter calls out: ad-hoc properties on individual
nodes, unknown node and relation types (allowed, with a meek warning),
duplicate labels (so sort tie-breaking is observable), and properties of
every scalar type the export format distinguishes.
"""

from __future__ import annotations

import random
from typing import List

from ..awb import Model, load_metamodel
from ..querycalc.ast import Collect, FilterProperty, FilterType, Follow, Query, Start

#: node types drawn for random nodes (plus a rare unknown type).
NODE_TYPES = [
    "User",
    "Superuser",
    "Person",
    "Program",
    "Server",
    "Subsystem",
    "Document",
    "Computer",
]

RELATIONS = ["has", "uses", "runs", "likes", "favors"]

_LABELS = ["ant", "bee", "cat", "doe", "elk", "fox", "gnu", "hen"]


def random_model(seed: int, size: int = 24, html_properties: bool = False) -> Model:
    """A seeded random model with ``size`` nodes plus a SystemBeingDesigned.

    ``html_properties`` opts into html-typed property values (the export
    schema-drift quirk): the native calculus backend sees the raw markup
    string while the XQuery backend sees only the text content, so filters
    over them legitimately diverge — see the oracle allowlist.
    """
    rng = random.Random(seed)
    model = Model(load_metamodel("it-architecture"), name=f"fuzz-model-{seed}")
    sbd = model.create_node("SystemBeingDesigned", label="SUD")
    nodes = [sbd]
    for index in range(size):
        if rng.random() < 0.06:
            type_name = "Widget"  # unknown type: allowed, warns
        else:
            type_name = rng.choice(NODE_TYPES)
        # duplicate labels are deliberate: sorting must tie-break by id.
        label = rng.choice(_LABELS)
        node = model.create_node(type_name, label=label)
        if rng.random() < 0.5:
            node.set("rank", rng.randrange(0, 40))
        if rng.random() < 0.3:
            node.set("weight", rng.randrange(1, 80) / 4.0)
        if rng.random() < 0.3:
            node.set("active", rng.random() < 0.5)
        if rng.random() < 0.4:
            node.set("tag", rng.choice(_LABELS) + str(rng.randrange(0, 5)))
        if type_name == "Document" and rng.random() < 0.7:
            node.set("version", f"{rng.randrange(0, 3)}.{rng.randrange(0, 10)}")
        if type_name in ("User", "Superuser", "Person") and rng.random() < 0.6:
            node.set("birthYear", 1950 + rng.randrange(0, 50))
        if html_properties and rng.random() < 0.3:
            node.set("description", f"<p>{rng.choice(_LABELS)}</p>")
        nodes.append(node)
    relation_count = int(size * 1.5)
    for _ in range(relation_count):
        source = rng.choice(nodes)
        target = rng.choice(nodes)
        name = "blesses" if rng.random() < 0.05 else rng.choice(RELATIONS)
        model.connect(source, name, target)
    return model


def random_calculus_query(rng: random.Random, model: Model) -> Query:
    """A seeded random calculus query that is valid against ``model``."""
    roll = rng.random()
    if roll < 0.15:
        start = Start(all_nodes=True)
    elif roll < 0.3:
        start = Start(node_id=rng.choice(list(model.nodes)))
    else:
        start = Start(type=rng.choice(NODE_TYPES + ["Element", "System"]))
    steps: List[object] = []
    for _ in range(rng.randrange(0, 3)):
        kind = rng.random()
        if kind < 0.55:
            steps.append(
                Follow(
                    relation=rng.choice(RELATIONS + ["blesses"]),
                    direction=rng.choice(("forward", "backward")),
                    target_type=(
                        rng.choice(NODE_TYPES) if rng.random() < 0.3 else None
                    ),
                    include_subrelations=rng.random() < 0.8,
                )
            )
        elif kind < 0.75:
            steps.append(FilterType(type=rng.choice(NODE_TYPES + ["Element"])))
        else:
            steps.append(_random_property_filter(rng, model))
    collect = Collect(
        sort_by=rng.choice((None, "label", "rank", "tag")),
        descending=rng.random() < 0.3,
        distinct=rng.random() < 0.8,
    )
    trace = f"q{rng.randrange(0, 1000)}" if rng.random() < 0.25 else None
    return Query(start=start, steps=steps, collect=collect, trace=trace)


def _random_property_filter(rng: random.Random, model: Model) -> FilterProperty:
    name = rng.choice(("rank", "weight", "active", "tag", "label", "version", "birthYear"))
    op = rng.choice(("eq", "ne", "lt", "le", "gt", "ge", "contains"))
    value = _sample_value(rng, model, name)
    return FilterProperty(name=name, op=op, value=value)


def _sample_value(rng: random.Random, model: Model, name: str) -> str:
    """Mostly values that actually occur, so filters sometimes match."""
    present: List[str] = []
    for node in model.nodes.values():
        value = node.get(name)
        if value is None:
            continue
        present.append("true" if value is True else "false" if value is False else str(value))
    if present and rng.random() < 0.7:
        return rng.choice(present)
    if name in ("rank", "birthYear"):
        return str(rng.randrange(0, 2000))
    if name == "weight":
        return str(rng.randrange(0, 80) / 4.0)
    if name == "active":
        return rng.choice(("true", "false", "1"))
    return rng.choice(_LABELS)


def random_update_script(rng: random.Random, model: Model) -> str:
    """A random update-language script that passes the static checker.

    Targets are drawn from the live model (and from ids already deleted
    earlier in the same script are excluded, so UPD008 never fires);
    property literals match the metamodel's declared types (label/tag as
    strings, rank/birthYear as integers), so UPD003 never fires either.
    Unknown-type warnings and no-op infos are allowed — they are
    advisory, exactly like the model API's own warnings.
    """
    statements: List[str] = []
    dead: set = set()

    def live_nodes() -> List[str]:
        return [node_id for node_id in model.nodes if node_id not in dead]

    def live_relations() -> List[str]:
        return [rel_id for rel_id in model.relations if rel_id not in dead]

    for _ in range(rng.randrange(1, 4)):
        nodes = live_nodes()
        roll = rng.random()
        if roll < 0.25:
            type_name = rng.choice(NODE_TYPES)
            if rng.random() < 0.7:
                props = (
                    f' with (label "{rng.choice(_LABELS)}",'
                    f" rank {rng.randrange(0, 40)})"
                )
            else:
                props = ""
            statements.append(f"insert node {type_name}{props}")
        elif roll < 0.40 and len(nodes) >= 2:
            source, target = rng.choice(nodes), rng.choice(nodes)
            statements.append(
                f"insert relation {rng.choice(RELATIONS)} from {source} to {target}"
            )
        elif roll < 0.52 and nodes:
            victim = rng.choice(nodes)
            dead.add(victim)
            node = model.nodes[victim]
            for relation in model.outgoing(node) + model.incoming(node):
                dead.add(relation.id)  # cascades die with the node
            statements.append(f"delete node {victim}")
        elif roll < 0.62 and live_relations():
            victim = rng.choice(live_relations())
            dead.add(victim)
            statements.append(f"delete relation {victim}")
        elif roll < 0.80 and nodes:
            target = rng.choice(nodes)
            name, literal = rng.choice(
                [
                    ("label", f'"{rng.choice(_LABELS)}"'),
                    ("rank", str(rng.randrange(0, 40))),
                    ("tag", f'"{rng.choice(_LABELS)}{rng.randrange(0, 5)}"'),
                    ("birthYear", str(1950 + rng.randrange(0, 50))),
                ]
            )
            statements.append(f"replace value of {target}.{name} with {literal}")
        elif roll < 0.90 and nodes:
            statements.append(
                f"delete property {rng.choice(('tag', 'rank'))} of {rng.choice(nodes)}"
            )
        elif nodes:
            statements.append(
                f"rename node {rng.choice(nodes)} as {rng.choice(NODE_TYPES)}"
            )
    if not statements:
        statements.append(f"insert node {rng.choice(NODE_TYPES)}")
    return "\n".join(statement + ";" for statement in statements)


#: full-text vocabulary for generated documents.  Deliberately includes
#: multi-byte words (combining-free but non-ASCII) so tokenization, KWIC
#: offsets, and the index round-trip are exercised outside ASCII.
FT_WORDS = [
    "alpha", "beta", "gamma", "delta", "omega", "kappa", "zeta",
    "čaj", "füße", "京都", "naïve", "señor",
]

#: collection prefixes the generated store writes under.
FT_COLLECTIONS = ["docs/", "notes/", "models/"]


def random_document_store(seed: int, docs: int = 12):
    """A seeded :class:`repro.collections.DocumentStore` for fuzzing.

    Mostly plain-text documents over :data:`FT_WORDS` spread across
    ``docs/`` and ``notes/``; a few entries under ``models/`` are live AWB
    models wired through :meth:`DocumentStore.put_model`, so incremental
    update scripts (:func:`random_update_script`) have real targets and
    the index-maintenance path through the exporter gets exercised.
    """
    from ..collections import DocumentStore

    rng = random.Random(seed)
    store = DocumentStore()
    for index in range(docs):
        if index % 5 == 4:
            model = random_model(seed * 1000 + index, size=8)
            store.put_model(f"models/m{index}.xml", model)
            continue
        prefix = "docs/" if index % 2 == 0 else "notes/"
        paragraphs = []
        for _ in range(rng.randrange(1, 4)):
            words = " ".join(rng.choice(FT_WORDS) for _ in range(rng.randrange(3, 12)))
            paragraphs.append(f"<p>{words}</p>")
        store.put_text(f"{prefix}d{index}.xml", f"<doc>{''.join(paragraphs)}</doc>")
    return store


def random_phrase(rng: random.Random, max_tokens: int = 3) -> str:
    """A 1..``max_tokens``-word phrase over the full-text vocabulary."""
    count = rng.randrange(1, max_tokens + 1)
    return " ".join(rng.choice(FT_WORDS) for _ in range(count))


def describe_query(query: Query) -> str:
    """Human-readable one-liner (the normalized plan text)."""
    from ..querycalc.service.plans import normalize_query

    return normalize_query(query)
