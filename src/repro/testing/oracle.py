"""Differential oracles: run one program everywhere, compare everything.

Two oracle families:

* the **XQuery pair** — a generated program is compiled once per
  :class:`~repro.xquery.context.EngineConfig` and run under both engine
  backends; serialized results, ``fn:trace`` output, and error
  (class, code, message) triples must match exactly.
* the **calculus fleet** — a generated calculus query runs under the
  native graph interpreter, the via-XQuery backend on both engine
  backends, and the :class:`~repro.querycalc.service.QueryService` cold
  and warm (the warm hit must replay the cold result *and* its traces
  from the result cache); everything must produce the same ordered node
  ids, and failures must agree in kind.

Divergences that are deliberate, period-accurate quirks are not failures:
the :data:`ALLOWLIST` names each one with the paper section that licenses
it, and the corpus replay test asserts the allowlisted reason matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..awb.model import Model
from ..querycalc.ast import FilterProperty, Query
from ..querycalc.native import run_query
from ..querycalc.via_xquery import XQueryCalculusBackend
from ..xquery import EngineConfig, TraceLog, XQueryEngine
from ..xquery.api import BACKENDS, serialize_result
from ..xquery.errors import XQueryError

#: engine names the calculus oracle reports.  ``sharded-cold``/``-warm``
#: join the fleet when the oracle is built with ``serving=True``.
CALCULUS_ENGINES = (
    "native",
    "via-treewalk",
    "via-closures",
    "via-algebra",
    "service-cold",
    "service-warm",
    "sharded-cold",
    "sharded-warm",
)

#: the spec code the engines raise at a wall-clock deadline; a timeout in
#: any backend makes the comparison meaningless (the other backend may
#: simply have been faster), so those programs are skipped, not failed.
TIMEOUT_CODE = "XQDY_TIMEOUT"


@dataclass
class Divergence:
    """One observed disagreement between implementations."""

    kind: str  # "xquery-pair" | "metamorphic" | "calculus" | "type-soundness"
    source: str  # program text / normalized query text
    outcomes: Dict[str, tuple]
    detail: str = ""
    #: name of the ALLOWLIST rule that licenses this divergence, if any.
    allowlisted: Optional[str] = None
    #: set by the campaign when --shrink reduced the reproducer.
    shrunk_source: Optional[str] = None

    def describe(self) -> str:
        lines = [f"[{self.kind}] {self.detail}".rstrip()]
        for engine, outcome in sorted(self.outcomes.items()):
            lines.append(f"  {engine:14s} {outcome!r}")
        lines.append("  source:")
        body = self.shrunk_source or self.source
        lines.extend("    " + line for line in body.splitlines())
        return "\n".join(lines)


@dataclass
class AllowRule:
    """A licensed divergence: a predicate plus its paper citation."""

    name: str
    reason: str
    citation: str
    applies: Callable[[Divergence], bool] = field(repr=False, default=lambda d: False)


def _is_html_property_divergence(divergence: Divergence) -> bool:
    return divergence.kind == "calculus" and "html-property" in divergence.detail


def _is_declared_type_store_divergence(divergence: Divergence) -> bool:
    return divergence.kind == "calculus" and "declared-type-store" in divergence.detail


#: Divergences that are the paper's own quirks, not bugs.  Each entry
#: documents *why* the implementations legitimately disagree and where
#: the paper licenses it.
ALLOWLIST: List[AllowRule] = [
    AllowRule(
        name="html-property-filter",
        reason=(
            "Filters/sorts over html-typed properties compare different "
            "values by design: the native backend sees the stored markup "
            "string, the XQuery backend sees the export's element content "
            "(string-value strips tags)."
        ),
        citation=(
            "Paper §2 'nice, clean XML format': html properties export as "
            "child elements 'for embarrassing historical reasons' — the "
            "schema drift between the live model and its export."
        ),
        applies=_is_html_property_divergence,
    ),
    AllowRule(
        name="declared-type-store",
        reason=(
            "Storing a non-numeric string into a property the metamodel "
            "declares numeric makes the export carry type='integer' for a "
            "value that is not one; the XQuery backend then compares NaN "
            "(never true) while the native backend falls back to string "
            "comparison on the stored value."
        ),
        citation=(
            "Paper §2: metamodel conformance is advisory — 'suggestive, "
            "not punitive' — so ill-typed property values are allowed to "
            "exist, and the two query implementations see them through "
            "different lenses."
        ),
        applies=_is_declared_type_store_divergence,
    ),
]


def apply_allowlist(divergence: Optional[Divergence]) -> Optional[Divergence]:
    """Tag a divergence with the rule that licenses it, if any."""
    if divergence is None:
        return None
    for rule in ALLOWLIST:
        if rule.applies(divergence):
            divergence.allowlisted = rule.name
            break
    return divergence


# -- the XQuery pair oracle ----------------------------------------------------


def run_outcome(query, backend: str, **run_kwargs) -> tuple:
    """Run one compiled query on one backend, to a comparable value.

    ``("ok", serialized_result, trace_messages)`` on success, else
    ``("error", class_name, code, bare_message)``.  This is the single
    comparison currency every differential test in the repo uses
    (``tests/test_backend_parity.py`` imports it from here).
    """
    trace = TraceLog()
    try:
        result = query.run(backend=backend, trace=trace, **run_kwargs)
    except XQueryError as error:
        return ("error", type(error).__name__, error.code, error.bare_message)
    except Exception as error:  # noqa: BLE001 - a raw escape IS the finding
        # an exception that is not an XQueryError escaped the engine: that
        # is a bug regardless of what the other backend does (this caught
        # fn:max leaking a raw ValueError on non-numeric untyped values).
        return ("crash", type(error).__name__, str(error))
    return ("ok", serialize_result(result), tuple(trace.messages))


def xquery_outcomes(
    source: str,
    config: Optional[EngineConfig] = None,
    run_kwargs: Optional[dict] = None,
    timeout: Optional[float] = None,
) -> Dict[str, tuple]:
    """Outcomes of one source under every engine backend.

    A compile-time error is backend-independent by construction (both
    backends share the parser/optimizer), so it becomes the outcome of
    every backend.
    """
    engine = XQueryEngine(config or EngineConfig())
    run_kwargs = dict(run_kwargs or {})
    if timeout is not None:
        run_kwargs.setdefault("timeout", timeout)
    try:
        query = engine.compile(source)
    except XQueryError as error:
        outcome = ("error", type(error).__name__, error.code, error.bare_message)
        return {backend: outcome for backend in BACKENDS}
    return {backend: run_outcome(query, backend, **run_kwargs) for backend in BACKENDS}


def has_timeout(outcomes: Dict[str, tuple]) -> bool:
    return any(
        outcome[0] == "error" and outcome[2] == TIMEOUT_CODE
        for outcome in outcomes.values()
    )


def divergence_from(
    source: str, outcomes: Dict[str, tuple], kind: str, detail: str = ""
) -> Optional[Divergence]:
    """A Divergence if the outcome map disagrees anywhere (timeouts skip).

    A ``crash`` outcome — a non-XQueryError escaping the engine — is a
    divergence even when every backend crashes identically.
    """
    if has_timeout(outcomes):
        return None
    crashed = any(outcome[0] == "crash" for outcome in outcomes.values())
    distinct = {repr(outcome) for outcome in outcomes.values()}
    if len(distinct) <= 1 and not crashed:
        return None
    if crashed:
        detail = (detail + " engine-crash").strip()
    return apply_allowlist(Divergence(kind, source, outcomes, detail=detail))


def compare_xquery(
    source: str,
    config: Optional[EngineConfig] = None,
    run_kwargs: Optional[dict] = None,
    timeout: Optional[float] = None,
) -> Optional[Divergence]:
    """The pair oracle: treewalk and closures must agree on everything."""
    outcomes = xquery_outcomes(source, config, run_kwargs, timeout=timeout)
    return divergence_from(source, outcomes, "xquery-pair")


def compare_sources(
    left: str,
    right: str,
    config: Optional[EngineConfig] = None,
    detail: str = "",
    timeout: Optional[float] = None,
) -> Optional[Divergence]:
    """The metamorphic oracle: two renderings of one meaning must agree.

    Both renderings run under both backends, so one call checks the
    rewrite *and* pair parity of each rendering.
    """
    outcomes: Dict[str, tuple] = {}
    for label, source in (("left", left), ("right", right)):
        for backend, outcome in xquery_outcomes(
            source, config, timeout=timeout
        ).items():
            outcomes[f"{label}-{backend}"] = outcome
    combined = f"(: original :)\n{left}\n(: rewritten :)\n{right}"
    return divergence_from(combined, outcomes, "metamorphic", detail=detail)


# -- the type-soundness oracle -------------------------------------------------


def type_soundness_divergence(
    source: str,
    config: Optional[EngineConfig] = None,
    timeout: Optional[float] = None,
) -> Optional[Divergence]:
    """The type-soundness oracle: runtime values must inhabit static types.

    The static analyzer (:mod:`repro.xquery.analysis.types`) infers an
    item type and occurrence for the module body.  This oracle runs the
    program on the reference backend and asserts the observed sequence
    inhabits that inference — a counterexample is an analyzer *soundness*
    bug, the class of defect no amount of backend-pair testing can see
    (both backends agree; the static claim about them is what's wrong).

    Inference runs schema-free (``schema=None``): generated programs
    construct arbitrary trees, so only the document-independent part of
    the inference is a universal claim.  Programs that fail to compile,
    raise dynamic errors, or time out carry no value to check and are
    skipped, not failed.
    """
    from dataclasses import replace

    from ..xquery.analysis.types import check_sequence, infer_body_type

    config = replace(config or EngineConfig(), type_check_calls=True)
    engine = XQueryEngine(config)
    try:
        query = engine.compile(source)
    except XQueryError:
        return None  # statically rejected: nothing was claimed about it
    try:
        inferred = infer_body_type(query.module)
    except Exception as error:  # noqa: BLE001 - an analyzer crash IS the finding
        return apply_allowlist(
            Divergence(
                "type-soundness",
                source,
                {"analyzer": ("crash", type(error).__name__, str(error))},
                detail="analyzer-crash",
            )
        )
    if inferred is None:
        return None
    run_kwargs = {"timeout": timeout} if timeout is not None else {}
    try:
        result = query.run(backend="treewalk", **run_kwargs)
    except XQueryError:
        return None  # dynamic errors (incl. timeouts) produce no value
    except Exception:  # noqa: BLE001 - raw escapes are the pair oracle's job
        return None
    violation = check_sequence(inferred, list(result))
    if violation is None:
        return None
    return apply_allowlist(
        Divergence(
            "type-soundness",
            source,
            {
                "static": ("inferred", inferred.describe()),
                "runtime": ("observed", serialize_result(result)),
            },
            detail=violation,
        )
    )


# -- the calculus fleet oracle -------------------------------------------------


class ServingOracle:
    """The sharded-service member of the calculus fleet.

    Wraps a ``mode="process"`` :class:`QueryService` — real worker
    processes, scatter/gather, admission control — and reports outcomes in
    the fleet's comparison currency.  Worker failures travel as
    :class:`~repro.querycalc.service.errors.RemoteQueryError` carriers, so
    outcomes name the *original* exception class (via ``classify_error``):
    a worker raising ``XQueryDynamicError`` must compare equal to the
    thread service raising it directly.  Nothing is allowlisted for this
    oracle — a sharded divergence is always a bug.
    """

    def __init__(self, model: Model, scheme: str = "type", workers: int = 2):
        from ..querycalc.service import QueryService

        self.scheme = scheme
        self.service = QueryService(
            model, mode="process", workers=workers, partition=scheme
        )

    def outcome(self, query: Query) -> tuple:
        from ..querycalc.service.errors import classify_error

        try:
            item = self.service.run(query)
        except Exception as error:
            return ("error", classify_error(error).exception)
        return (
            "ok",
            tuple(node.id for node in item),
            tuple(item.traces),
            item.served_from_cache,
        )

    def close(self) -> None:
        self.service.close()


class CalculusOracle:
    """Runs calculus queries under every implementation over one model.

    The backends and the service are built once and reused: their caches
    are part of what is being tested (a result served from the warm cache
    must be indistinguishable — ids *and* replayed traces — from the cold
    execution that populated it).

    ``serving=True`` adds the sharded process-pool service to the fleet
    (``sharded-cold``/``sharded-warm`` outcomes, via :class:`ServingOracle`
    with ``serving_scheme`` partitioning).  Worker processes are real OS
    processes — call :meth:`close` (or use the oracle as a context
    manager) when done.
    """

    def __init__(
        self,
        model: Model,
        serving: bool = False,
        serving_scheme: str = "type",
        serving_workers: int = 2,
    ):
        self.model = model
        self.via = {
            backend: XQueryCalculusBackend(
                model, engine=XQueryEngine(EngineConfig(backend=backend))
            )
            for backend in BACKENDS
        }
        from ..querycalc.service import QueryService

        self.service = QueryService(model)
        self.serving: Optional[ServingOracle] = (
            ServingOracle(model, scheme=serving_scheme, workers=serving_workers)
            if serving
            else None
        )

    def close(self) -> None:
        """Reap the sharded service's worker processes, if any."""
        if self.serving is not None:
            self.serving.close()

    def __enter__(self) -> "CalculusOracle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def outcomes(self, query: Query) -> Dict[str, tuple]:
        outcomes: Dict[str, tuple] = {"native": self._native(query)}
        for backend, via in self.via.items():
            outcomes[f"via-{backend}"] = self._via(via, query)
        cold, warm = self._service(query)
        outcomes["service-cold"] = cold
        outcomes["service-warm"] = warm
        if self.serving is not None:
            outcomes["sharded-cold"] = self.serving.outcome(query)
            outcomes["sharded-warm"] = self.serving.outcome(query)
        return outcomes

    def compare(self, query: Query) -> Optional[Divergence]:
        from ..querycalc.service.plans import normalize_query

        outcomes = self.outcomes(query)
        # ids must agree everywhere; traces must agree cold-vs-warm (the
        # replay guarantee) — other engines do not collect traces.
        ids = {name: outcome[1] if outcome[0] == "ok" else outcome for name, outcome in outcomes.items()}
        statuses = {name: outcome[0] for name, outcome in outcomes.items()}
        detail = self._detail(query)
        if len(set(map(repr, ids.values()))) > 1 or len(set(statuses.values())) > 1:
            return apply_allowlist(
                Divergence("calculus", normalize_query(query), outcomes, detail=detail)
            )
        pairs = [("service-cold", "service-warm")]
        if "sharded-cold" in outcomes:
            pairs.append(("sharded-cold", "sharded-warm"))
        for cold_name, warm_name in pairs:
            cold, warm = outcomes[cold_name], outcomes[warm_name]
            if cold[0] == "ok" and (cold[2] != warm[2] or not warm[3]):
                return apply_allowlist(
                    Divergence(
                        "calculus",
                        normalize_query(query),
                        outcomes,
                        detail=(detail + f" {cold_name.split('-')[0]}-replay: warm "
                                "hit did not replay the cold result/traces").strip(),
                    )
                )
        if "sharded-cold" in outcomes:
            svc, shd = outcomes["service-cold"], outcomes["sharded-cold"]
            if svc[0] == "ok" and shd[0] == "ok" and svc[2] != shd[2]:
                # the ids matched, but fn:trace output differed — the
                # router must have scattered a traced query.
                return apply_allowlist(
                    Divergence(
                        "calculus",
                        normalize_query(query),
                        outcomes,
                        detail=(detail + " sharded-traces: process tier's trace "
                                "output differs from the thread service").strip(),
                    )
                )
        return None

    def _detail(self, query: Query) -> str:
        """Flags the oracle needs for allowlisting decisions."""
        flags = []
        html_names = {"description", "biography"}
        for step in query.steps:
            if isinstance(step, FilterProperty) and step.name in html_names:
                flags.append("html-property")
        if query.collect.sort_by in html_names:
            flags.append("html-property")
        return " ".join(sorted(set(flags)))

    def _native(self, query: Query) -> tuple:
        try:
            nodes = run_query(query, self.model)
        except Exception as error:
            return ("error", type(error).__name__)
        return ("ok", tuple(node.id for node in nodes))

    def _via(self, via: XQueryCalculusBackend, query: Query) -> tuple:
        try:
            nodes = via.run(query)
        except Exception as error:
            return ("error", type(error).__name__)
        return ("ok", tuple(node.id for node in nodes))

    def _service(self, query: Query) -> Tuple[tuple, tuple]:
        cold = self._service_once(query)
        warm = self._service_once(query)
        return cold, warm

    def _service_once(self, query: Query) -> tuple:
        try:
            item = self.service.run(query)
        except Exception as error:
            return ("error", type(error).__name__)
        return (
            "ok",
            tuple(node.id for node in item),
            tuple(item.traces),
            item.served_from_cache,
        )


# -- the collection / full-text oracle -----------------------------------------


class CollectionOracle:
    """Differential oracle for ``fn:doc``/``fn:collection``/``ft:*`` programs.

    One program runs under every engine backend **twice** — once with the
    store's inverted index answering ``ft:search`` and once with the index
    disabled (brute-force document scan) — six outcomes that must agree
    byte-for-byte.  Nothing here is ever allowlisted: the allowlist's
    rules all match kind ``"calculus"``, and a collection divergence
    (indexed vs scan, or backend vs backend) is always a bug.

    ``serving=True`` adds the request-level facet: a
    :class:`~repro.collections.SearchRequest` is answered by the direct
    engine (indexed and scan), a one-shard :class:`SearchService` cold and
    warm (the warm hit must replay the cold text from the generation-keyed
    cache), and a sharded thread-tier service whose scatter/gather merge
    must be byte-identical to the unsharded answer.
    """

    def __init__(
        self,
        store,
        config: Optional[EngineConfig] = None,
        timeout: Optional[float] = None,
        serving: bool = False,
        shards: int = 2,
    ):
        self.store = store
        self.config = config or EngineConfig()
        self.engine = XQueryEngine(self.config)
        self.timeout = timeout
        self.services: List[object] = []
        if serving:
            from ..collections import SearchService

            self.single = SearchService(store, shards=1, mode="thread")
            self.sharded = SearchService(store, shards=shards, mode="thread")
            self.services = [self.single, self.sharded]

    def close(self) -> None:
        for service in self.services:
            service.close()

    def __enter__(self) -> "CollectionOracle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def outcomes(self, source: str) -> Dict[str, tuple]:
        run_kwargs: dict = {"collections": self.store}
        if self.timeout is not None:
            run_kwargs["timeout"] = self.timeout
        try:
            query = self.engine.compile(source)
        except XQueryError as error:
            outcome = ("error", type(error).__name__, error.code, error.bare_message)
            return {
                f"{backend}-{mode}": outcome
                for backend in BACKENDS
                for mode in ("indexed", "scan")
            }
        outcomes: Dict[str, tuple] = {}
        was_indexed = self.store.use_index
        try:
            for mode, use_index in (("indexed", True), ("scan", False)):
                self.store.use_index = use_index
                for backend in BACKENDS:
                    outcomes[f"{backend}-{mode}"] = run_outcome(
                        query, backend, **run_kwargs
                    )
        finally:
            self.store.use_index = was_indexed
        return outcomes

    def compare(self, source: str) -> Optional[Divergence]:
        return divergence_from(source, self.outcomes(source), "collection")

    def request_outcomes(self, request) -> Dict[str, tuple]:
        """The request-level facet's comparison map (needs ``serving``)."""
        outcomes: Dict[str, tuple] = {
            "direct-indexed": self._direct(request, use_index=True),
            "direct-scan": self._direct(request, use_index=False),
        }
        for name, service in (("service", self.single), ("sharded", self.sharded)):
            outcomes[f"{name}-cold"] = self._service(service, request)
            outcomes[f"{name}-warm"] = self._service(service, request)
        return outcomes

    def compare_request(self, request) -> Optional[Divergence]:
        outcomes = self.request_outcomes(request)
        texts = {
            name: outcome[1] if outcome[0] == "ok" else outcome
            for name, outcome in outcomes.items()
        }
        if len({repr(text) for text in texts.values()}) > 1:
            return Divergence(
                "collection", request.source(), outcomes, detail="request-facet"
            )
        cold, warm = outcomes["service-cold"], outcomes["service-warm"]
        if cold[0] == "ok" and warm[0] == "ok" and not warm[2]:
            return Divergence(
                "collection",
                request.source(),
                outcomes,
                detail="request-facet: warm hit missed the generation-keyed cache",
            )
        return None

    def _direct(self, request, use_index: bool) -> tuple:
        try:
            text = self.single.evaluate_fresh(request, use_index=use_index)
        except Exception as error:  # noqa: BLE001 - classified below
            return ("error", type(error).__name__)
        return ("ok", text)

    @staticmethod
    def _service(service, request) -> tuple:
        try:
            result = service.run(request)
        except Exception as error:  # noqa: BLE001 - classified below
            return ("error", type(error).__name__)
        return ("ok", result.text, result.cached)


# -- the update / view-maintenance oracle --------------------------------------


class UpdateOracle:
    """Differential oracle for the update language's view maintenance.

    One long-lived :class:`QueryService` takes random update-language
    scripts through :meth:`~repro.querycalc.service.QueryService.apply_update`
    — so its warm result-cache entries are carried, patched, and
    selectively invalidated by footprint/dependency reasoning — while the
    native interpreter re-evaluates every panel query from scratch over
    the same live model.  After every script, the maintained service and
    the fresh evaluation must agree on every panel query's ordered ids;
    a disagreement means a cache entry survived (or was patched) when the
    update actually changed its answer — precisely the bug class
    invalidate-everything never had and incremental maintenance risks.
    """

    def __init__(self, model: Model, seed: int = 0, backend: str = "xquery"):
        import random as _random

        from ..querycalc.service import QueryService

        self.model = model
        self.rng = _random.Random(seed)
        self.service = QueryService(model, backend=backend)
        #: resolved script texts, in application order (the repro trail).
        self.scripts: List[str] = []

    def close(self) -> None:
        self.service.close()

    def __enter__(self) -> "UpdateOracle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def panel(self) -> List[Query]:
        """Queries spanning the propagation outcomes: patchable scans,
        follow pipelines, property filters, id starts, descending sorts."""
        from ..querycalc.ast import (
            Collect,
            FilterProperty,
            FilterType,
            Follow,
            Query as Q,
            Start,
        )

        queries = [
            Q(start=Start(type="User"), steps=[], collect=Collect()),
            Q(
                start=Start(type="Person"),
                steps=[],
                collect=Collect(sort_by="rank", descending=True),
            ),
            Q(start=Start(all_nodes=True), steps=[], collect=Collect()),
            Q(
                start=Start(type="Person"),
                steps=[Follow(relation="likes", include_subrelations=True)],
                collect=Collect(),
            ),
            Q(
                start=Start(type="Server"),
                steps=[FilterType(type="Server")],
                collect=Collect(),
            ),
            Q(
                start=Start(type="Element"),
                steps=[FilterProperty(name="rank", op="ge", value="10")],
                collect=Collect(),
            ),
        ]
        node_ids = list(self.model.nodes)
        if node_ids:
            queries.append(
                Q(
                    start=Start(node_id=self.rng.choice(node_ids)),
                    steps=[],
                    collect=Collect(),
                )
            )
        return queries

    def warm(self) -> None:
        """Prime the service's result cache with the whole panel."""
        for query in self.panel():
            try:
                self.service.run(query)
            except Exception:
                pass  # id-start queries may dangle after deletes; fine

    def step(self) -> Optional[Divergence]:
        """Apply one random script, then compare maintained vs fresh."""
        from .models import random_update_script

        self.warm()
        script = random_update_script(self.rng, self.model)
        summary = self.service.apply_update(script)
        self.scripts.append(summary["script"])
        return self.check()

    def check(self) -> Optional[Divergence]:
        """Compare every panel query: maintained service vs native."""
        from ..querycalc.service.plans import normalize_query

        for query in self.panel():
            outcomes = {
                "maintained": self._service_outcome(query),
                "fresh": self._native_outcome(query),
            }
            if self._ids(outcomes["maintained"]) != self._ids(outcomes["fresh"]):
                return Divergence(
                    "update-maintenance",
                    "\n".join(self.scripts[-3:])
                    + "\n(: panel query :)\n"
                    + normalize_query(query),
                    outcomes,
                    detail="maintained cache disagrees with fresh evaluation",
                )
        return None

    @staticmethod
    def _ids(outcome: tuple):
        return outcome[1] if outcome[0] == "ok" else outcome

    def _service_outcome(self, query: Query) -> tuple:
        try:
            item = self.service.run(query)
        except Exception as error:
            return ("error", type(error).__name__)
        return ("ok", tuple(node.id for node in item), item.served_from_cache)

    def _native_outcome(self, query: Query) -> tuple:
        try:
            nodes = run_query(query, self.model)
        except Exception as error:
            return ("error", type(error).__name__)
        return ("ok", tuple(node.id for node in nodes))


def assert_calculus_parity(query: Query, model: Model, oracle: Optional[CalculusOracle] = None):
    """Assert every calculus implementation agrees; returns the outcomes.

    ``tests/test_backend_parity.py`` uses this for its end-to-end rows, so
    the hand-written corpus and the fuzzer share one comparison.
    """
    oracle = oracle or CalculusOracle(model)
    divergence = oracle.compare(query)
    assert divergence is None or divergence.allowlisted, (
        divergence and divergence.describe()
    )
    return oracle.outcomes(query)
