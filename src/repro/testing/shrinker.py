"""Delta-debugging shrinker: reduce a diverging program to its essence.

Two reducers share one contract — ``is_interesting(source) -> bool`` says
whether a candidate still exhibits the divergence; the shrinker returns
the smallest interesting program it can find:

* :func:`shrink_program` works on the generator's :class:`GenExpr` tree,
  so every candidate is produced structurally (replace a subtree with an
  atom, hoist a child over its parent, drop a declaration or sequence
  element) and never needs re-parsing.  Invalid candidates reject
  themselves: a program that no longer compiles fails identically under
  every backend, so it is no longer "interesting".
* :func:`shrink_text` is the fallback for divergences that arrive as
  plain source (a pinned corpus file, a user report): classic ddmin over
  lines, then over character chunks.

Both are greedy-with-restart: apply the first size-reducing candidate,
start over, stop at a fixpoint.  Acceptance is strictly-smaller renders,
so termination is by descent on program size.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from .generator import GenExpr, atom

#: replacement vocabulary, cheapest first.
_ATOMS = ("()", "1", "0", "'s'")


def shrink_program(
    program: GenExpr,
    is_interesting: Callable[[str], bool],
    max_checks: int = 2000,
) -> GenExpr:
    """Structurally reduce ``program`` while ``is_interesting`` holds."""
    checks = [0]

    def interesting(candidate: GenExpr) -> bool:
        if checks[0] >= max_checks:
            return False
        checks[0] += 1
        try:
            return is_interesting(candidate.render())
        except Exception:
            return False

    current = program
    while checks[0] < max_checks:
        candidate = _one_reduction(current, interesting)
        if candidate is None:
            break
        current = candidate
    return current


def _one_reduction(
    current: GenExpr, interesting: Callable[[GenExpr], bool]
) -> Optional[GenExpr]:
    """The first strictly-smaller interesting candidate, or None."""
    size = len(current.render())
    # visit big subtrees first: one lucky replacement deletes the most.
    nodes: List[Tuple[Tuple[int, ...], GenExpr]] = sorted(
        current.walk(), key=lambda pair: -len(pair[1].render())
    )
    for path, node in nodes:
        if not path and node.kind == "program":
            # drop whole top-level parts (declaration + its newline).
            for index in range(len(node.parts) - 1, -1, -1):
                part = node.parts[index]
                if isinstance(part, GenExpr) and index + 1 < len(node.parts):
                    candidate = GenExpr(
                        node.kind,
                        node.parts[:index] + node.parts[index + 2 :],
                        flavor=node.flavor,
                    )
                    if len(candidate.render()) < size and interesting(candidate):
                        return candidate
            continue
        if node.kind == "atom" and node.render() in _ATOMS:
            continue
        # 1. replace the subtree with an atom.
        for text in _ATOMS:
            replacement = atom(text)
            if len(replacement.render()) >= len(node.render()):
                continue
            candidate = current.replace(path, replacement)
            if interesting(candidate):
                return candidate
        # 2. hoist a child over this node.
        for child in node.children():
            if len(child.render()) >= len(node.render()):
                continue
            candidate = current.replace(path, child)
            if interesting(candidate):
                return candidate
        # 3. drop elements of list-shaped productions (sequences, element
        # content): remove one child part plus its separator if any.
        if len(node.children()) >= 2:
            for index in range(len(node.parts) - 1, -1, -1):
                if not isinstance(node.parts[index], GenExpr):
                    continue
                candidate = current.without_part(path, index)
                if len(candidate.render()) < size and interesting(candidate):
                    return candidate
    return None


def shrink_text(
    source: str,
    is_interesting: Callable[[str], bool],
    max_checks: int = 2000,
) -> str:
    """ddmin over lines, then character chunks, for plain-text sources."""
    checks = [0]

    def interesting(candidate: str) -> bool:
        if checks[0] >= max_checks or not candidate.strip():
            return False
        checks[0] += 1
        try:
            return is_interesting(candidate)
        except Exception:
            return False

    lines = source.splitlines()
    lines = _ddmin(lines, lambda ls: interesting("\n".join(ls)))
    text = "\n".join(lines)
    # character-chunk passes at shrinking granularity.
    granularity = max(1, len(text) // 2)
    while granularity >= 1:
        changed = True
        while changed:
            changed = False
            for start in range(0, len(text), granularity):
                candidate = text[:start] + text[start + granularity :]
                if interesting(candidate):
                    text = candidate
                    changed = True
                    break
        if granularity == 1:
            break
        granularity //= 2
    return text


def _ddmin(items: List[str], interesting: Callable[[List[str]], bool]) -> List[str]:
    """Classic ddmin on a list: smallest interesting sublist it can find."""
    if len(items) <= 1:
        return items
    chunks = 2
    while len(items) >= 2:
        size = max(1, len(items) // chunks)
        reduced = False
        for start in range(0, len(items), size):
            candidate = items[:start] + items[start + size :]
            if candidate and interesting(candidate):
                items = candidate
                chunks = max(2, chunks - 1)
                reduced = True
                break
        if not reduced:
            if size <= 1:
                break
            chunks = min(len(items), chunks * 2)
    return items
