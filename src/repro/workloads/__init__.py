"""Deterministic synthetic workloads for examples and benchmarks."""

from .errorchains import (
    count_ladder_lines,
    native_chain,
    native_required_child,
    nested_input,
    trycatch_chain_program,
    xquery_chain_program,
)
from .loc import count_file_loc, inventory, total_loc
from .mathlib import BINARY_SEARCH_XQ, TRIG_XQ, count_divisions
from .models import make_awb_self_model, make_glass_catalog, make_it_model
from .setprograms import STRING_SET_PROGRAM, XML_SET_PROGRAM, make_values
from .templates import (
    error_prone_template,
    glass_catalog_template,
    simple_list_template,
    system_context_template,
    table_template,
    toc_heavy_template,
)

__all__ = [
    "BINARY_SEARCH_XQ",
    "STRING_SET_PROGRAM",
    "TRIG_XQ",
    "XML_SET_PROGRAM",
    "count_file_loc",
    "count_divisions",
    "count_ladder_lines",
    "error_prone_template",
    "glass_catalog_template",
    "inventory",
    "make_awb_self_model",
    "make_glass_catalog",
    "make_it_model",
    "make_values",
    "native_chain",
    "native_required_child",
    "nested_input",
    "simple_list_template",
    "system_context_template",
    "table_template",
    "toc_heavy_template",
    "total_loc",
    "trycatch_chain_program",
    "xquery_chain_program",
]
