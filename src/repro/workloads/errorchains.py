"""Error-handling workloads for experiment E3.

Builds matched pairs of computations: a chain of ``required-child`` fetches
of depth *d*, written

* the XQuery way — every call wrapped in the
  ``let/if-is-error/then/else`` ladder (the paper: "this turned nearly
  every function call into a half-dozen lines of code"); and
* the Java way — plain sequential calls, one ``try`` at the top
  ("grabbing two required children in Java was simply... continue to
  compute").
"""

from __future__ import annotations

from typing import List, Tuple

from ..docgen.errors import GenTrouble
from ..xdm import ElementNode


def nested_input(depth: int, break_at: int = 0) -> ElementNode:
    """A chain ``<c1><c2>...<cN/>...</c2></c1>``.

    ``break_at`` (1-based) omits that level, so the chain fails there;
    0 builds the complete, healthy chain.
    """
    root = ElementNode("input")
    current = root
    for level in range(1, depth + 1):
        if level == break_at:
            break
        child = ElementNode(f"c{level}")
        current.append(child)
        current = child
    return root


def xquery_chain_program(depth: int) -> str:
    """The error-as-value XQuery program fetching ``c1 … cN`` in a ladder."""
    lines: List[str] = [
        "declare variable $input external;",
        "",
        "declare function local:is-error($v) {",
        "  count($v) eq 1 and $v instance of element(error)",
        "};",
        "",
        "declare function local:required-child($parent, $name) {",
        "  let $c := ($parent/*[name(.) eq $name])[1]",
        "  return",
        "    if (empty($c))",
        '    then <error><message>{concat("no <", $name, "> child")}</message></error>',
        "    else $c",
        "};",
        "",
    ]
    previous = "$input"
    indent = ""
    for level in range(1, depth + 1):
        variable = f"$c{level}"
        lines.append(
            f'{indent}let {variable} := local:required-child({previous}, "c{level}")'
        )
        lines.append(f"{indent}return")
        lines.append(f"{indent}  if (local:is-error({variable}))")
        lines.append(f"{indent}  then <failed>{{{variable}/message}}</failed>")
        lines.append(f"{indent}  else")
        indent += "  "
        previous = variable
    lines.append(f"{indent}<done>{{name({previous})}}</done>")
    return "\n".join(lines)


def count_ladder_lines(depth: int) -> Tuple[int, int]:
    """(ladder lines, useful lines) in the XQuery chain of given depth.

    The "useful" computation is one line per fetch plus the final
    construction; everything else is the error ladder.
    """
    program = xquery_chain_program(depth)
    body_lines = [
        line
        for line in program.splitlines()
        if line.strip() and not line.strip().startswith("declare")
        and "element(error)" not in line
    ]
    useful = depth + 1  # one let per fetch + the final <done>
    return len(body_lines), useful


def trycatch_chain_program(depth: int) -> str:
    """The same chain written with the try/catch extension (XQuery 3.0).

    The utility *throws* with ``fn:error`` instead of returning an
    ``<error>`` value, so the main line collapses to one call per fetch —
    exactly the shape the paper got from Java, a decade early.
    """
    lines: List[str] = [
        "declare variable $input external;",
        "",
        "declare function local:required-child($parent, $name) {",
        "  let $c := ($parent/*[name(.) eq $name])[1]",
        "  return",
        "    if (empty($c))",
        '    then error(concat("no <", $name, "> child"))',
        "    else $c",
        "};",
        "",
        "try {",
    ]
    previous = "$input"
    for level in range(1, depth + 1):
        lines.append(
            f'  let $c{level} := local:required-child({previous}, "c{level}")'
        )
        previous = f"$c{level}"
    lines.append(f"  return <done>{{name({previous})}}</done>")
    lines.append("} catch $err {")
    lines.append("  <failed>{$err/message}</failed>")
    lines.append("}")
    return "\n".join(lines)


def native_required_child(parent: ElementNode, name: str) -> ElementNode:
    """The Java-style utility: returns the child or throws GenTrouble."""
    child = parent.first_child_element(name)
    if child is None:
        raise GenTrouble(f"no <{name}> child", template_element=parent)
    return child


def native_chain(root: ElementNode, depth: int) -> str:
    """The Java-style chain: straight-line calls, caller catches at top.

    Returns the final element's name, or raises GenTrouble from whatever
    level broke — with context, for free.
    """
    current = root
    for level in range(1, depth + 1):
        current = native_required_child(current, f"c{level}")
    return current.name
