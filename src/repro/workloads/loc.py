"""Lines-of-code accounting for experiment E9.

Counts non-blank, non-comment lines, with comment syntax per language
(``#`` for Python, nesting ``(: ... :)`` for XQuery, ``<!-- -->`` for
XML/XSLT).  Used to compare the two shipped generator implementations the
way the paper compares its XQuery and Java versions.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List


def count_python_loc(text: str) -> int:
    count = 0
    in_docstring = False
    delimiter = None
    for line in text.splitlines():
        stripped = line.strip()
        if in_docstring:
            if delimiter in stripped:
                in_docstring = False
            continue
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith('"""') or stripped.startswith("'''"):
            delimiter = stripped[:3]
            rest = stripped[3:]
            if delimiter not in rest:
                in_docstring = True
            continue
        count += 1
    return count


def count_xquery_loc(text: str) -> int:
    count = 0
    depth = 0
    for line in text.splitlines():
        remaining = line
        code_chars: List[str] = []
        while remaining:
            if depth > 0:
                close = remaining.find(":)")
                open_ = remaining.find("(:")
                if open_ != -1 and (close == -1 or open_ < close):
                    depth += 1
                    remaining = remaining[open_ + 2 :]
                elif close != -1:
                    depth -= 1
                    remaining = remaining[close + 2 :]
                else:
                    remaining = ""
            else:
                open_ = remaining.find("(:")
                if open_ == -1:
                    code_chars.append(remaining)
                    remaining = ""
                else:
                    code_chars.append(remaining[:open_])
                    depth += 1
                    remaining = remaining[open_ + 2 :]
        if "".join(code_chars).strip():
            count += 1
    return count


def count_xml_loc(text: str) -> int:
    count = 0
    in_comment = False
    for line in text.splitlines():
        stripped = line.strip()
        if in_comment:
            if "-->" in stripped:
                in_comment = False
            continue
        if not stripped:
            continue
        if stripped.startswith("<!--"):
            if "-->" not in stripped:
                in_comment = True
            continue
        count += 1
    return count


_COUNTERS = {
    ".py": count_python_loc,
    ".xq": count_xquery_loc,
    ".xml": count_xml_loc,
    ".xslt": count_xml_loc,
}


def count_file_loc(path: str) -> int:
    _, extension = os.path.splitext(path)
    counter = _COUNTERS.get(extension)
    if counter is None:
        raise ValueError(f"no LoC counter for {extension!r} files")
    with open(path, "r", encoding="utf-8") as handle:
        return counter(handle.read())


def inventory(paths: Iterable[str]) -> Dict[str, int]:
    """Per-file LoC for the given files/directories (recursing into dirs)."""
    result: Dict[str, int] = {}
    for path in paths:
        if os.path.isdir(path):
            for directory, _, files in os.walk(path):
                for name in sorted(files):
                    full = os.path.join(directory, name)
                    if os.path.splitext(name)[1] in _COUNTERS:
                        result[full] = count_file_loc(full)
        else:
            result[path] = count_file_loc(path)
    return result


def total_loc(paths: Iterable[str]) -> int:
    return sum(inventory(paths).values())
