"""The paper's numeric footnote, made runnable.

"We only used division 15 times in the document generator, once for
binary search and the rest for trigonometry."  This module ships that
code: a binary search and a small Taylor-series trigonometry library,
written in XQuery ("Following standard software engineering practice, we
wrote our own utility functions ... a bit of trigonometry, and other
routine things").

It doubles as a stress test of general-purpose numeric programming in a
query language: recursion for iteration, `div` for the series terms, and
no mutable accumulators anywhere.
"""

from __future__ import annotations

#: Binary search over a sorted sequence of numbers.  Returns the 1-based
#: position of $target, or 0 when absent.  The one use of division.
BINARY_SEARCH_XQ = """
declare function local:bsearch($sorted, $target, $low, $high) {
  if ($low gt $high) then 0
  else
    let $mid := ($low + $high) idiv 2
    let $value := $sorted[$mid]
    return
      if ($value eq $target) then $mid
      else if ($value lt $target) then local:bsearch($sorted, $target, $mid + 1, $high)
      else local:bsearch($sorted, $target, $low, $mid - 1)
};

declare function local:binary-search($sorted, $target) {
  local:bsearch($sorted, $target, 1, count($sorted))
};
"""

#: Taylor-series sine/cosine, plus degree conversion — "the rest" of the
#: divisions.  Doubles are used throughout (xs:double arithmetic).
TRIG_XQ = """
declare variable $pi := 3.14159265358979e0;

declare function local:to-radians($degrees) {
  $degrees * $pi div 180e0
};

(: sin(x) = x - x^3/3! + x^5/5! - ...; $term is x^(2k+1)/(2k+1)!,
   threaded through the recursion because nothing can be accumulated. :)
declare function local:sin-series($x, $term, $k, $acc) {
  if ($k gt 10) then $acc
  else
    let $next-term := $term * $x * $x
                      div ((2e0 * $k) * (2e0 * $k + 1e0)) * -1e0
    return local:sin-series($x, $next-term, $k + 1, $acc + $next-term)
};

declare function local:sin($x) {
  local:sin-series($x, $x, 1, $x)
};

declare function local:cos-series($x, $term, $k, $acc) {
  if ($k gt 10) then $acc
  else
    let $next-term := $term * $x * $x
                      div ((2e0 * $k - 1e0) * (2e0 * $k)) * -1e0
    return local:cos-series($x, $next-term, $k + 1, $acc + $next-term)
};

declare function local:cos($x) {
  local:cos-series($x, 1e0, 1, 1e0)
};

declare function local:tan($x) {
  local:sin($x) div local:cos($x)
};
"""


def count_divisions() -> int:
    """How many ``div``/``idiv`` uses the two libraries contain."""
    source = BINARY_SEARCH_XQ + TRIG_XQ
    return source.count(" div ") + source.count(" idiv ")
