"""Deterministic synthetic AWB models for examples and benchmarks.

The paper's models were real IT-architecture engagements; these generators
produce structurally similar graphs at controllable sizes, seeded so every
benchmark run sees the same model.
"""

from __future__ import annotations

import random

from ..awb import Model, load_metamodel

FIRST_NAMES = [
    "Alice", "Bob", "Carol", "Dave", "Erin", "Frank", "Grace", "Heidi",
    "Ivan", "Judy", "Mallory", "Niaj", "Olivia", "Peggy", "Rupert", "Sybil",
    "Trent", "Victor", "Walter", "Yolanda",
]

PROGRAM_WORDS = [
    "Ledger", "Audit", "Billing", "Routing", "Cache", "Index", "Report",
    "Gateway", "Queue", "Batch", "Archive", "Metric", "Quota", "Token",
]

GLASS_STYLES = ["Art Nouveau", "Art Deco", "Venetian", "Bohemian", "Depression"]
GLASS_MAKERS = ["Tiffany", "Lalique", "Gallé", "Loetz", "Steuben", "Daum"]
GLASS_KINDS = ["Vase", "Goblet", "Paperweight"]


def make_it_model(scale: int = 10, seed: int = 42, omit_some_versions: bool = True) -> Model:
    """An IT-architecture model with roughly ``6 * scale`` nodes.

    Contains one SystemBeingDesigned, ``scale`` users (every fourth a
    Superuser), programs, servers, documents (some missing their version,
    feeding the omissions machinery), and a web of has/uses/runs/likes
    relations.
    """
    rng = random.Random(seed)
    model = Model(load_metamodel("it-architecture"), name=f"it-model-{scale}")
    sbd = model.create_node("SystemBeingDesigned", label="SystemUnderDesign")

    users = []
    for index in range(scale):
        type_name = "Superuser" if index % 4 == 3 else "User"
        name = FIRST_NAMES[index % len(FIRST_NAMES)]
        user = model.create_node(
            type_name,
            label=f"{name}-{index}",
            firstName=name,
            birthYear=1950 + (index * 7) % 50,
        )
        users.append(user)
        model.connect(sbd, "has", user)

    programs = []
    for index in range(max(2, scale // 2)):
        word = PROGRAM_WORDS[index % len(PROGRAM_WORDS)]
        program = model.create_node(
            "Program", label=f"{word}D-{index}", version=f"{1 + index % 3}.{index % 10}"
        )
        programs.append(program)
        model.connect(sbd, "runs", program)

    servers = []
    for index in range(max(1, scale // 3)):
        server = model.create_node(
            "Server",
            label=f"srv-{index:03d}",
            cpuCount=2 ** (index % 5),
            memoryGb=4 * (1 + index % 8),
        )
        servers.append(server)
        model.connect(sbd, "has", server)
        model.connect(server, "runs", rng.choice(programs))

    documents = []
    for index in range(max(1, scale // 4)):
        document = model.create_node("Document", label=f"doc-{index:03d}")
        if not omit_some_versions or index % 3 != 0:
            document.set("version", f"0.{index}")
        documents.append(document)
        model.connect(sbd, "has", document)

    for index, user in enumerate(users):
        # users like a couple of other users; every third "favors" one.
        others = [u for u in users if u is not user]
        if others:
            model.connect(user, "likes", rng.choice(others))
            if index % 3 == 0:
                model.connect(user, "favors", rng.choice(others))
        model.connect(user, "uses", sbd)
        if programs and index % 2 == 0:
            # the advisory violation the paper highlights: Person uses
            # Program directly, bypassing the preferred phrasing.
            model.connect(user, "uses", rng.choice(programs))
    return model


def make_glass_catalog(pieces: int = 12, seed: int = 7) -> Model:
    """An antique-glass-catalog model with ``pieces`` glass pieces."""
    rng = random.Random(seed)
    model = Model(load_metamodel("glass-catalog"), name=f"glass-{pieces}")
    makers = [
        model.create_node("Maker", label=name, country="France" if i % 2 else "USA",
                          founded=1837 + i * 11)
        for i, name in enumerate(GLASS_MAKERS)
    ]
    styles = [model.create_node("Style", label=name) for name in GLASS_STYLES]
    customers = [
        model.create_node("Customer", label=f"{name} Q.", email=f"{name.lower()}@example.com")
        for name in FIRST_NAMES[:4]
    ]
    for index in range(pieces):
        kind = GLASS_KINDS[index % len(GLASS_KINDS)]
        piece = model.create_node(
            kind,
            label=f"{kind} #{index + 1}",
            year=1880 + (index * 13) % 80,
        )
        if index % 5 != 4:  # some pieces lack a price: an omission
            piece.set("priceDollars", 250 + (index * 97) % 4000)
        model.connect(piece, "madeBy", rng.choice(makers))
        model.connect(piece, "inStyle", rng.choice(styles))
        if index % 3 == 0:
            model.connect(piece, "soldTo", rng.choice(customers))
        if index % 2 == 0:
            model.connect(rng.choice(customers), "interestedIn", piece)
    return model


def make_awb_self_model(seed: int = 3) -> Model:
    """AWB describing itself: a small meta-level model."""
    model = Model(load_metamodel("awb-itself"), name="awb-itself")
    files = [
        model.create_node("MetamodelFile", label=name, path=f"metamodels/{name}.xml")
        for name in ("core", "it", "glass")
    ]
    node_defs = {}
    for name, parent in [
        ("Element", None), ("System", "Element"), ("Person", "Element"),
        ("User", "Person"), ("Document", "Element"),
    ]:
        node_def = model.create_node("NodeTypeDef", label=name)
        node_defs[name] = node_def
        model.connect(node_def, "definedIn", files[0])
        if parent is not None:
            model.connect(node_def, "extends", node_defs[parent])
    editor = model.create_node("EditorDef", label="FormEditor", widget="form")
    model.connect(node_defs["Person"], "editedBy", editor)
    for name in ("has", "uses", "likes"):
        relation_def = model.create_node("RelationTypeDef", label=name)
        model.connect(relation_def, "definedIn", files[1])
        model.connect(relation_def, "connectsFrom", node_defs["System"])
        model.connect(relation_def, "connectsTo", node_defs["Element"])
    return model
