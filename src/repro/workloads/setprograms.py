"""Set-encoding workloads for experiment E7.

"We decided to limit ourselves to a 'set of string' data structure, for
which sequences do work...  If we represent the two sets as XML structures
(which makes the basic operations several times as expensive)..."

Two XQuery set implementations over the same values:

* ``string`` — a flat sequence of strings, membership via the existential
  ``=`` (the representation the paper settled on);
* ``xml`` — each member wrapped in an ``<item value="..."/>`` element
  (the encoding needed once members stop being single atomics).

Each program folds ``$values`` into a set, then probes membership of every
value again, returning the final size.
"""

from __future__ import annotations

STRING_SET_PROGRAM = """
declare variable $values external;

declare function local:set-add($set, $value) {
  if ($set = $value) then $set else ($set, $value)
};

declare function local:add-all($set, $rest) {
  if (empty($rest)) then $set
  else local:add-all(local:set-add($set, $rest[1]), $rest[position() gt 1])
};

declare function local:count-members($set, $rest) {
  if (empty($rest)) then 0
  else (if ($set = $rest[1]) then 1 else 0)
       + local:count-members($set, $rest[position() gt 1])
};

let $set := local:add-all((), $values)
return (count($set), local:count-members($set, $values))
"""

XML_SET_PROGRAM = """
declare variable $values external;

declare function local:xset-member($set, $value) {
  some $i in $set satisfies string($i/@value) eq $value
};

declare function local:xset-add($set, $value) {
  if (local:xset-member($set, $value)) then $set
  else ($set, <item value="{$value}"/>)
};

declare function local:add-all($set, $rest) {
  if (empty($rest)) then $set
  else local:add-all(local:xset-add($set, $rest[1]), $rest[position() gt 1])
};

declare function local:count-members($set, $rest) {
  if (empty($rest)) then 0
  else (if (local:xset-member($set, $rest[1])) then 1 else 0)
       + local:count-members($set, $rest[position() gt 1])
};

let $set := local:add-all((), $values)
return (count($set), local:count-members($set, $values))
"""


def make_values(count: int, duplicate_every: int = 5):
    """``count`` strings with a duplicate every ``duplicate_every`` values."""
    values = []
    for index in range(count):
        if duplicate_every and index % duplicate_every == duplicate_every - 1:
            values.append(f"value-{max(0, index - 2):05d}")
        else:
            values.append(f"value-{index:05d}")
    return values
