"""Document templates for examples and benchmarks."""

from __future__ import annotations


def system_context_template() -> str:
    """A realistic System Context document: the paper's flagship workload."""
    return """<html>
<h1>System Context</h1>
<model-check/>
<table-of-contents/>
<section><heading>The System</heading>
  <for nodes="all.SystemBeingDesigned">
    <p>This document describes <b><label/></b> (<focus-id/>).</p>
  </for>
</section>
<section><heading>Users</heading>
  <ol>
    <for nodes="all.User" sort="label">
      <li>
        <if>
          <test><focus-is-type type="Superuser"/></test>
          <then><b><label/></b> (superuser)</then>
          <else><label/></else>
        </if>
      </li>
    </for>
  </ol>
</section>
<section><heading>Programs in Use</heading>
  <p>Who uses what: TABLE-1-GOES-HERE (generated).</p>
  <replace-phrase phrase="TABLE-1-GOES-HERE">
    <table rows="all.User" cols="all.Program" relation="uses"/>
  </replace-phrase>
</section>
<section><heading>Documents</heading>
  <ul>
    <for nodes="all.Document" sort="label">
      <li><label/> — version <property-value name="version" default="(none)"/></li>
    </for>
  </ul>
</section>
<section><heading>Favored colleagues</heading>
  <query>
    <start type="User"/>
    <follow relation="favors"/>
    <collect sort-by="label"/>
  </query>
</section>
<section><heading>Omissions</heading>
  <table-of-omissions types="User,Program,Document"/>
</section>
</html>"""


def simple_list_template(type_name: str) -> str:
    """A minimal template: a sorted list of labels of one type."""
    return f"""<html>
<ul>
  <for nodes="all.{type_name}" sort="label"><li><label/></li></for>
</ul>
</html>"""


def toc_heavy_template(sections: int) -> str:
    """Many sections; stresses the ToC machinery (experiment E4)."""
    parts = ["<html>", "<table-of-contents/>"]
    for index in range(sections):
        parts.append(
            f"<section><heading>Section {index:04d}</heading>"
            f"<p>Body of section {index}.</p>"
            "<for nodes=\"all.User\" sort=\"label\"><span><label/> </span></for>"
            "</section>"
        )
    parts.append("<table-of-omissions types=\"User\"/>")
    parts.append("</html>")
    return "\n".join(parts)


def table_template(rows_type: str, cols_type: str, relation: str) -> str:
    """Just the row/col table (experiment E5)."""
    return (
        f'<html><table rows="all.{rows_type}" cols="all.{cols_type}" '
        f'relation="{relation}"/></html>'
    )


def glass_catalog_template() -> str:
    """A catalogue document for the antique glass dealer retarget."""
    return """<html>
<h1>Catalogue of Antique Glass</h1>
<table-of-contents/>
<section><heading>Pieces for Sale</heading>
  <ul>
    <for nodes="all.GlassPiece" sort="label">
      <li>
        <b><label/></b>,
        <property-value name="year" default="year unknown"/> —
        $<property-value name="priceDollars" default="(price on request)"/>
        <if>
          <test><has-relation relation="soldTo"/></test>
          <then> <i>(SOLD)</i></then>
        </if>
      </li>
    </for>
  </ul>
</section>
<section><heading>Makers</heading>
  <ul>
    <for nodes="all.Maker" sort="label">
      <li><label/> (<property-value name="country" default="?"/>)</li>
    </for>
  </ul>
</section>
<section><heading>Unpriced Pieces</heading>
  <table-of-omissions types="GlassPiece"/>
</section>
</html>"""


def error_prone_template() -> str:
    """A template full of mistakes, exercising both error regimes."""
    return """<html>
<label/>
<for nodes="all.NoSuchType"><li><label/></li></for>
<for><li>missing the nodes attribute</li></for>
<if><then>no test element</then></if>
<for nodes="all.User">
  <property-value/>
  <property-value name="noSuchProperty"/>
</for>
<table rows="all.User" relation="uses"/>
</html>"""
