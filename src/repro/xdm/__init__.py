"""The XQuery Data Model (XDM): items, nodes, and flattening sequences.

This package is the substrate shared by the XML parser, the XQuery engine,
the mini-XSLT processor, and both document-generator implementations.
"""

from .items import (
    ATOMIC_TYPES,
    UntypedAtomic,
    atomic_type_name,
    format_decimal,
    format_double,
    is_atomic,
    parse_number,
    string_value_of_atomic,
)
from .nodes import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    Node,
    ProcessingInstructionNode,
    TextNode,
    element,
    is_node,
    sort_document_order,
)
from .sequence import (
    Sequence,
    atomize,
    effective_boolean_value,
    is_item,
    number_value,
    sequence,
    singleton,
    string_value,
)
from .types import (
    CastError,
    ItemType,
    SequenceType,
    atomic_type_derives_from,
    cast_atomic,
)
from .compare import (
    ComparisonTypeError,
    deep_equal,
    general_compare,
    value_compare,
)

__all__ = [
    "ATOMIC_TYPES",
    "AttributeNode",
    "CastError",
    "CommentNode",
    "ComparisonTypeError",
    "DocumentNode",
    "ElementNode",
    "ItemType",
    "Node",
    "ProcessingInstructionNode",
    "Sequence",
    "SequenceType",
    "TextNode",
    "UntypedAtomic",
    "atomic_type_derives_from",
    "atomic_type_name",
    "atomize",
    "cast_atomic",
    "deep_equal",
    "effective_boolean_value",
    "element",
    "format_decimal",
    "format_double",
    "general_compare",
    "is_atomic",
    "is_item",
    "is_node",
    "number_value",
    "parse_number",
    "sequence",
    "singleton",
    "sort_document_order",
    "string_value",
    "string_value_of_atomic",
    "value_compare",
]
