"""Comparison semantics: value comparisons, general comparisons, deep-equal.

The paper's fourth syntactic quirk lives here: "$x=$y is true if $x and $y
are sequences with at least one element in common: 1 = (1,2,3), and
(1,2,3)=3, but, of course, it is not the case that 1=3."  General
comparisons (``=``, ``!=``, ``<``...) are existential over atomized
operands; value comparisons (``eq``, ``ne``, ``lt``...) demand singletons.
"""

from __future__ import annotations

from decimal import Decimal
from typing import List, Optional

from .items import UntypedAtomic, untyped_to_double
from .nodes import AttributeNode, ElementNode, Node, TextNode
from .sequence import atomize


class ComparisonTypeError(TypeError):
    """Operands cannot be compared (engine maps this to XPTY0004)."""


_NUMERIC = (int, float, Decimal)


def _promote_pair(left: object, right: object) -> tuple:
    """Promote two atomic values to a common comparable type.

    Untyped data compares as string against strings, as number against
    numbers, and as the other operand's type in general — the draft rule
    the paper's project relied on in untyped mode.
    """
    if isinstance(left, UntypedAtomic) and isinstance(right, UntypedAtomic):
        return left.value, right.value
    if isinstance(left, UntypedAtomic):
        return _promote_untyped(left, right), right
    if isinstance(right, UntypedAtomic):
        return left, _promote_untyped(right, left)
    return left, right


def _promote_untyped(untyped: UntypedAtomic, other: object) -> object:
    if isinstance(other, bool):
        text = untyped.value.strip()
        if text in ("true", "1"):
            return True
        if text in ("false", "0"):
            return False
        raise ComparisonTypeError(f"cannot compare {untyped.value!r} with a boolean")
    if isinstance(other, _NUMERIC) and not isinstance(other, bool):
        try:
            return untyped_to_double(untyped)
        except ValueError as exc:
            raise ComparisonTypeError(
                f"cannot compare {untyped.value!r} with a number"
            ) from exc
    if isinstance(other, str):
        return untyped.value
    raise ComparisonTypeError(f"cannot compare {untyped.value!r} with {other!r}")


def _comparable(left: object, right: object) -> tuple:
    left, right = _promote_pair(left, right)
    left_is_num = isinstance(left, _NUMERIC) and not isinstance(left, bool)
    right_is_num = isinstance(right, _NUMERIC) and not isinstance(right, bool)
    if left_is_num and right_is_num:
        if isinstance(left, Decimal) and isinstance(right, float):
            return float(left), right
        if isinstance(right, Decimal) and isinstance(left, float):
            return left, float(right)
        return left, right
    if isinstance(left, bool) and isinstance(right, bool):
        return left, right
    if isinstance(left, str) and isinstance(right, str):
        return left, right
    raise ComparisonTypeError(
        f"cannot compare {type(left).__name__} with {type(right).__name__}"
    )


def value_compare(op: str, left: object, right: object) -> bool:
    """A value comparison (``eq ne lt le gt ge``) on two atomic items."""
    left, right = _comparable(left, right)
    if op == "eq":
        return left == right
    if op == "ne":
        return left != right
    if op == "lt":
        return left < right
    if op == "le":
        return left <= right
    if op == "gt":
        return left > right
    if op == "ge":
        return left >= right
    raise ValueError(f"unknown value comparison operator: {op}")


_GENERAL_TO_VALUE = {
    "=": "eq",
    "!=": "ne",
    "<": "lt",
    "<=": "le",
    ">": "gt",
    ">=": "ge",
}


def general_compare(op: str, left: List[object], right: List[object]) -> bool:
    """A general comparison: existential over the atomized operands.

    ``(1,2,3) = 3`` is true; ``(1,2) != (1,2)`` is also true (1 != 2), which
    is exactly the outlandishness the paper describes.  For general
    comparisons, untyped operands compared with numbers become numbers and
    otherwise become strings.
    """
    value_op = _GENERAL_TO_VALUE[op]
    left_atoms = atomize(left)
    right_atoms = atomize(right)
    for left_atom in left_atoms:
        for right_atom in right_atoms:
            try:
                if value_compare(value_op, left_atom, right_atom):
                    return True
            except ComparisonTypeError:
                raise
    return False


def deep_equal(left: List[object], right: List[object]) -> bool:
    """fn:deep-equal over two sequences."""
    if len(left) != len(right):
        return False
    return all(_deep_equal_item(a, b) for a, b in zip(left, right))


def _deep_equal_item(left: object, right: object) -> bool:
    if isinstance(left, Node) != isinstance(right, Node):
        return False
    if not isinstance(left, Node):
        try:
            return value_compare("eq", left, right)
        except ComparisonTypeError:
            return False
    return _deep_equal_node(left, right)


def _deep_equal_node(left: Node, right: Node) -> bool:
    if left.kind != right.kind:
        return False
    if isinstance(left, AttributeNode):
        return left.name == right.name and left.value == right.value
    if isinstance(left, TextNode):
        return left.text == right.text
    if isinstance(left, ElementNode) and isinstance(right, ElementNode):
        if left.name != right.name:
            return False
        left_attrs = {a.name: a.value for a in left.attributes}
        right_attrs = {a.name: a.value for a in right.attributes}
        if left_attrs != right_attrs:
            return False
        left_kids = _comparable_children(left)
        right_kids = _comparable_children(right)
        if len(left_kids) != len(right_kids):
            return False
        return all(_deep_equal_node(a, b) for a, b in zip(left_kids, right_kids))
    # documents compare by children; comments/PIs by text
    left_kids = _comparable_children(left)
    right_kids = _comparable_children(right)
    if left_kids or right_kids:
        if len(left_kids) != len(right_kids):
            return False
        return all(_deep_equal_node(a, b) for a, b in zip(left_kids, right_kids))
    return left.string_value() == right.string_value()


def _comparable_children(node: Node) -> List[Node]:
    """Children that participate in deep-equal (comments and PIs do not)."""
    return [
        child
        for child in node.children
        if child.kind in ("element", "text")
    ]


def node_sort_key(node: Node) -> tuple:
    return node.order_key()


def nodes_before(left: Node, right: Node) -> Optional[bool]:
    """Document-order ``<<`` on two nodes; None if in different trees."""
    left_key = left.order_key()
    right_key = right.order_key()
    if left_key[0] != right_key[0]:
        return None
    return left_key < right_key
