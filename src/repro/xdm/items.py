"""Atomic items of the XQuery Data Model (XDM).

The paper's engine (Galax, working from the 2004 draft) distinguishes three
kinds of values: scalars, XML nodes, and sequences.  This module defines the
scalar ("atomic") side.  Atomic values are represented directly as Python
values wherever a Python type matches the XML Schema type:

========================  =========================
XML Schema type           Python representation
========================  =========================
``xs:boolean``            ``bool``
``xs:integer``            ``int``
``xs:decimal``            ``decimal.Decimal``
``xs:double``             ``float``
``xs:string``             ``str``
``xs:untypedAtomic``      :class:`UntypedAtomic`
========================  =========================

``xs:untypedAtomic`` is the type of data extracted from schemaless XML (the
paper used XQuery "in the untyped mode").  It behaves like a string until an
operation forces a numeric or boolean reading.
"""

from __future__ import annotations

from decimal import Decimal, InvalidOperation


class UntypedAtomic:
    """A value of type ``xs:untypedAtomic``: schemaless XML text.

    Wraps the lexical string.  Comparisons and arithmetic on untyped values
    promote to the other operand's type (or to ``xs:double`` for arithmetic),
    per the XQuery draft the paper's project tracked.
    """

    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = str(value)

    def __repr__(self) -> str:
        return f"UntypedAtomic({self.value!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UntypedAtomic) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("UntypedAtomic", self.value))

    def __str__(self) -> str:
        return self.value


#: Python types that count as XDM atomic items.
ATOMIC_TYPES = (bool, int, float, Decimal, str, UntypedAtomic)


def is_atomic(value: object) -> bool:
    """True if *value* is an XDM atomic item."""
    return isinstance(value, ATOMIC_TYPES)


def atomic_type_name(value: object) -> str:
    """The ``xs:`` type name of an atomic item.

    ``bool`` must be tested before ``int`` because Python's bool is an int
    subclass, a classic trap in database value mapping.
    """
    if isinstance(value, bool):
        return "xs:boolean"
    if isinstance(value, int):
        return "xs:integer"
    if isinstance(value, Decimal):
        return "xs:decimal"
    if isinstance(value, float):
        return "xs:double"
    if isinstance(value, UntypedAtomic):
        return "xs:untypedAtomic"
    if isinstance(value, str):
        return "xs:string"
    raise TypeError(f"not an atomic item: {value!r}")


def string_value_of_atomic(value: object) -> str:
    """The canonical lexical form of an atomic item (fn:string semantics)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return format_double(value)
    if isinstance(value, Decimal):
        return format_decimal(value)
    if isinstance(value, (int, str)):
        return str(value)
    if isinstance(value, UntypedAtomic):
        return value.value
    raise TypeError(f"not an atomic item: {value!r}")


def format_double(value: float) -> str:
    """Serialize an ``xs:double`` roughly as the XQuery spec prescribes.

    Integral doubles print without a trailing ``.0`` (``3`` not ``3.0``);
    NaN and infinities use the XML Schema lexical forms.
    """
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "INF"
    if value == float("-inf"):
        return "-INF"
    if value == int(value) and abs(value) < 1e16:
        return str(int(value))
    return repr(value)


def format_decimal(value: Decimal) -> str:
    """Serialize an ``xs:decimal`` without exponent notation."""
    text = format(value, "f")
    if "." in text:
        text = text.rstrip("0").rstrip(".")
    return text or "0"


def parse_number(text: str) -> object:
    """Parse a numeric literal to the narrowest fitting XDM numeric type.

    Follows the XQuery literal rules: no dot and no exponent gives an
    ``xs:integer``; a dot gives ``xs:decimal``; an exponent gives
    ``xs:double``.  Raises ``ValueError`` for non-numeric text.
    """
    stripped = text.strip()
    if not stripped:
        raise ValueError("empty numeric literal")
    lowered = stripped.lower()
    if "e" in lowered or lowered in ("inf", "-inf", "nan"):
        return float(stripped.replace("INF", "inf"))
    if "." in stripped:
        try:
            return Decimal(stripped)
        except InvalidOperation as exc:
            raise ValueError(f"bad decimal literal: {text!r}") from exc
    return int(stripped)


def untyped_to_double(value: UntypedAtomic) -> float:
    """Promote an untyped atomic to ``xs:double`` (arithmetic promotion)."""
    text = value.value.strip()
    if text == "INF":
        return float("inf")
    if text == "-INF":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)
