"""XML node kinds of the XQuery Data Model.

Nodes have *identity* (two elements with equal content are distinct nodes),
a parent pointer, and a position in *document order*.  Attribute nodes are
first class here — the paper's troubles with attribute folding and with
putting attribute nodes into data structures are behaviours of real
attribute-node objects, not test fixtures.

Nodes are mutable (the "Java-style" document generator mutates trees in
place); the XQuery element constructor copies its content, giving fresh
identities, as the spec requires.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional

from .items import UntypedAtomic

_node_counter = itertools.count(1)

#: Shared empty result for index misses; never mutated.
_NO_NODES: List["Node"] = []


class Node:
    """Base class for all XDM node kinds."""

    kind = "node"

    __slots__ = ("parent", "_nid")

    def __init__(self) -> None:
        self.parent: Optional[Node] = None
        #: Monotonically increasing creation id; used to give a stable total
        #: order to nodes from different trees.
        self._nid = next(_node_counter)

    # -- naming ----------------------------------------------------------

    @property
    def name(self) -> Optional[str]:
        """The node's name, or None for unnamed kinds (text, document)."""
        return None

    # -- values ----------------------------------------------------------

    def string_value(self) -> str:
        """The node's string value (fn:string semantics)."""
        raise NotImplementedError

    def typed_value(self) -> object:
        """The node's typed value; untyped XML data yields untypedAtomic."""
        return UntypedAtomic(self.string_value())

    # -- structure -------------------------------------------------------

    @property
    def children(self) -> List["Node"]:
        return []

    @property
    def attributes(self) -> List["AttributeNode"]:
        return []

    def root(self) -> "Node":
        """The root of the tree containing this node."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def ancestors(self) -> Iterator["Node"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def descendants(self) -> Iterator["Node"]:
        """All descendants in document order (not including attributes)."""
        for child in self.children:
            yield child
            yield from child.descendants()

    def descendants_or_self(self) -> Iterator["Node"]:
        yield self
        yield from self.descendants()

    def following_siblings(self) -> Iterator["Node"]:
        if self.parent is None or isinstance(self, AttributeNode):
            return
        siblings = self.parent.children
        try:
            index = _identity_index(siblings, self)
        except ValueError:
            return
        yield from siblings[index + 1 :]

    def preceding_siblings(self) -> Iterator["Node"]:
        """Preceding siblings in reverse document order, as the axis does."""
        if self.parent is None or isinstance(self, AttributeNode):
            return
        siblings = self.parent.children
        try:
            index = _identity_index(siblings, self)
        except ValueError:
            return
        yield from reversed(siblings[:index])

    def copy(self) -> "Node":
        """A deep copy with fresh identity and no parent."""
        raise NotImplementedError

    # -- document order ---------------------------------------------------

    def order_key(self) -> tuple:
        """A tuple that sorts nodes in document order.

        Nodes in different trees order by their root's creation id, matching
        the spec's "implementation-defined but stable" requirement.  Within a
        tree the key is the path of child indexes from the root; attributes
        sort directly after their owner element, before its children.
        """
        path: List[tuple] = []
        node: Node = self
        while node.parent is not None:
            parent = node.parent
            if isinstance(node, AttributeNode):
                position = (0, _identity_index(parent.attributes, node))
            else:
                position = (1, _identity_index(parent.children, node))
            path.append(position)
            node = parent
        path.reverse()
        return (node._nid, tuple(path))


def _identity_index(nodes: List[Node], target: Node) -> int:
    """Index of *target* in *nodes* by identity, not equality."""
    for index, node in enumerate(nodes):
        if node is target:
            return index
    raise ValueError("node is not among its parent's children")


class DocumentNode(Node):
    """A document node: the invisible root above the document element."""

    kind = "document"

    __slots__ = ("_children",)

    def __init__(self, children: Optional[List[Node]] = None):
        super().__init__()
        self._children: List[Node] = []
        for child in children or []:
            self.append(child)

    @property
    def children(self) -> List[Node]:
        return self._children

    def append(self, child: Node) -> None:
        child.parent = self
        self._children.append(child)

    def document_element(self) -> Optional["ElementNode"]:
        for child in self._children:
            if isinstance(child, ElementNode):
                return child
        return None

    def string_value(self) -> str:
        return "".join(child.string_value() for child in self._children)

    def copy(self) -> "DocumentNode":
        return DocumentNode([child.copy() for child in self._children])

    def __repr__(self) -> str:
        return f"<document #{self._nid}>"


class ElementNode(Node):
    """An element node with attributes and ordered children.

    Besides the plain child/attribute lists, an element keeps two lazily
    built indexes — child elements by name and attribute nodes by name —
    so the hot axis steps of the closure-compiled XQuery backend (and
    ``get_attribute``) are O(1) dict hits instead of O(children) scans.
    Every mutation path through this class invalidates them; code that
    must mutate the raw lists directly (the Galax duplicate-attribute
    quirk) goes through :meth:`append_duplicate_attribute` so the caches
    can never go stale.
    """

    kind = "element"

    __slots__ = ("_name", "_attributes", "_children", "_child_index", "_attr_index")

    def __init__(
        self,
        name: str,
        attributes: Optional[List["AttributeNode"]] = None,
        children: Optional[List[Node]] = None,
    ):
        super().__init__()
        self._name = name
        self._attributes: List[AttributeNode] = []
        self._children: List[Node] = []
        self._child_index: Optional[dict] = None
        self._attr_index: Optional[dict] = None
        for attribute in attributes or []:
            self.set_attribute_node(attribute)
        for child in children or []:
            self.append(child)

    @property
    def name(self) -> str:
        return self._name

    @name.setter
    def name(self, value: str) -> None:
        self._name = value
        parent = self.parent
        if isinstance(parent, ElementNode):
            parent._child_index = None

    @property
    def attributes(self) -> List["AttributeNode"]:
        return self._attributes

    @property
    def children(self) -> List[Node]:
        return self._children

    # -- mutation (used by the Java-style generator) ----------------------

    def append(self, child: Node) -> None:
        """Append a child node, reparenting it to this element."""
        if isinstance(child, AttributeNode):
            raise TypeError("attribute nodes are not children; use set_attribute_node")
        child.parent = self
        self._children.append(child)
        self._child_index = None

    def insert(self, index: int, child: Node) -> None:
        child.parent = self
        self._children.insert(index, child)
        self._child_index = None

    def remove(self, child: Node) -> None:
        self._children.remove(child)
        child.parent = None
        self._child_index = None

    def replace_child(self, old: Node, replacements: List[Node]) -> None:
        """Replace *old* with *replacements*, splicing them in place."""
        index = _identity_index(self._children, old)
        old.parent = None
        for replacement in replacements:
            replacement.parent = self
        self._children[index : index + 1] = replacements
        self._child_index = None

    def set_attribute_node(self, attribute: "AttributeNode") -> None:
        """Attach an attribute node; a same-named existing one is replaced."""
        self._attr_index = None
        for index, existing in enumerate(self._attributes):
            if existing.name == attribute.name:
                existing.parent = None
                attribute.parent = self
                self._attributes[index] = attribute
                return
        attribute.parent = self
        self._attributes.append(attribute)

    def append_duplicate_attribute(self, attribute: "AttributeNode") -> None:
        """Attach an attribute *without* replacing a same-named one.

        This violates the data model on purpose: it is how the evaluator's
        ``duplicate_attribute_mode="keep"`` reproduces the Galax bug where
        both duplicates survive.  Routing the quirk through here keeps the
        attribute index honest.
        """
        attribute.parent = self
        self._attributes.append(attribute)
        self._attr_index = None

    def set_attribute(self, name: str, value: str) -> None:
        self.set_attribute_node(AttributeNode(name, value))

    def get_attribute(self, name: str) -> Optional[str]:
        matches = self._attribute_index().get(name)
        return matches[0].value if matches else None

    # -- lazy name indexes -------------------------------------------------

    def _child_element_index(self) -> dict:
        index = self._child_index
        if index is None:
            index = {}
            for child in self._children:
                if isinstance(child, ElementNode):
                    index.setdefault(child._name, []).append(child)
            self._child_index = index
        return index

    def _attribute_index(self) -> dict:
        index = self._attr_index
        if index is None:
            index = {}
            for attribute in self._attributes:
                index.setdefault(attribute.name, []).append(attribute)
            self._attr_index = index
        return index

    def children_by_name(self, name: str) -> List["ElementNode"]:
        """Child elements named *name*, in document order — O(1) amortized.

        Returns an internal index list; callers must not mutate it.
        """
        index = self._child_index
        if index is None:
            index = self._child_element_index()
        return index.get(name, _NO_NODES)

    def attributes_by_name(self, name: str) -> List["AttributeNode"]:
        """Attribute nodes named *name* (plural only in ``keep`` quirk mode).

        Returns an internal index list; callers must not mutate it.
        """
        index = self._attr_index
        if index is None:
            index = self._attribute_index()
        return index.get(name, _NO_NODES)

    # -- convenience -------------------------------------------------------

    def child_elements(self, name: Optional[str] = None) -> List["ElementNode"]:
        """Child elements, optionally filtered by name."""
        if name is not None:
            return list(self.children_by_name(name))
        return [child for child in self._children if isinstance(child, ElementNode)]

    def first_child_element(self, name: str) -> Optional["ElementNode"]:
        matches = self.children_by_name(name)
        return matches[0] if matches else None

    def string_value(self) -> str:
        return "".join(
            child.string_value()
            for child in self._children
            if not isinstance(child, (CommentNode, ProcessingInstructionNode))
        )

    def copy(self) -> "ElementNode":
        return ElementNode(
            self._name,
            [attribute.copy() for attribute in self._attributes],
            [child.copy() for child in self._children],
        )

    def __repr__(self) -> str:
        return f"<element {self._name} #{self._nid}>"


class AttributeNode(Node):
    """An attribute node: a name bound to a string value.

    "Logically, it is nothing more than a mapping of a single string name to
    a single string value.  Illogically, it caused us a great deal of
    trouble." — the paper.  The trouble (folding into constructors, refusal
    to sit in sequences usefully) is reproduced in the evaluator.
    """

    kind = "attribute"

    __slots__ = ("_name", "value")

    def __init__(self, name: str, value: str):
        super().__init__()
        self._name = name
        self.value = str(value)

    @property
    def name(self) -> str:
        return self._name

    def string_value(self) -> str:
        return self.value

    def copy(self) -> "AttributeNode":
        return AttributeNode(self._name, self.value)

    def __repr__(self) -> str:
        return f"<attribute {self._name}={self.value!r} #{self._nid}>"


class TextNode(Node):
    """A text node."""

    kind = "text"

    __slots__ = ("text",)

    def __init__(self, text: str):
        super().__init__()
        self.text = str(text)

    def string_value(self) -> str:
        return self.text

    def copy(self) -> "TextNode":
        return TextNode(self.text)

    def __repr__(self) -> str:
        return f"<text {self.text!r} #{self._nid}>"


class CommentNode(Node):
    """A comment node."""

    kind = "comment"

    __slots__ = ("text",)

    def __init__(self, text: str):
        super().__init__()
        self.text = str(text)

    def string_value(self) -> str:
        return self.text

    def typed_value(self) -> object:
        return self.text

    def copy(self) -> "CommentNode":
        return CommentNode(self.text)

    def __repr__(self) -> str:
        return f"<!--{self.text!r}-->"


class ProcessingInstructionNode(Node):
    """A processing-instruction node."""

    kind = "processing-instruction"

    __slots__ = ("target", "text")

    def __init__(self, target: str, text: str):
        super().__init__()
        self.target = target
        self.text = str(text)

    @property
    def name(self) -> str:
        return self.target

    def string_value(self) -> str:
        return self.text

    def typed_value(self) -> object:
        return self.text

    def copy(self) -> "ProcessingInstructionNode":
        return ProcessingInstructionNode(self.target, self.text)

    def __repr__(self) -> str:
        return f"<?{self.target} {self.text!r}?>"


def is_node(value: object) -> bool:
    """True if *value* is an XDM node."""
    return isinstance(value, Node)


def sort_document_order(nodes: List[Node]) -> List[Node]:
    """Sort nodes into document order and remove duplicates by identity.

    This is the normalization every XPath path step applies to its result.
    """
    seen = set()
    unique: List[Node] = []
    for node in nodes:
        if id(node) not in seen:
            seen.add(id(node))
            unique.append(node)
    return sorted(unique, key=Node.order_key)


def element(name: str, *content, **attributes) -> ElementNode:
    """Terse element construction for tests and Python-side tree building.

    Positional arguments may be nodes (attached as children), strings
    (wrapped in text nodes), or lists of either.  Keyword arguments become
    attributes; trailing underscores are stripped so reserved words work
    (``class_="x"``).
    """
    node = ElementNode(name)
    for key, value in attributes.items():
        node.set_attribute(key.rstrip("_").replace("_", "-"), str(value))
    _attach_content(node, content)
    return node


def _attach_content(node: ElementNode, content) -> None:
    for part in content:
        if part is None:
            continue
        if isinstance(part, (list, tuple)):
            _attach_content(node, part)
        elif isinstance(part, AttributeNode):
            node.set_attribute_node(part)
        elif isinstance(part, Node):
            node.append(part)
        else:
            node.append(TextNode(str(part)))
