"""Sequences: the universal value shape of XQuery.

"Actually, everything in XQuery is a sequence — there is no distinction
between a single value and a length-one sequence containing that value."
Sequences are *flat*: nesting one sequence in another washes the structure
out — ``(1,(2,3,4),(),(5,((6,7)))) = (1,2,3,4,5,6,7)``.

Internally the engine represents a sequence as a plain Python list of items
(atomics or nodes).  This module is the one place that knows the flattening
rule; every constructor of sequence values goes through :func:`sequence`.
"""

from __future__ import annotations

from typing import Iterable, List

from .items import (
    UntypedAtomic,
    is_atomic,
    string_value_of_atomic,
    untyped_to_double,
)
from .nodes import is_node

#: A sequence value: a flat list of items.
Sequence = List[object]


def is_item(value: object) -> bool:
    """True if *value* is a single XDM item (atomic or node)."""
    return is_atomic(value) or is_node(value)


def sequence(*parts) -> Sequence:
    """Build a flat sequence from items and/or nested iterables.

    Nested lists and tuples are flattened away, reproducing the paper's
    central data-structure complaint: ``sequence([1, 2], [3, 4])`` is
    ``[1, 2, 3, 4]`` — the pair structure is unrecoverable.
    """
    result: Sequence = []
    _flatten_into(result, parts)
    return result


def _flatten_into(result: Sequence, parts: Iterable) -> None:
    for part in parts:
        if part is None:
            continue
        if is_item(part):
            result.append(part)
        elif isinstance(part, (list, tuple)):
            _flatten_into(result, part)
        else:
            raise TypeError(f"not an XDM item or sequence: {part!r}")


def singleton(value: Sequence, context: str = "value") -> object:
    """The single item of a length-one sequence.

    Raises ``ValueError`` otherwise; callers in the engine convert this to
    the proper XQuery error code.
    """
    if len(value) != 1:
        raise ValueError(f"{context}: expected a singleton, got {len(value)} items")
    return value[0]


def atomize(value: Sequence) -> Sequence:
    """fn:data — replace every node by its typed value."""
    result: Sequence = []
    for item in value:
        if is_node(item):
            typed = item.typed_value()
            if isinstance(typed, (list, tuple)):
                result.extend(typed)
            else:
                result.append(typed)
        else:
            result.append(item)
    return result


def effective_boolean_value(value: Sequence) -> bool:
    """The effective boolean value (EBV) of a sequence.

    Empty is false; a sequence whose first item is a node is true; a
    singleton boolean/number/string follows the usual truthiness; anything
    else is a type error (``FORG0006`` at the engine level).
    """
    if not value:
        return False
    first = value[0]
    if is_node(first):
        return True
    if len(value) > 1:
        raise ValueError("effective boolean value of a multi-item atomic sequence")
    if isinstance(first, bool):
        return first
    if isinstance(first, (int, float)):
        return first != 0 and first == first  # NaN is false
    if isinstance(first, str):
        return len(first) > 0
    if isinstance(first, UntypedAtomic):
        return len(first.value) > 0
    from decimal import Decimal

    if isinstance(first, Decimal):
        return first != 0
    raise ValueError(f"no effective boolean value for {first!r}")


def string_value(value: Sequence) -> str:
    """fn:string of a sequence: empty gives "", a singleton its lexical form."""
    if not value:
        return ""
    item = singleton(value, "fn:string")
    if is_node(item):
        return item.string_value()
    return string_value_of_atomic(item)


def number_value(value: Sequence) -> float:
    """fn:number — convert to xs:double, NaN on failure or empty."""
    if not value:
        return float("nan")
    try:
        item = singleton(value, "fn:number")
    except ValueError:
        return float("nan")
    atoms = atomize([item])
    if not atoms:
        return float("nan")
    atom = atoms[0]
    try:
        if isinstance(atom, bool):
            return 1.0 if atom else 0.0
        if isinstance(atom, (int, float)):
            return float(atom)
        from decimal import Decimal

        if isinstance(atom, Decimal):
            return float(atom)
        if isinstance(atom, UntypedAtomic):
            return untyped_to_double(atom)
        if isinstance(atom, str):
            return untyped_to_double(UntypedAtomic(atom))
    except (ValueError, ArithmeticError):
        return float("nan")
    return float("nan")
