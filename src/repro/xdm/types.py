"""A subset of the XQuery / XML Schema type system.

The paper calls the full system "extensive, almost baroque" — twenty-three
primitive types, forty-nine predefined ones, two notions of inheritance.  We
implement the fragment the project actually touched ("we never used anything
but strings, numbers, and booleans") plus enough of the derivation hierarchy
to make sequence-type matching and casting meaningful, so that the "untyped
mode" the paper retreated to is a choice rather than the only possibility.
"""

from __future__ import annotations

from decimal import Decimal, InvalidOperation
from typing import Dict, List, Optional

from .items import UntypedAtomic, is_atomic, string_value_of_atomic
from .nodes import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    Node,
    ProcessingInstructionNode,
    TextNode,
)

#: parent links of the atomic-type hierarchy (child -> base type).
ATOMIC_HIERARCHY: Dict[str, Optional[str]] = {
    "xs:anyAtomicType": None,
    "xs:untypedAtomic": "xs:anyAtomicType",
    "xs:string": "xs:anyAtomicType",
    "xs:boolean": "xs:anyAtomicType",
    "xs:double": "xs:anyAtomicType",
    "xs:decimal": "xs:anyAtomicType",
    "xs:integer": "xs:decimal",
    "xs:nonNegativeInteger": "xs:integer",
    "xs:positiveInteger": "xs:nonNegativeInteger",
}


def atomic_type_derives_from(name: str, base: str) -> bool:
    """True if atomic type *name* is *base* or derives from it."""
    current: Optional[str] = name
    while current is not None:
        if current == base:
            return True
        current = ATOMIC_HIERARCHY.get(current)
    return False


class ItemType:
    """An item type: ``item()``, a node kind test, or an atomic type name."""

    ITEM = "item"
    NODE = "node"
    ATOMIC = "atomic"

    def __init__(self, category: str, name: Optional[str] = None, node_kind: Optional[str] = None):
        self.category = category
        self.name = name
        self.node_kind = node_kind

    @classmethod
    def item(cls) -> "ItemType":
        return cls(cls.ITEM)

    @classmethod
    def atomic(cls, name: str) -> "ItemType":
        return cls(cls.ATOMIC, name=name)

    @classmethod
    def node(cls, kind: Optional[str] = None, name: Optional[str] = None) -> "ItemType":
        return cls(cls.NODE, name=name, node_kind=kind)

    def matches(self, item: object) -> bool:
        """True if *item* is an instance of this item type."""
        if self.category == self.ITEM:
            return True
        if self.category == self.NODE:
            if not isinstance(item, Node):
                return False
            if self.node_kind is not None and item.kind != self.node_kind:
                return False
            if self.name is not None and item.name != self.name:
                return False
            return True
        # atomic
        if not is_atomic(item):
            return False
        from .items import atomic_type_name

        return atomic_type_derives_from(atomic_type_name(item), self.name or "")

    def __repr__(self) -> str:
        if self.category == self.ITEM:
            return "item()"
        if self.category == self.NODE:
            kind = self.node_kind or "node"
            return f"{kind}({self.name or ''})"
        return self.name or "xs:anyAtomicType"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ItemType)
            and (self.category, self.name, self.node_kind)
            == (other.category, other.name, other.node_kind)
        )

    def __hash__(self) -> int:
        return hash((self.category, self.name, self.node_kind))


class SequenceType:
    """An item type plus an occurrence indicator: ``?``, ``*``, ``+`` or one.

    ``empty-sequence()`` is represented with ``item_type=None``.
    """

    EXACTLY_ONE = ""
    ZERO_OR_ONE = "?"
    ZERO_OR_MORE = "*"
    ONE_OR_MORE = "+"

    def __init__(self, item_type: Optional[ItemType], occurrence: str = EXACTLY_ONE):
        self.item_type = item_type
        self.occurrence = occurrence

    @classmethod
    def empty(cls) -> "SequenceType":
        return cls(None)

    def matches(self, value: List[object]) -> bool:
        """True if the sequence *value* is an instance of this type."""
        if self.item_type is None:
            return len(value) == 0
        if self.occurrence == self.EXACTLY_ONE and len(value) != 1:
            return False
        if self.occurrence == self.ZERO_OR_ONE and len(value) > 1:
            return False
        if self.occurrence == self.ONE_OR_MORE and len(value) == 0:
            return False
        return all(self.item_type.matches(item) for item in value)

    def __repr__(self) -> str:
        if self.item_type is None:
            return "empty-sequence()"
        return f"{self.item_type!r}{self.occurrence}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SequenceType)
            and self.item_type == other.item_type
            and self.occurrence == other.occurrence
        )

    def __hash__(self) -> int:
        return hash((self.item_type, self.occurrence))


class CastError(ValueError):
    """A cast between atomic types failed (engine maps this to FORG0001)."""


def cast_atomic(value: object, target: str) -> object:
    """Cast an atomic item to the named atomic type.

    Implements the casting table for the types we support; unsupported
    targets or unparsable lexical forms raise :class:`CastError`.
    """
    lexical = string_value_of_atomic(value)
    try:
        if target == "xs:string":
            return lexical
        if target == "xs:untypedAtomic":
            return UntypedAtomic(lexical)
        if target == "xs:boolean":
            return _cast_boolean(value, lexical)
        if target == "xs:double":
            return _cast_double(value, lexical)
        if target == "xs:decimal":
            if isinstance(value, bool):
                return Decimal(1 if value else 0)
            return Decimal(lexical)
        if target in ("xs:integer", "xs:nonNegativeInteger", "xs:positiveInteger"):
            result = _cast_integer(value, lexical)
            if target == "xs:nonNegativeInteger" and result < 0:
                raise CastError(f"{result} is negative")
            if target == "xs:positiveInteger" and result <= 0:
                raise CastError(f"{result} is not positive")
            return result
    except (ValueError, InvalidOperation, OverflowError) as exc:
        raise CastError(f"cannot cast {lexical!r} to {target}") from exc
    raise CastError(f"unsupported cast target: {target}")


def _cast_boolean(value: object, lexical: str) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float, Decimal)):
        return value != 0
    text = lexical.strip()
    if text in ("true", "1"):
        return True
    if text in ("false", "0"):
        return False
    raise CastError(f"cannot cast {lexical!r} to xs:boolean")


def _cast_double(value: object, lexical: str) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, Decimal):
        return float(value)
    text = lexical.strip()
    if text == "INF":
        return float("inf")
    if text == "-INF":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)


def _cast_integer(value: object, lexical: str) -> int:
    if isinstance(value, bool):
        return 1 if value else 0
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise CastError(f"cannot cast {value!r} to xs:integer")
        return int(value)
    if isinstance(value, Decimal):
        return int(value)
    return int(lexical.strip())


#: node-kind test names usable in sequence types, mapped to node classes.
NODE_KIND_CLASSES = {
    "node": Node,
    "element": ElementNode,
    "attribute": AttributeNode,
    "text": TextNode,
    "document-node": DocumentNode,
    "comment": CommentNode,
    "processing-instruction": ProcessingInstructionNode,
}
