"""From-scratch XML 1.0 reading and writing over XDM trees."""

from .lexer import Lexer, Token, XmlSyntaxError, decode_entities
from .parser import parse_document, parse_element
from .serializer import escape_attribute, escape_text, serialize

__all__ = [
    "Lexer",
    "Token",
    "XmlSyntaxError",
    "decode_entities",
    "escape_attribute",
    "escape_text",
    "parse_document",
    "parse_element",
    "serialize",
]
