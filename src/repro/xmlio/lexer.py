"""A from-scratch XML 1.0 tokenizer.

The reproduction builds its own XML layer rather than leaning on a library:
the paper's engine works on first-class attribute nodes, document order, and
node identity, which we control end to end.  The lexer produces a flat token
stream; :mod:`repro.xmlio.parser` assembles XDM trees from it.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple


class XmlSyntaxError(ValueError):
    """Malformed XML input."""

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class Token(NamedTuple):
    """One XML token.

    ``kind`` is one of: ``start_open`` (``<name``), ``start_close`` (``>``),
    ``empty_close`` (``/>``), ``end_tag`` (``</name>``), ``attribute``
    (name/value pair), ``text``, ``comment``, ``pi``, ``cdata``, ``eof``.
    """

    kind: str
    value: str
    extra: str = ""
    position: int = 0


_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")

CHAR_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "quot": '"',
    "apos": "'",
}


def decode_entities(text: str, where: "Lexer" = None, position: int = 0) -> str:
    """Replace XML character/entity references in *text*."""
    if "&" not in text:
        return text
    out = []
    index = 0
    while index < len(text):
        char = text[index]
        if char != "&":
            out.append(char)
            index += 1
            continue
        end = text.find(";", index + 1)
        if end < 0:
            _raise(where, "unterminated entity reference", position + index)
        name = text[index + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in CHAR_ENTITIES:
            out.append(CHAR_ENTITIES[name])
        else:
            _raise(where, f"unknown entity &{name};", position + index)
        index = end + 1
    return "".join(out)


def _raise(lexer: "Lexer", message: str, position: int) -> None:
    if lexer is None:
        raise XmlSyntaxError(message, position, 0, 0)
    lexer.error(message, position)


class Lexer:
    """Tokenizes an XML document string."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str, position: int = None) -> None:
        position = self.pos if position is None else position
        line = self.text.count("\n", 0, position) + 1
        column = position - (self.text.rfind("\n", 0, position) + 1) + 1
        raise XmlSyntaxError(message, position, line, column)

    def tokens(self) -> Iterator[Token]:
        """Yield the token stream, ending with an ``eof`` token."""
        text = self.text
        while self.pos < len(text):
            start = self.pos
            if text[self.pos] == "<":
                yield from self._markup(start)
            else:
                end = text.find("<", self.pos)
                if end < 0:
                    end = len(text)
                raw = text[self.pos : end]
                self.pos = end
                yield Token("text", decode_entities(raw, self, start), position=start)
        yield Token("eof", "", position=self.pos)

    # -- markup ------------------------------------------------------------

    def _markup(self, start: int) -> Iterator[Token]:
        text = self.text
        if text.startswith("<!--", self.pos):
            end = text.find("-->", self.pos + 4)
            if end < 0:
                self.error("unterminated comment", start)
            yield Token("comment", text[self.pos + 4 : end], position=start)
            self.pos = end + 3
        elif text.startswith("<![CDATA[", self.pos):
            end = text.find("]]>", self.pos + 9)
            if end < 0:
                self.error("unterminated CDATA section", start)
            yield Token("cdata", text[self.pos + 9 : end], position=start)
            self.pos = end + 3
        elif text.startswith("<?", self.pos):
            end = text.find("?>", self.pos + 2)
            if end < 0:
                self.error("unterminated processing instruction", start)
            body = text[self.pos + 2 : end]
            target, _, rest = body.partition(" ")
            yield Token("pi", target, rest.strip(), position=start)
            self.pos = end + 2
        elif text.startswith("<!DOCTYPE", self.pos):
            self._skip_doctype(start)
        elif text.startswith("</", self.pos):
            self.pos += 2
            name = self._name()
            self._skip_space()
            self._expect(">")
            yield Token("end_tag", name, position=start)
        else:
            self.pos += 1
            name = self._name()
            yield Token("start_open", name, position=start)
            yield from self._attributes()

    def _attributes(self) -> Iterator[Token]:
        text = self.text
        while True:
            self._skip_space()
            if self.pos >= len(text):
                self.error("unterminated start tag")
            if text.startswith("/>", self.pos):
                self.pos += 2
                yield Token("empty_close", "", position=self.pos)
                return
            if text[self.pos] == ">":
                self.pos += 1
                yield Token("start_close", "", position=self.pos)
                return
            attr_start = self.pos
            name = self._name()
            self._skip_space()
            self._expect("=")
            self._skip_space()
            value = self._quoted_value(attr_start)
            yield Token("attribute", name, value, position=attr_start)

    def _quoted_value(self, start: int) -> str:
        text = self.text
        if self.pos >= len(text) or text[self.pos] not in "\"'":
            self.error("expected quoted attribute value", start)
        quote = text[self.pos]
        end = text.find(quote, self.pos + 1)
        if end < 0:
            self.error("unterminated attribute value", start)
        raw = text[self.pos + 1 : end]
        self.pos = end + 1
        return decode_entities(raw, self, start)

    def _name(self) -> str:
        text = self.text
        start = self.pos
        if self.pos >= len(text) or text[self.pos] not in _NAME_START:
            self.error("expected a name")
        while self.pos < len(text) and text[self.pos] in _NAME_CHARS:
            self.pos += 1
        return text[start : self.pos]

    def _skip_space(self) -> None:
        text = self.text
        while self.pos < len(text) and text[self.pos] in " \t\r\n":
            self.pos += 1

    def _skip_doctype(self, start: int) -> None:
        # A DOCTYPE may contain a bracketed internal subset; skip it whole.
        depth = 0
        text = self.text
        while self.pos < len(text):
            char = text[self.pos]
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
            elif char == ">" and depth <= 0:
                self.pos += 1
                return
            self.pos += 1
        self.error("unterminated DOCTYPE", start)

    def _expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            self.error(f"expected {literal!r}")
        self.pos += len(literal)
