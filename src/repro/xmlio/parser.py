"""XML parser: token stream → XDM node trees."""

from __future__ import annotations

from typing import List, Optional

from ..xdm import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    Node,
    ProcessingInstructionNode,
    TextNode,
)
from .lexer import Lexer, Token, XmlSyntaxError


def parse_document(text: str, keep_whitespace_text: bool = False) -> DocumentNode:
    """Parse an XML document string into a :class:`DocumentNode`.

    Whitespace-only text between elements is dropped by default (it is
    formatting, not data, for the AWB export and template formats); pass
    ``keep_whitespace_text=True`` to preserve it.
    """
    parser = _Parser(text, keep_whitespace_text)
    return parser.parse()


def parse_element(text: str, keep_whitespace_text: bool = False) -> ElementNode:
    """Parse an XML fragment with a single root element."""
    document = parse_document(text, keep_whitespace_text)
    root = document.document_element()
    if root is None:
        raise XmlSyntaxError("document has no element", 0, 1, 1)
    return root


class _Parser:
    def __init__(self, text: str, keep_whitespace_text: bool):
        self._lexer = Lexer(text)
        self._tokens = self._lexer.tokens()
        self._keep_ws = keep_whitespace_text
        self._pushed: Optional[Token] = None

    def parse(self) -> DocumentNode:
        document = DocumentNode()
        stack: List[ElementNode] = []

        def attach(node: Node) -> None:
            if stack:
                stack[-1].append(node)
            else:
                document.append(node)

        while True:
            token = self._next()
            if token.kind == "eof":
                break
            if token.kind == "start_open":
                element = ElementNode(token.value)
                self._read_attributes(element)
                closer = self._next()
                attach(element)
                if closer.kind == "start_close":
                    stack.append(element)
                elif closer.kind != "empty_close":
                    self._lexer.error("malformed start tag", closer.position)
            elif token.kind == "end_tag":
                if not stack:
                    self._lexer.error(
                        f"closing tag </{token.value}> with no open element",
                        token.position,
                    )
                open_element = stack.pop()
                if open_element.name != token.value:
                    self._lexer.error(
                        f"mismatched tag: <{open_element.name}> closed by </{token.value}>",
                        token.position,
                    )
            elif token.kind == "text":
                if self._keep_ws or token.value.strip():
                    attach(TextNode(token.value))
            elif token.kind == "cdata":
                attach(TextNode(token.value))
            elif token.kind == "comment":
                attach(CommentNode(token.value))
            elif token.kind == "pi":
                if token.value.lower() != "xml":  # drop the XML declaration
                    attach(ProcessingInstructionNode(token.value, token.extra))
        if stack:
            self._lexer.error(f"unclosed element <{stack[-1].name}>", len(self._lexer.text))
        if document.document_element() is None:
            self._lexer.error("document has no element", 0)
        return document

    def _read_attributes(self, element: ElementNode) -> None:
        while True:
            token = self._next()
            if token.kind != "attribute":
                self._pushed = token
                return
            if element.get_attribute(token.value) is not None:
                self._lexer.error(
                    f"duplicate attribute {token.value!r}", token.position
                )
            element.set_attribute_node(AttributeNode(token.value, token.extra))

    def _next(self) -> Token:
        if self._pushed is not None:
            token, self._pushed = self._pushed, None
            return token
        return next(self._tokens)
