"""XML serializer: XDM node trees → text."""

from __future__ import annotations

from typing import List

from ..xdm import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    Node,
    ProcessingInstructionNode,
    TextNode,
)


def escape_text(text: str) -> str:
    """Escape character data for element content."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(text: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
    )


def serialize(node: Node, indent: bool = False, xml_declaration: bool = False) -> str:
    """Serialize a node (or document) to XML text.

    With ``indent=True``, element-only content is pretty-printed; mixed
    content is left alone so text round-trips byte for byte.
    """
    parts: List[str] = []
    if xml_declaration:
        parts.append('<?xml version="1.0" encoding="UTF-8"?>')
        if not indent:
            parts.append("\n")
    if isinstance(node, DocumentNode):
        for child in node.children:
            _serialize_into(parts, child, indent, 0)
    else:
        _serialize_into(parts, node, indent, 0)
    text = "".join(parts)
    return text.lstrip("\n") if indent else text


def _serialize_into(parts: List[str], node: Node, indent: bool, depth: int) -> None:
    pad = "\n" + "  " * depth if indent else ""
    if isinstance(node, ElementNode):
        parts.append(pad)
        parts.append(f"<{node.name}")
        for attribute in node.attributes:
            parts.append(f' {attribute.name}="{escape_attribute(attribute.value)}"')
        if not node.children:
            parts.append("/>")
            return
        parts.append(">")
        children_all_elements = indent and all(
            not isinstance(child, TextNode) for child in node.children
        )
        for child in node.children:
            _serialize_into(
                parts, child, children_all_elements, depth + 1
            )
        if children_all_elements:
            parts.append("\n" + "  " * depth)
        parts.append(f"</{node.name}>")
    elif isinstance(node, TextNode):
        parts.append(escape_text(node.text))
    elif isinstance(node, CommentNode):
        parts.append(pad)
        parts.append(f"<!--{node.text}-->")
    elif isinstance(node, ProcessingInstructionNode):
        parts.append(pad)
        parts.append(f"<?{node.target} {node.text}?>")
    elif isinstance(node, AttributeNode):
        # A bare attribute node outside an element has no XML serialization;
        # mirror common engine behaviour with a name="value" rendering.
        parts.append(f'{node.name}="{escape_attribute(node.value)}"')
    else:
        parts.append(escape_text(node.string_value()))
