"""An XQuery / XPath 2.0 subset engine with 2004-era Galax behaviours.

Public entry points:

* :class:`XQueryEngine` — compile and evaluate queries.
* :class:`EngineConfig` — behaviour flags (optimizer, duplicate-attribute
  policy, Galax diagnostics, the trace-eating dead-code bug).
* :class:`TraceLog` — collects ``fn:trace`` output.
* :func:`parse_query` / :func:`parse_expression` — parsing only.
* :mod:`repro.xquery.debug` — the paper's debugging workflows.
* :mod:`repro.xquery.statictype` — untyped-mode checking and the type
  "metastasis" measurement.
* :mod:`repro.xquery.analysis` — the xqlint static analyzer
  (:func:`analyze_source`, :class:`Diagnostic`; CLI at
  ``python -m repro.xquery.lint``); ``EngineConfig(lint="warn"|"error")``
  runs it at compile time.
"""

from .analysis import Diagnostic, LintWarning, analyze_module, analyze_source
from .api import CompiledQuery, XQueryEngine, serialize_result
from .context import DynamicContext, EngineConfig, TraceLog
from .errors import (
    ERROR_CODES,
    XQueryDynamicError,
    XQueryError,
    XQueryStaticError,
    XQueryTimeoutError,
    XQueryTypeError,
    XQueryUserError,
)
from .functions import builtin_names
from .optimizer import OptimizerStats, optimize_module
from .parser import parse_expression, parse_query

__all__ = [
    "CompiledQuery",
    "Diagnostic",
    "DynamicContext",
    "ERROR_CODES",
    "EngineConfig",
    "LintWarning",
    "OptimizerStats",
    "TraceLog",
    "XQueryDynamicError",
    "XQueryEngine",
    "XQueryError",
    "XQueryStaticError",
    "XQueryTimeoutError",
    "XQueryTypeError",
    "XQueryUserError",
    "analyze_module",
    "analyze_source",
    "builtin_names",
    "optimize_module",
    "parse_expression",
    "parse_query",
    "serialize_result",
]
