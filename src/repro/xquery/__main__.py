"""Command-line XQuery runner.

Usage::

    python -m repro.xquery 'for $i in 1 to 3 return $i * $i'
    python -m repro.xquery -f query.xq --doc model=model.xml
    python -m repro.xquery --galax '$oops'        # 2004-style diagnostics
    python -m repro.xquery --no-optimize --trace 'trace("x", 42)'

Documents passed with ``--doc name=path`` become available to ``doc("name")``;
``--var name=value`` binds external string variables.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..xmlio import parse_document
from .api import XQueryEngine, serialize_result
from .context import EngineConfig, TraceLog
from .errors import XQueryError


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.xquery", description="Run an XQuery program."
    )
    parser.add_argument("query", nargs="?", help="query text (or use -f)")
    parser.add_argument("-f", "--file", help="read the query from a file")
    parser.add_argument(
        "--doc",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="load an XML document for doc('NAME')",
    )
    parser.add_argument(
        "--var",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="bind an external string variable",
    )
    parser.add_argument(
        "--context", metavar="PATH", help="XML file to use as the context item"
    )
    parser.add_argument(
        "--no-optimize", action="store_true", help="disable the optimizer"
    )
    parser.add_argument(
        "--buggy-dce",
        action="store_true",
        help="2004 Galax mode: the optimizer treats trace() as dead code",
    )
    parser.add_argument(
        "--galax",
        action="store_true",
        help="Galax diagnostics: errors lose locations; missing variables "
        "report as $glx:dot",
    )
    parser.add_argument(
        "--trace", action="store_true", help="print fn:trace output to stderr"
    )
    parser.add_argument(
        "--backend",
        choices=("treewalk", "closures", "algebra"),
        default="treewalk",
        help="execution backend (default: treewalk, the reference interpreter)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the optimized algebra plan (with estimated cardinalities) "
        "instead of running the query",
    )
    parser.add_argument(
        "--explain-format",
        choices=("text", "json"),
        default="text",
        help="plan rendering for --explain (default: text)",
    )
    parser.add_argument(
        "--timing",
        action="store_true",
        help="print per-query compile vs run time to stderr",
    )
    parser.add_argument(
        "--lint",
        choices=("off", "warn", "error"),
        default="off",
        help="run the static analyzer at compile time "
        "(see also: python -m repro.xquery.lint)",
    )
    return parser


def main(argv=None) -> int:
    args = build_argument_parser().parse_args(argv)
    if args.file:
        with open(args.file, "r", encoding="utf-8") as handle:
            source = handle.read()
    elif args.query is not None:
        source = args.query
    else:
        build_argument_parser().print_usage(sys.stderr)
        return 2

    config = EngineConfig(
        optimize=not args.no_optimize,
        trace_is_dead_code=args.buggy_dce,
        galax_diagnostics=args.galax,
        backend=args.backend,
        lint=args.lint,
    )
    engine = XQueryEngine(config)

    documents = {}
    for spec in args.doc:
        name, _, path = spec.partition("=")
        if not path:
            print(f"--doc expects NAME=PATH, got {spec!r}", file=sys.stderr)
            return 2
        with open(path, "r", encoding="utf-8") as handle:
            documents[name] = parse_document(handle.read())

    variables = {}
    for spec in args.var:
        name, _, value = spec.partition("=")
        variables[name] = value

    context_item = None
    if args.context:
        with open(args.context, "r", encoding="utf-8") as handle:
            context_item = parse_document(handle.read())

    trace = TraceLog(echo=(lambda msg: print(f"trace: {msg}", file=sys.stderr)))
    if args.explain:
        try:
            query = engine.compile(source)
            if args.explain_format == "json":
                print(query.algebra.explain_json())
            else:
                explanation = query.algebra.explain()
                if explanation["fallback"]:
                    print("(whole query falls back to the treewalk evaluator)")
                print(explanation["text"])
        except XQueryError as error:
            print(str(error), file=sys.stderr)
            return 1
        return 0
    try:
        started = time.perf_counter()
        query = engine.compile(source)
        if args.backend == "closures":
            query.closures  # build the closure program inside the compile window
        elif args.backend == "algebra":
            query.algebra  # likewise: lowering+optimization is compile work
        compile_seconds = time.perf_counter() - started
        started = time.perf_counter()
        result = query.run(
            context_item=context_item,
            variables=variables,
            documents=documents,
            trace=trace if args.trace else None,
        )
        run_seconds = time.perf_counter() - started
    except XQueryError as error:
        print(str(error), file=sys.stderr)
        return 1
    if args.timing:
        print(
            f"timing [{args.backend}]: compile {compile_seconds * 1000:.2f}ms, "
            f"run {run_seconds * 1000:.2f}ms",
            file=sys.stderr,
        )
    print(serialize_result(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
