"""The algebraic backend: set-at-a-time plans for the XQuery engine.

The paper's central complaint is *lopsidedness*: a language small enough to
write in an afternoon, implemented so naively that a two-line query is
"preposterously inefficient".  This package is the repository's answer —
the third execution backend, ``EngineConfig(backend="algebra")``:

* :mod:`.lowering` turns the parsed AST into a small logical algebra
  (index scans, twig hash joins, select/project, order-by, FLWOR tuple
  sources), falling back to the tree-walking evaluator for anything
  outside the fragment;
* :mod:`.optimize` is the rewrite/cost pass, fed by a
  :class:`~.stats.StatisticsCatalog` collected at export time;
* :mod:`.executor` interprets plans set-at-a-time, producing bit-identical
  XDM sequences (the differential fuzzer enforces this);
* :class:`AlgebraProgram` packages the three behind the same interface the
  closure backend exposes to :class:`~repro.xquery.api.CompiledQuery`.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Optional, Tuple

from .. import ast
from ..context import DynamicContext, EngineConfig
from ..evaluator import evaluate
from .executor import ExecState, SharedEvalCache, execute_plan
from .lowering import Lowerer
from .optimize import optimize_plan
from .plans import EvalPlan, Plan
from .signature import expr_signature, module_signature
from .stats import DEFAULT_STATS, StatisticsCatalog

__all__ = [
    "AlgebraProgram",
    "SharedEvalCache",
    "StatisticsCatalog",
    "DEFAULT_STATS",
    "expr_signature",
    "module_signature",
]


class AlgebraProgram:
    """A module lowered to a logical plan, ready for repeated execution.

    Mirrors the closure backend's ``CompiledProgram`` contract: built once
    per compiled query (lazily, under the query's lock) and reused across
    runs.  Re-optimization happens when a run supplies a different
    statistics catalog; every optimizer decision is semantics-preserving,
    so executions racing a re-optimization stay correct.
    """

    def __init__(
        self,
        module: ast.Module,
        functions: Dict[Tuple[str, int], ast.FunctionDecl],
        config: EngineConfig,
    ):
        self.module = module
        self.functions = functions
        self.config = config
        self.plan: Plan = Lowerer(functions, config).lower(module.body)
        #: whole-body fallback: nothing in the query lowered to algebra.
        self.trivial = isinstance(self.plan, EvalPlan)
        self._optimize_lock = threading.Lock()
        self._optimized_for: Optional[StatisticsCatalog] = None
        self._occurrences: Optional[Dict[int, str]] = None
        self.optimize_for(None)

    # -- optimization -----------------------------------------------------

    def occurrence_map(self) -> Dict[int, str]:
        """``id(ast expr) → occurrence`` for the exprs this plan references.

        Computed once per program from the static-type pass (occurrences
        never depend on the catalog) and only for the handful of AST nodes
        the plan tree actually points at, so the cold path stays cheap.
        """
        if self._occurrences is None:
            # lazy: the analysis package import chain reaches back here.
            from ..analysis.cardinality import iter_scoped, module_environments
            from ..analysis.types import TypeAnalyzer, occurrence_indicator

            targets = set()
            stack = [self.plan]
            while stack:
                plan = stack.pop()
                expr = getattr(plan, "expr", None)
                if expr is not None:
                    targets.add(id(expr))
                for op in getattr(plan, "ops", ()):
                    clause = getattr(op, "clause", None)
                    for attr in ("source", "value"):
                        sub = getattr(clause, attr, None)
                        if sub is not None:
                            targets.add(id(sub))
                stack.extend(child for child in plan.children() if child is not None)
            analyzer = TypeAnalyzer(self.module)
            body_env, function_envs = module_environments(self.module, analyzer)
            occurrences: Dict[int, str] = {}
            units = [(f.body, function_envs[id(f)]) for f in self.module.functions]
            units.append((self.module.body, body_env))
            for root, env in units:
                for expr, scope in iter_scoped(root, env, analyzer):
                    if id(expr) in targets and id(expr) not in occurrences:
                        occurrences[id(expr)] = occurrence_indicator(
                            analyzer.card(expr, scope)
                        )
            self._occurrences = occurrences
        return self._occurrences

    def optimize_for(self, statistics: Optional[StatisticsCatalog]) -> Plan:
        """(Re)run the cost pass if *statistics* changed since last time."""
        catalog = statistics or DEFAULT_STATS
        if self._optimized_for is not catalog:
            with self._optimize_lock:
                if self._optimized_for is not catalog:
                    optimize_plan(self.plan, catalog, self.occurrence_map())
                    self._optimized_for = catalog
        return self.plan

    # -- execution --------------------------------------------------------

    def run(
        self,
        ctx: DynamicContext,
        statistics: Optional[StatisticsCatalog] = None,
        shared_cache: Optional[SharedEvalCache] = None,
    ):
        if self.trivial:
            # the whole body fell back: run the reference evaluator with no
            # plan-interpretation overhead at all.
            return evaluate(self.module.body, ctx)
        plan = self.optimize_for(statistics)
        return execute_plan(plan, ctx, {}, ExecState(shared_cache))

    # -- explain ----------------------------------------------------------

    def explain(self, statistics: Optional[StatisticsCatalog] = None) -> dict:
        """The optimized plan as text and JSON, with estimated rows."""
        plan = self.optimize_for(statistics)
        return {
            "backend": "algebra",
            "fallback": self.trivial,
            "text": "\n".join(plan.render()),
            "plan": plan.to_dict(),
        }

    def explain_text(self, statistics: Optional[StatisticsCatalog] = None) -> str:
        return self.explain(statistics)["text"]

    def explain_json(self, statistics: Optional[StatisticsCatalog] = None) -> str:
        return json.dumps(self.explain(statistics), indent=2, sort_keys=True)
