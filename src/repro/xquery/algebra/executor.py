"""Set-at-a-time execution of lowered plans.

The executor produces bit-identical XDM sequences to the tree-walking
evaluator — same values, same document-order normalization, same errors at
the same locations, same ``fn:trace`` output.  It gets its speed from four
sources, each individually proven equivalent:

* **index scans** — ``child::name`` and ``@name`` steps read the
  ``ElementNode`` name indexes instead of filtering all children;
* **sort elision** — the per-step ``sort_document_order`` is skipped when
  the step provably preserves document order (forward axis over an ordered,
  non-nested context), which is the common case for the chains the calculus
  compiler emits;
* **hash joins** — a correlated ``[@attr eq $v/@id]`` predicate probes a
  hash table built once per distinct base instead of rescanning per tuple;
* **memoization** — loop-invariant sources, join build sides, and (across
  a batch, via :class:`SharedEvalCache`) whole closed scans are computed
  once.

Anything the lowering could not prove safe sits in an ``EvalPlan`` leaf and
runs on the reference evaluator with the exact same dynamic context.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from ...xdm import (
    ElementNode,
    UntypedAtomic,
    atomize,
    is_node,
    sort_document_order,
)
from .. import ast
from ..context import DynamicContext
from ..evaluator import (
    _apply_predicates,
    _axis_candidates,
    _error,
    _is_numeric_predicate,
    _OrderKey,
    _test_matches,
    ebv,
    evaluate,
)
from ..errors import XQueryTypeError
from .plans import (
    AttrExistsPred,
    AttrMembershipPred,
    AttrValueEqPred,
    BuiltinCallPlan,
    EvalPlan,
    FilterPlan,
    FLWORPlan,
    ForJoinOp,
    ForOp,
    FullTextScanPlan,
    GenericPred,
    InlineCallPlan,
    LetOp,
    LiteralPlan,
    OrderOp,
    PathPlan,
    Plan,
    PositionalPred,
    SequencePlan,
    SetOpPlan,
    StepPlan,
    StringFnPlan,
    VarPlan,
    WhereOp,
)

__all__ = ["SharedEvalCache", "ExecState", "execute_plan"]

_MISSING = object()
_UNSET = object()

#: axes whose candidate list for a single context node is already in
#: document order with no duplicates.
_STAYS_ORDERED = ("child", "attribute", "self")


class SharedEvalCache:
    """Cross-query scan/join-build cache for ``run_batch`` CSE.

    Keys embed the structural signature of the (closed, pure) scan plus the
    identities of its base nodes, so two queries sharing a subplan over the
    same document share the work.  The service resets the cache whenever the
    export generation moves.
    """

    def __init__(self):
        self._entries: Dict[tuple, object] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple):
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return _MISSING
            self.hits += 1
            return value

    def put(self, key: tuple, value) -> None:
        with self._lock:
            self._entries.setdefault(key, value)

    def info(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


class ExecState:
    """Per-run executor state: local memos plus the optional shared cache."""

    __slots__ = ("shared", "join_builds", "scans", "roots", "probes")

    def __init__(self, shared: Optional[SharedEvalCache] = None):
        self.shared = shared
        #: (op identity, base node ids) -> _JoinBuild
        self.join_builds: Dict[tuple, "_JoinBuild"] = {}
        #: (plan identity, base node ids) -> result list
        self.scans: Dict[tuple, list] = {}
        #: id(node) -> (node, [root]): fn:root is pure per node, and join
        #: scans anchored on root($n) re-resolve it once per tuple — the
        #: node reference in the value pins the id against reuse.
        self.roots: Dict[int, tuple] = {}
        #: (op identity, build identity, probe key) -> match list, for
        #: single-key probes whose residual is tuple-independent.
        self.probes: Dict[tuple, list] = {}
        #: id(node) -> (node, [root]): fn:root is pure per node, and join
        #: scans anchored on root($n) re-resolve it once per tuple — the
        #: node reference in the value pins the id against reuse.
        self.roots: Dict[int, tuple] = {}


def execute_plan(plan: Plan, ctx: DynamicContext, bindings: dict, state: ExecState):
    return _EXEC[type(plan)](plan, ctx, bindings, state)


# -- leaves ------------------------------------------------------------------


def _exec_eval(plan: EvalPlan, ctx, bindings, state):
    scope = ctx.with_variables(bindings) if bindings else ctx
    return evaluate(plan.expr, scope)


def _exec_literal(plan: LiteralPlan, ctx, bindings, state):
    return list(plan.values)


def _exec_var(plan: VarPlan, ctx, bindings, state):
    value = bindings.get(plan.name, _MISSING)
    if value is not _MISSING:
        return value
    try:
        return ctx.variables[plan.name]
    except KeyError:
        # mirror _eval_var exactly, including the famous galax message.
        from ..errors import XQueryDynamicError

        if ctx.config.galax_diagnostics:
            raise XQueryDynamicError(
                "Internal_Error: Variable '$glx:dot' not found.", code="XPDY0002"
            ) from None
        raise _error(
            plan.expr, ctx, f"undefined variable ${plan.name}", "XPST0008"
        ) from None


def _exec_sequence(plan: SequencePlan, ctx, bindings, state):
    result: list = []
    for item in plan.items:
        result.extend(execute_plan(item, ctx, bindings, state))
    return result


def _exec_string_fn(plan: StringFnPlan, ctx, bindings, state):
    from ..functions import _string_of

    return [_string_of(execute_plan(plan.arg, ctx, bindings, state), "string")]


def _exec_builtin_call(plan: BuiltinCallPlan, ctx, bindings, state):
    # args in order, then the builtin with the evaluator's exact calling
    # convention; the builtin reads focus/trace/config from ctx itself.
    args = [execute_plan(arg, ctx, bindings, state) for arg in plan.args]
    if plan.name == "root" and len(args) == 1 and len(args[0]) == 1:
        node = args[0][0]
        cached = state.roots.get(id(node))
        if cached is not None and cached[0] is node:
            return list(cached[1])
        result = plan.builtin(ctx, args, plan.expr)
        state.roots[id(node)] = (node, result)
        return list(result)
    return plan.builtin(ctx, args, plan.expr)


def _exec_full_text_scan(plan: FullTextScanPlan, ctx, bindings, state):
    # a pure pass-through to the ft:search builtin: the store behind the
    # dynamic context picks indexed postings or the brute-force document
    # scan, and both are pinned byte-identical.  The operator exists for
    # the optimizer's catalog-backed estimate and the explain output.
    args = [execute_plan(arg, ctx, bindings, state) for arg in plan.args]
    return plan.builtin(ctx, args, plan.expr)


def _exec_set_op(plan: SetOpPlan, ctx, bindings, state):
    from ..operators import set_operation

    left = execute_plan(plan.left, ctx, bindings, state)
    right = execute_plan(plan.right, ctx, bindings, state)
    try:
        return set_operation(plan.op, left, right)
    except XQueryTypeError as exc:
        raise _error(plan.expr, ctx, exc.bare_message, exc.code) from exc


def _exec_inline_call(plan: InlineCallPlan, ctx, bindings, state):
    declaration = plan.declaration
    if ctx.depth >= ctx.config.max_recursion_depth:
        raise _error(
            plan.expr,
            ctx,
            f"recursion depth limit exceeded calling {declaration.name}()",
            "FOER0000",
        )
    ctx.check_deadline()
    frame: Dict[str, list] = {}
    for param, arg in zip(declaration.params, plan.args):
        frame[param.name] = execute_plan(arg, ctx, bindings, state)
    scope = ctx.function_scope(frame)
    return execute_plan(plan.body, scope, {}, state)


# -- predicates --------------------------------------------------------------


def _generic_keep(pred_expr, item, position, size, scope) -> bool:
    focus = scope.with_focus(item, position, size)
    result = evaluate(pred_expr, focus)
    if _is_numeric_predicate(result):
        return float(result[0]) == position
    return ebv(result, pred_expr, scope)


def _apply_pred_plans(items, predicates, ctx, bindings):
    """Apply compiled predicates to one candidate list — `_apply_predicates`
    with fast paths; positions renumber between predicates, exactly as the
    reference does."""
    scope = None
    for pred in predicates:
        if not items:
            return items
        if pred.skipped:
            # the optimizer proved (against the catalog's verified schema)
            # that this predicate keeps every input — don't evaluate it.
            continue
        if isinstance(pred, PositionalPred):
            items = pred.apply(items)
            continue
        if scope is None:
            scope = ctx.with_variables(bindings) if bindings else ctx
        size = len(items)
        kept = []
        if isinstance(pred, AttrMembershipPred):
            name, values = pred.name, pred.values
            for position, item in enumerate(items, start=1):
                # only elements carry the name index (a per-item getattr
                # by string was measurably slower on scan-sized lists)
                if isinstance(item, ElementNode):
                    matches = item.attributes_by_name(name)
                    if len(matches) == 1:  # avoid a generator per item
                        if matches[0].value in values:
                            kept.append(item)
                    elif any(a.value in values for a in matches):
                        kept.append(item)
                elif _generic_keep(pred.expr, item, position, size, scope):
                    kept.append(item)
        elif isinstance(pred, AttrValueEqPred):
            name, value = pred.name, pred.value
            for position, item in enumerate(items, start=1):
                if isinstance(item, ElementNode):
                    matches = item.attributes_by_name(name)
                    if len(matches) == 1:
                        if matches[0].value == value:
                            kept.append(item)
                    elif matches and _generic_keep(
                        pred.expr, item, position, size, scope
                    ):  # >1 attrs (keep-mode): the reference path raises
                        kept.append(item)
                elif _generic_keep(pred.expr, item, position, size, scope):
                    kept.append(item)
        elif isinstance(pred, AttrExistsPred):
            name = pred.name
            for position, item in enumerate(items, start=1):
                if isinstance(item, ElementNode):
                    if item.attributes_by_name(name):
                        kept.append(item)
                elif _generic_keep(pred.expr, item, position, size, scope):
                    kept.append(item)
        else:
            expr = pred.expr
            for position, item in enumerate(items, start=1):
                if _generic_keep(expr, item, position, size, scope):
                    kept.append(item)
        items = kept
    return items


# -- paths -------------------------------------------------------------------


def _path_base(plan: PathPlan, ctx, bindings, state):
    """Resolve a path's base items plus (ordered, non_nested) flags."""
    if plan.anchor is not None:
        if not is_node(ctx.item):
            raise _error(
                plan.expr, ctx, "'/' requires a node as the context item", "XPDY0002"
            )
        current = [ctx.item.root()]
        if plan.anchor == "//":
            current, _, _ = _expand_descendants(current, True, True)
            return current, True, False
        return current, True, True
    if plan.base is None:
        return ([ctx.item] if ctx.item is not None else [None]), True, True
    current = execute_plan(plan.base, ctx, bindings, state)
    if len(current) <= 1:
        return current, True, True
    return current, False, False


def _expand_descendants(nodes, ordered, non_nested):
    """``//`` — descendant-or-self expansion with the reference's error."""
    if ordered and non_nested:
        expanded = []
        for node in nodes:
            if not is_node(node):
                raise XQueryTypeError("'//' applied to a non-node", code="XPTY0019")
            expanded.extend(node.descendants_or_self())
        return expanded, True, False
    expanded = []
    for node in nodes:
        if not is_node(node):
            raise XQueryTypeError("'//' applied to a non-node", code="XPTY0019")
        expanded.extend(node.descendants_or_self())
    return sort_document_order(expanded), True, False


def _step_candidates(step: StepPlan, node):
    """Candidates for one context node — name-index fast paths first."""
    test = step.test
    if step.axis == "child" and test.kind == "name":
        index = getattr(node, "children_by_name", None)
        if index is not None:
            return index(test.name)
    elif step.axis == "attribute" and test.kind == "name":
        index = getattr(node, "attributes_by_name", None)
        if index is not None:
            return index(test.name)
    return [
        candidate
        for candidate in _axis_candidates(node, step.axis)
        if _test_matches(test, candidate, step.axis)
    ]


def _run_steps(current, ordered, non_nested, steps, ctx, bindings):
    for step in steps:
        current, ordered, non_nested = _run_one_step(
            current, ordered, non_nested, step, ctx, bindings
        )
    return current, ordered, non_nested


def _run_one_step(current, ordered, non_nested, step: StepPlan, ctx, bindings):
    ctx.check_deadline()
    if step.separator == "//":
        current, ordered, non_nested = _expand_descendants(current, ordered, non_nested)
    results: list = []
    single = len(current) == 1
    for item in current:
        if not is_node(item):
            if item is None:
                raise _error(
                    step.expr, ctx, "context item is absent in a path step", "XPDY0002"
                )
            raise _error(
                step.expr, ctx, "a path step was applied to an atomic value", "XPTY0019"
            )
        candidates = _step_candidates(step, item)
        if step.predicates:
            candidates = _apply_pred_plans(candidates, step.predicates, ctx, bindings)
        results.extend(candidates)
    ordered, non_nested, needs_sort = _order_after(
        step.axis, ordered, non_nested, single
    )
    if needs_sort and results:
        results = sort_document_order(results)
    return results, ordered, non_nested


def _order_after(axis, ordered, non_nested, single):
    """Track whether a step's concatenated result is still sorted+distinct.

    Children/attributes of ordered, non-nested context nodes land in
    document order with no duplicates (disjoint subtrees are contiguous),
    so the reference's per-step ``sort_document_order`` is the identity and
    may be skipped.  Anything unprovable sorts, exactly as the reference
    does.
    """
    if ordered and non_nested:
        if axis in _STAYS_ORDERED:
            return True, True, False
        if axis in ("descendant", "descendant-or-self"):
            return True, False, False
        if axis == "following-sibling" and single:
            return True, True, False
    return True, False, True


def _exec_path(plan: PathPlan, ctx, bindings, state):
    current, ordered, non_nested = _path_base(plan, ctx, bindings, state)
    if not plan.steps:
        return current
    if plan.cacheable:
        local_key = (id(plan), tuple(map(id, current)))
        cached = state.scans.get(local_key)
        if cached is not None:
            return cached
        shared = state.shared
        if shared is not None:
            shared_key = ("scan", plan.scan_signature, local_key[1])
            value = shared.get(shared_key)
            if value is not _MISSING:
                state.scans[local_key] = value
                return value
        result, _, _ = _run_steps(
            current, ordered, non_nested, plan.steps, ctx, bindings
        )
        if shared is not None:
            shared.put(shared_key, result)
        state.scans[local_key] = result
        return result
    result, _, _ = _run_steps(current, ordered, non_nested, plan.steps, ctx, bindings)
    return result


def _exec_filter(plan: FilterPlan, ctx, bindings, state):
    items = execute_plan(plan.base, ctx, bindings, state)
    return _apply_pred_plans(items, plan.predicates, ctx, bindings)


# -- FLWOR -------------------------------------------------------------------


def _exec_flwor(plan: FLWORPlan, ctx, bindings, state):
    tuples: List[dict] = [dict(bindings)]
    invariants: Dict[int, list] = {}
    for op in plan.ops:
        ctx.check_deadline()
        if isinstance(op, ForOp):
            tuples = _expand_for_op(op, tuples, ctx, state, invariants)
        elif isinstance(op, ForJoinOp):
            tuples = _expand_join_op(op, tuples, ctx, state)
        elif isinstance(op, LetOp):
            for tuple_bindings in tuples:
                value = execute_plan(op.value, ctx, tuple_bindings, state)
                declared = op.declared_type
                if declared is not None and not declared.matches(value):
                    raise _error(
                        op.flwor,
                        ctx,
                        f"let ${op.var} value does not match "
                        f"declared type {declared!r}",
                        "XPTY0004",
                    )
                tuple_bindings[op.var] = value
        elif isinstance(op, WhereOp):
            tuples = [
                tuple_bindings
                for tuple_bindings in tuples
                if ebv(
                    execute_plan(op.condition, ctx, tuple_bindings, state),
                    op.condition_expr,
                    ctx,
                )
            ]
        elif isinstance(op, OrderOp):
            tuples = _order_tuples_op(op, tuples, ctx, state)
    result: list = []
    result_plan = plan.result
    check_deadline = ctx.deadline is not None
    for tuple_bindings in tuples:
        if check_deadline:
            ctx.check_deadline()
        result.extend(execute_plan(result_plan, ctx, tuple_bindings, state))
    return result


def _expand_for_op(op: ForOp, tuples, ctx, state, invariants):
    expanded = []
    check_deadline = ctx.deadline is not None
    var, position_var = op.var, op.position_var
    source = invariants.get(id(op), _UNSET) if op.invariant else _UNSET
    for tuple_bindings in tuples:
        if check_deadline:
            ctx.check_deadline()
        if op.invariant:
            if source is _UNSET:
                source = execute_plan(op.source, ctx, tuple_bindings, state)
                invariants[id(op)] = source
        else:
            source = execute_plan(op.source, ctx, tuple_bindings, state)
        for position, item in enumerate(source, start=1):
            new_bindings = dict(tuple_bindings)
            new_bindings[var] = [item]
            if position_var is not None:
                new_bindings[position_var] = [position]
            expanded.append(new_bindings)
    return expanded


def _order_tuples_op(op: OrderOp, tuples, ctx, state):
    decorated = []
    for index, tuple_bindings in enumerate(tuples):
        keys = tuple(
            _OrderKey(
                execute_plan(key_plan, ctx, tuple_bindings, state),
                descending,
                empty_least,
            )
            for key_plan, descending, empty_least in op.specs
        )
        decorated.append((keys, index, tuple_bindings))
    decorated.sort(key=lambda entry: (entry[0], entry[1]))
    return [tuple_bindings for _, _, tuple_bindings in decorated]


# -- hash joins --------------------------------------------------------------


class _JoinBuild:
    """The build side of one hash join: per-context-node candidate groups.

    Groups stay separate because predicates (including any residuals) apply
    per context node with per-node positions, exactly as the reference
    evaluator's `_eval_axis_step` does; ``ordered`` records whether the
    concatenation of the groups is already sorted and duplicate-free.
    """

    __slots__ = ("groups", "ordered", "total", "_indexes")

    def __init__(self, groups, ordered: bool):
        self.groups = groups
        self.ordered = ordered
        self.total = sum(len(group) for group in groups)
        self._indexes: Dict[str, tuple] = {}

    def index_on(self, attr: str):
        """Per-group value -> items maps, plus multi/any attribute flags."""
        cached = self._indexes.get(attr)
        if cached is not None:
            return cached
        keymaps = []
        any_attr = False
        any_multi = False
        for group in self.groups:
            keymap: Dict[str, list] = {}
            for item in group:
                matches = item.attributes_by_name(attr)
                if matches:
                    any_attr = True
                    if len(matches) > 1:
                        any_multi = True
                    for attribute in matches:
                        keymap.setdefault(attribute.value, []).append(item)
            keymaps.append(keymap)
        built = (keymaps, any_attr, any_multi)
        self._indexes[attr] = built
        return built


def _scan_base_shape(scan: PathPlan) -> Optional[str]:
    """The variable name when *scan* is based on exactly ``root($var)`` —
    the anchor shape of every scan the calculus compiler emits."""
    base = scan.base
    if (
        scan.anchor is None
        and isinstance(base, BuiltinCallPlan)
        and base.name == "root"
        and len(base.args) == 1
        and isinstance(base.args[0], VarPlan)
    ):
        return base.args[0].name
    return None


def _join_build(op: ForJoinOp, ctx, tuple_bindings, state) -> _JoinBuild:
    scan = op.scan
    cached = op.fast_base
    if cached is None or cached[0] is not scan.base:
        cached = (scan.base, _scan_base_shape(scan))
        op.fast_base = cached
    base = None
    if cached[1] is not None:
        # root($var) over a singleton element binding: fn:root is pure per
        # node, so the per-tuple base resolution collapses to a memo probe.
        value = tuple_bindings.get(cached[1])
        if (
            isinstance(value, list)
            and len(value) == 1
            and isinstance(value[0], ElementNode)
        ):
            node = value[0]
            memo = state.roots.get(id(node))
            if memo is not None and memo[0] is node:
                base = memo[1]
            else:
                base = [node.root()]
                state.roots[id(node)] = (node, base)
    if base is not None:
        ordered = non_nested = True
    else:
        base, ordered, non_nested = _path_base(scan, ctx, tuple_bindings, state)
    key = (id(op), tuple(map(id, base)))
    build = state.join_builds.get(key)
    if build is not None:
        return build
    shared = state.shared
    shared_key = None
    if shared is not None and scan.cacheable:
        shared_key = ("join", scan.scan_signature, key[1])
        cached = shared.get(shared_key)
        if cached is not _MISSING:
            state.join_builds[key] = cached
            return cached
    inner = scan.steps[:-1]
    last = scan.steps[-1]
    current, ordered, non_nested = _run_steps(
        base, ordered, non_nested, inner, ctx, tuple_bindings
    )
    ctx.check_deadline()
    if last.separator == "//":
        current, ordered, non_nested = _expand_descendants(current, ordered, non_nested)
    groups = []
    single = len(current) == 1
    for item in current:
        if not is_node(item):
            if item is None:
                raise _error(
                    last.expr, ctx, "context item is absent in a path step", "XPDY0002"
                )
            raise _error(
                last.expr, ctx, "a path step was applied to an atomic value", "XPTY0019"
            )
        candidates = _step_candidates(last, item)
        if last.predicates:
            candidates = _apply_pred_plans(candidates, last.predicates, ctx, {})
        groups.append(list(candidates))
    ordered, non_nested, needs_sort = _order_after(last.axis, ordered, non_nested, single)
    build = _JoinBuild(groups, ordered=not needs_sort)
    state.join_builds[key] = build
    if shared_key is not None:
        shared.put(shared_key, build)
    return build


def _expand_join_op(op: ForJoinOp, tuples, ctx, state):
    expanded = []
    check_deadline = ctx.deadline is not None
    var, position_var = op.var, op.position_var
    # Resolve the probe shape and residual memoability once per op, so the
    # per-tuple loop can answer a repeated single-key probe with one dict
    # hit instead of re-entering _probe_join (which re-derives both).
    cached = op.fast_probe
    if cached is None or cached[0] is not op.probe_expr:
        cached = (op.probe_expr, _probe_shape(op.probe_expr))
        op.fast_probe = cached
    shape = cached[1]
    memoable = shape is not None and not any(
        type(pred) is GenericPred for pred in op.residual
    )
    probes = state.probes
    op_id = id(op)
    # Resolve the root($var) base shape once per op as well: consecutive
    # tuples almost always bind nodes under the same document root, so the
    # per-tuple build resolution collapses to one memo probe and an id
    # compare against the previous tuple's root.
    scan = op.scan
    base_cached = op.fast_base
    if base_cached is None or base_cached[0] is not scan.base:
        base_cached = (scan.base, _scan_base_shape(scan))
        op.fast_base = base_cached
    base_var = base_cached[1]
    roots = state.roots
    builds = state.join_builds
    last_root_id = None
    last_build = None
    for tuple_bindings in tuples:
        if check_deadline:
            ctx.check_deadline()
        build = None
        if base_var is not None:
            value = tuple_bindings.get(base_var)
            if (
                isinstance(value, list)
                and len(value) == 1
                and isinstance(value[0], ElementNode)
            ):
                node = value[0]
                memo = roots.get(id(node))
                if memo is not None and memo[0] is node:
                    root_id = id(memo[1][0])
                else:
                    base = [node.root()]
                    roots[id(node)] = (node, base)
                    root_id = id(base[0])
                if root_id == last_root_id:
                    build = last_build
                else:
                    build = builds.get((op_id, (root_id,)))
                    if build is not None:
                        last_root_id, last_build = root_id, build
        if build is None:
            build = _join_build(op, ctx, tuple_bindings, state)
            if base_var is not None:
                last_root_id, last_build = None, None
        matches = None
        if memoable:
            value = tuple_bindings.get(shape[0])
            if (
                isinstance(value, list)
                and len(value) == 1
                and isinstance(value[0], ElementNode)
            ):
                attributes = value[0].attributes_by_name(shape[1])
                if len(attributes) == 1:
                    matches = probes.get((op_id, id(build), attributes[0].value))
        if matches is None:
            matches = _probe_join(op, build, ctx, tuple_bindings, state)
        for position, item in enumerate(matches, start=1):
            new_bindings = dict(tuple_bindings)
            new_bindings[var] = [item]
            if position_var is not None:
                new_bindings[position_var] = [position]
            expanded.append(new_bindings)
    return expanded


def _probe_shape(expr) -> Optional[Tuple[str, str]]:
    """``(var, attr)`` when *expr* is exactly ``$var/@attr`` — the shape of
    every probe the calculus compiler generates."""
    if (
        isinstance(expr, ast.PathExpr)
        and expr.anchor is None
        and isinstance(expr.first, ast.VarRef)
        and len(expr.steps) == 1
    ):
        separator, step = expr.steps[0]
        if (
            separator == "/"
            and isinstance(step, ast.AxisStep)
            and step.axis == "attribute"
            and not step.predicates
            and step.test.kind == "name"
            and step.test.name is not None
        ):
            return expr.first.name, step.test.name
    return None


def _probe_join(op: ForJoinOp, build: _JoinBuild, ctx, tuple_bindings, state):
    if build.total == 0:
        # the reference never evaluates the probe when there is nothing to
        # compare it against, so neither may we.
        return []
    cached = op.fast_probe
    if cached is None or cached[0] is not op.probe_expr:
        cached = (op.probe_expr, _probe_shape(op.probe_expr))
        op.fast_probe = cached
    keys = None
    if cached[1] is not None:
        # a tuple variable holding one element: read the attribute directly
        # (the untyped-atomic values the evaluator's attribute step would
        # atomize to, minus the wrapper objects) instead of paying a context
        # clone + path walk + document-order sort per tuple.
        var_name, attr_name = cached[1]
        value = tuple_bindings.get(var_name)
        if (
            isinstance(value, list)
            and len(value) == 1
            and isinstance(value[0], ElementNode)
        ):
            keys = [
                attribute.value
                for attribute in value[0].attributes_by_name(attr_name)
            ]
    hashable = True
    if keys is None:
        scope = ctx.with_variables(tuple_bindings) if tuple_bindings else ctx
        probe_atoms = atomize(evaluate(op.probe_expr, scope))
        keys = []
        for atom in probe_atoms:
            if isinstance(atom, str):
                keys.append(atom)
            elif isinstance(atom, UntypedAtomic):
                keys.append(atom.value)
            else:
                # numeric/boolean probes promote differently; fall back to
                # the reference comparison per candidate item.
                hashable = False
                break
    keymaps, any_attr, any_multi = build.index_on(op.build_attr)
    if hashable and op.style == "value":
        if not keys:
            return []
        if len(keys) > 1:
            # raises only if some candidate has a matching attribute — an
            # attribute-less item yields an empty left operand and is
            # silently dropped before the singleton check.
            if any_attr:
                raise _error(
                    op.join_expr,
                    ctx,
                    f"value comparison '{op.join_expr.op}' requires "
                    "singleton operands",
                    "XPTY0004",
                )
            return []
        if any_multi:
            # some candidate carries duplicate attributes (keep-mode): the
            # reference raises when its predicate reaches that item.
            return _probe_join_generic(op, build, ctx, tuple_bindings)
    if not hashable:
        return _probe_join_generic(op, build, ctx, tuple_bindings)
    memo_key = None
    if len(keys) == 1 and not any(
        type(pred) is GenericPred for pred in op.residual
    ):
        # single-key probes repeat whenever tuples share a join partner;
        # with a tuple-independent residual the match list is a pure
        # function of (op, build, key), so replay it from the memo.
        memo_key = (id(op), id(build), keys[0])
        memo = state.probes.get(memo_key)
        if memo is not None:
            return memo
    results: list = []
    attr = op.build_attr
    key_set = frozenset(keys)
    for group_index, keymap in enumerate(keymaps):
        if len(keys) == 1:
            # hash hit lists preserve candidate order within the group.
            matched = keymap.get(keys[0], [])
        elif keys:
            # multi-key probes walk the group so matches keep candidate
            # order (the existential `=` sweep, set-at-a-time).
            matched = [
                item
                for item in build.groups[group_index]
                if any(a.value in key_set for a in item.attributes_by_name(attr))
            ]
        else:
            matched = []
        if matched and op.residual:
            matched = _apply_pred_plans(matched, op.residual, ctx, tuple_bindings)
        results.extend(matched)
    if not build.ordered:
        results = sort_document_order(results)
    if memo_key is not None:
        state.probes[memo_key] = results
    return results


def _probe_join_generic(op: ForJoinOp, build: _JoinBuild, ctx, tuple_bindings):
    """Per-item fallback: evaluate the join predicate as the reference does."""
    predicates = [GenericPred(op.join_expr)] + list(op.residual)
    results: list = []
    for group in build.groups:
        results.extend(_apply_pred_plans(group, predicates, ctx, tuple_bindings))
    if build.ordered:
        return results
    return sort_document_order(results)


_EXEC = {
    EvalPlan: _exec_eval,
    LiteralPlan: _exec_literal,
    VarPlan: _exec_var,
    SequencePlan: _exec_sequence,
    StringFnPlan: _exec_string_fn,
    BuiltinCallPlan: _exec_builtin_call,
    FullTextScanPlan: _exec_full_text_scan,
    SetOpPlan: _exec_set_op,
    InlineCallPlan: _exec_inline_call,
    PathPlan: _exec_path,
    FilterPlan: _exec_filter,
    FLWORPlan: _exec_flwor,
}
