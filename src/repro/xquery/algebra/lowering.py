"""Lowering: parsed AST -> logical algebra, with treewalk fallback.

The lowering pass is deliberately conservative.  It recognizes the
FLWOR/path fragment the calculus compiler emits (scans over the
``ElementNode`` name indexes, attribute-equality twig joins, positional
predicates, ``order by`` over string keys) and lowers everything else to an
:class:`~.plans.EvalPlan` leaf — a subtree the set-at-a-time executor hands
to the reference tree-walking evaluator verbatim.  A construct is only
specialized when the rewrite is provably observation-equivalent, *including
errors and ``fn:trace`` output*: the differential fuzzer treats any drift
as a bug, mirroring how the paper treats Galax's optimizer bugs.

Safety gates worth naming (each one is a place a faster-but-wrong rewrite
was rejected):

* a scan is only memoized/shared when all of its step predicates are
  compiled fast predicates — closed, pure, and unable to call user
  functions (whose recursion-depth accounting would otherwise leak between
  cache hits);
* a hash join's probe expression must be focus-free (no ``.``, no
  ``position()``/``last()``) and side-effect free, so evaluating it once
  per tuple instead of once per candidate item is unobservable;
* ``where`` clauses are never pushed across ``for`` clauses: XQuery's
  ordered, error-strict semantics make tuple order observable through
  ``fn:error``/``fn:trace``, which is exactly the "lopsided" constraint the
  paper's optimizer section complains about;
* user functions inline only when non-recursive and free of declared types
  that would require runtime checks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .. import ast
from ..context import EngineConfig
from ..optimizer import free_variables, has_side_effects
from .plans import (
    AttrExistsPred,
    AttrMembershipPred,
    AttrValueEqPred,
    BuiltinCallPlan,
    EvalPlan,
    FilterPlan,
    FLWORPlan,
    ForJoinOp,
    ForOp,
    FullTextScanPlan,
    GenericPred,
    InlineCallPlan,
    LetOp,
    LiteralPlan,
    OrderOp,
    PathPlan,
    Plan,
    PositionalPred,
    PredPlan,
    SequencePlan,
    SetOpPlan,
    StepPlan,
    StringFnPlan,
    VarPlan,
    WhereOp,
)
from .signature import expr_signature

__all__ = ["Lowerer", "RESULT_VAR"]

#: Synthetic variable used when a FLWOR's return path becomes a join.
#: ``#`` cannot appear in a parsed variable name, so it never collides.
RESULT_VAR = "#result"

_FAST_PREDS = (AttrMembershipPred, AttrValueEqPred, AttrExistsPred, PositionalPred)

_POSITIONAL_VALUE_OPS = {"eq": "eq", "le": "le", "lt": "lt", "ge": "ge", "gt": "gt"}
_POSITIONAL_GENERAL_OPS = {"=": "eq", "<=": "le", "<": "lt", ">=": "ge", ">": "gt"}
_POSITIONAL_SWAP = {"eq": "eq", "le": "ge", "lt": "gt", "ge": "le", "gt": "lt"}


def _strip_fn(name: str) -> str:
    return name[3:] if name.startswith("fn:") else name


class Lowerer:
    """Lowers one module's body (and inlined function bodies) to plans."""

    def __init__(
        self,
        functions: Dict[Tuple[str, int], ast.FunctionDecl],
        config: EngineConfig,
    ):
        self.functions = functions
        self.config = config
        self._inline_stack: List[ast.FunctionDecl] = []

    # -- entry points -----------------------------------------------------

    def lower(self, expr: ast.Expr) -> Plan:
        if isinstance(expr, ast.Literal):
            return LiteralPlan([expr.value])
        if isinstance(expr, ast.EmptySequence):
            return LiteralPlan([])
        if isinstance(expr, ast.VarRef):
            return VarPlan(expr)
        if isinstance(expr, ast.SequenceExpr):
            return SequencePlan([self.lower(item) for item in expr.items])
        if isinstance(expr, ast.SetOp):
            return SetOpPlan(expr, self.lower(expr.left), self.lower(expr.right))
        if isinstance(expr, ast.PathExpr):
            return self._lower_path(expr)
        if isinstance(expr, ast.FilterExpr):
            return self._lower_filter(expr)
        if isinstance(expr, ast.FLWOR):
            return self._lower_flwor(expr)
        if isinstance(expr, ast.FunctionCall):
            return self._lower_call(expr)
        return EvalPlan(expr)

    # -- paths ------------------------------------------------------------

    def _lower_path(self, expr: ast.PathExpr) -> Plan:
        pairs: List[Tuple[str, ast.Expr]] = []
        base: Optional[Plan] = None
        if expr.anchor in ("/", "//"):
            if expr.first is not None:
                pairs.append(("/", expr.first))
        elif isinstance(expr.first, ast.AxisStep):
            pairs.append(("/", expr.first))
        else:
            base = self.lower(expr.first)
        pairs.extend(expr.steps)
        steps: List[StepPlan] = []
        for separator, step in pairs:
            if not isinstance(step, ast.AxisStep):
                # e.g. $x/data(.) — outside the algebra's path fragment.
                return EvalPlan(expr, "non-axis path step")
            predicates = [self._compile_pred(p) for p in step.predicates]
            closed = all(isinstance(p, _FAST_PREDS) for p in predicates)
            steps.append(StepPlan(step, separator, predicates, closed))
        if not steps and base is not None:
            return base
        plan = PathPlan(expr, expr.anchor, base, steps)
        plan.cacheable = bool(steps) and all(step.closed for step in steps)
        if plan.cacheable:
            plan.scan_signature = expr_signature(
                [(step.separator, step.expr) for step in steps]
            )
        return plan

    def _lower_filter(self, expr: ast.FilterExpr) -> Plan:
        return FilterPlan(
            expr,
            self.lower(expr.base),
            [self._compile_pred(p) for p in expr.predicates],
        )

    # -- predicates -------------------------------------------------------

    def _compile_pred(self, pred: ast.Expr) -> PredPlan:
        positional = self._positional_pred(pred)
        if positional is not None:
            return positional
        if isinstance(pred, ast.Comparison):
            compiled = self._attr_comparison_pred(pred)
            if compiled is not None:
                return compiled
        name = _attr_step_name(pred)
        if name is not None:
            return AttrExistsPred(pred, name)
        return GenericPred(pred)

    def _positional_pred(self, pred: ast.Expr) -> Optional[PositionalPred]:
        if isinstance(pred, ast.Literal):
            value = pred.value
            if isinstance(value, int) and not isinstance(value, bool):
                return PositionalPred(pred, "eq", value)
            return None
        if self._is_focus_call(pred, "last"):
            return PositionalPred(pred, "last", 0)
        if not isinstance(pred, ast.Comparison):
            return None
        ops = (
            _POSITIONAL_VALUE_OPS
            if pred.style == "value"
            else _POSITIONAL_GENERAL_OPS if pred.style == "general" else None
        )
        if ops is None or pred.op not in ops:
            return None
        op = ops[pred.op]
        left, right = pred.left, pred.right
        if self._is_focus_call(left, "position"):
            literal = right
        elif self._is_focus_call(right, "position"):
            literal, op = left, _POSITIONAL_SWAP[op]
        else:
            return None
        if (
            isinstance(literal, ast.Literal)
            and isinstance(literal.value, int)
            and not isinstance(literal.value, bool)
        ):
            return PositionalPred(pred, op, literal.value)
        return None

    def _is_focus_call(self, expr: ast.Expr, name: str) -> bool:
        """True if *expr* is a call to the ``position``/``last`` builtin."""
        if not isinstance(expr, ast.FunctionCall) or expr.args:
            return False
        if _strip_fn(expr.name) != name:
            return False
        # a user declaration shadows the builtin; then it is not focus-bound
        # but may recurse, so the fast path stands down either way.
        return (name, 0) not in self.functions

    def _attr_comparison_pred(self, pred: ast.Comparison) -> Optional[PredPlan]:
        for attr_side, value_side in ((pred.left, pred.right), (pred.right, pred.left)):
            name = _attr_step_name(attr_side)
            if name is None:
                continue
            if pred.style == "general" and pred.op == "=":
                values = _string_literals(value_side)
                if values is not None:
                    return AttrMembershipPred(pred, name, frozenset(values))
            if pred.style == "value" and pred.op == "eq":
                if isinstance(value_side, ast.Literal) and isinstance(
                    value_side.value, str
                ):
                    return AttrValueEqPred(pred, name, value_side.value)
        return None

    # -- FLWOR ------------------------------------------------------------

    def _lower_flwor(self, expr: ast.FLWOR) -> Plan:
        ops = []
        bound: Set[str] = set()
        for clause in expr.clauses:
            if isinstance(clause, ast.ForClause):
                ops.append(self._lower_for(clause, bound))
                bound.add(clause.var)
                if clause.position_var is not None:
                    bound.add(clause.position_var)
            elif isinstance(clause, ast.LetClause):
                ops.append(LetOp(clause, expr, self.lower(clause.value)))
                bound.add(clause.var)
            elif isinstance(clause, ast.WhereClause):
                ops.append(WhereOp(clause.condition, self.lower(clause.condition)))
            elif isinstance(clause, ast.OrderByClause):
                specs = [
                    (self.lower(spec.key), spec.descending, spec.empty_least)
                    for spec in clause.specs
                ]
                ops.append(OrderOp(clause, specs))
        result_plan = self.lower(expr.result)
        # `return base/...[@a eq $v]` is `for $#result in base/... return
        # $#result`: tuple expansion preserves order, so the return path can
        # join like any other for clause.
        if isinstance(result_plan, PathPlan):
            clause = ast.ForClause(
                var=RESULT_VAR,
                position_var=None,
                source=expr.result,
                line=expr.result.line,
                column=expr.result.column,
            )
            join = self._try_join(clause, result_plan, bound)
            if join is not None:
                ops.append(join)
                result_plan = VarPlan(ast.VarRef(name=RESULT_VAR))
        return FLWORPlan(expr, ops, result_plan, expr.result)

    def _lower_for(self, clause: ast.ForClause, bound: Set[str]):
        source_plan = self.lower(clause.source)
        if isinstance(source_plan, PathPlan):
            join = self._try_join(clause, source_plan, bound)
            if join is not None:
                return join
        invariant = (
            not (free_variables(clause.source) & bound)
            and not has_side_effects(clause.source, False)
        )
        return ForOp(clause, source_plan, invariant)

    # -- join detection ---------------------------------------------------

    def _try_join(
        self, clause: ast.ForClause, scan: PathPlan, bound: Set[str]
    ) -> Optional[ForJoinOp]:
        """Recognize ``for $v in base/...[@attr (eq|=) probe]`` as a join.

        The scan up to the join predicate must be memoizable (fast
        predicates only, element-producing last step) and the probe must be
        correlated with the tuple stream, focus-free, and pure.
        """
        if not bound or not scan.steps:
            return None
        last = scan.steps[-1]
        if last.axis == "attribute" or last.test.kind != "name":
            # the hash build indexes ElementNode attributes; a name test on
            # a non-attribute axis is what guarantees element candidates.
            return None
        if not all(step.closed for step in scan.steps[:-1]):
            return None
        for index, pred in enumerate(last.predicates):
            if not all(
                isinstance(p, _FAST_PREDS) for p in last.predicates[:index]
            ):
                break
            if not isinstance(pred, GenericPred):
                continue
            found = self._join_condition(pred.expr, bound)
            if found is None:
                continue
            attr, probe, style = found
            residual = last.predicates[index + 1 :]
            build_preds = last.predicates[:index]
            build_step = StepPlan(last.expr, last.separator, build_preds, True)
            build_scan = PathPlan(
                scan.expr, scan.anchor, scan.base, scan.steps[:-1] + [build_step]
            )
            build_scan.cacheable = all(s.closed for s in build_scan.steps)
            if build_scan.cacheable:
                build_scan.scan_signature = expr_signature(
                    [(s.separator, s.expr) for s in build_scan.steps]
                ) + f"|join@{attr}"
            op = ForJoinOp(clause, build_scan, attr, probe, style, residual, pred.expr)
            # sibling equi-predicates directly after the chosen one are
            # interchangeable join keys; the optimizer picks by selectivity.
            for sibling in last.predicates[index + 1 :]:
                if not isinstance(sibling, GenericPred):
                    break
                other = self._join_condition(sibling.expr, bound)
                if other is None:
                    break
                op.candidates.append((other[0], other[1], other[2], sibling.expr))
            return op
        return None

    def _join_condition(
        self, pred: ast.Expr, bound: Set[str]
    ) -> Optional[Tuple[str, ast.Expr, str]]:
        """Split an equi-comparison into (build attribute, probe expr, style)."""
        if not isinstance(pred, ast.Comparison):
            return None
        if pred.style == "value" and pred.op == "eq":
            style = "value"
        elif pred.style == "general" and pred.op == "=":
            style = "general"
        else:
            return None
        for attr_side, probe in ((pred.left, pred.right), (pred.right, pred.left)):
            attr = _attr_step_name(attr_side)
            if attr is None:
                continue
            if not (free_variables(probe) & bound):
                continue
            if not self._probe_is_safe(probe):
                continue
            return attr, probe, style
        return None

    def _probe_is_safe(self, probe: ast.Expr) -> bool:
        """The probe may be evaluated once per tuple instead of per item."""
        if has_side_effects(probe, False):
            return False
        safe = [True]

        def visit(node) -> None:
            if isinstance(node, ast.ContextItem):
                safe[0] = False
            elif isinstance(node, ast.FunctionCall) and not node.args:
                name = _strip_fn(node.name)
                if name in ("position", "last") and (name, 0) not in self.functions:
                    safe[0] = False

        ast.walk(probe, visit)
        return safe[0]

    # -- function calls ---------------------------------------------------

    def _lower_call(self, expr: ast.FunctionCall) -> Plan:
        name = _strip_fn(expr.name)
        if name.startswith("xs:"):
            return EvalPlan(expr)
        local_name = name.split(":", 1)[1] if name.startswith("local:") else name
        declaration = self.functions.get((local_name, len(expr.args)))
        if declaration is not None:
            return self._lower_user_call(expr, declaration)
        if name == "string" and len(expr.args) == 1:
            arg = self.lower(expr.args[0])
            if not isinstance(arg, EvalPlan):
                return StringFnPlan(expr, arg)
        from ..functions import lookup_builtin  # deferred: functions imports evaluator

        builtin = lookup_builtin(name, len(expr.args))
        if name == "ft:search" and builtin is not None and len(expr.args) in (1, 2):
            # the indexed full-text scan: same builtin, surfaced as a scan
            # operator so the optimizer can estimate hits from the
            # collection catalog (df of the rarest phrase token).
            args = [self.lower(arg) for arg in expr.args]
            literals = [
                arg.value
                if isinstance(arg, ast.Literal) and isinstance(arg.value, str)
                else None
                for arg in expr.args
            ]
            if len(expr.args) == 1:
                collection, phrase = "", literals[0]
            else:
                collection, phrase = literals
            return FullTextScanPlan(expr, name, builtin, args, collection, phrase)
        if builtin is not None and expr.args:
            args = [self.lower(arg) for arg in expr.args]
            if any(not isinstance(arg, EvalPlan) for arg in args):
                # args run in order through the executor, then the builtin
                # is invoked exactly as the evaluator would — pass-through.
                return BuiltinCallPlan(expr, name, builtin, args)
        return EvalPlan(expr)

    def _lower_user_call(
        self, expr: ast.FunctionCall, declaration: ast.FunctionDecl
    ) -> Plan:
        if any(declaration is frame for frame in self._inline_stack):
            return EvalPlan(expr, "recursive call")
        if self.config.type_check_calls and (
            declaration.return_type is not None
            or any(param.declared_type is not None for param in declaration.params)
        ):
            return EvalPlan(expr, "typed signature")
        self._inline_stack.append(declaration)
        try:
            body = self.lower(declaration.body)
        finally:
            self._inline_stack.pop()
        if isinstance(body, EvalPlan):
            return EvalPlan(expr)
        args = [self.lower(arg) for arg in expr.args]
        return InlineCallPlan(expr, declaration, args, body)


# -- shape helpers -------------------------------------------------------


def _attr_step_name(expr: ast.Expr) -> Optional[str]:
    """The attribute name if *expr* is a bare ``@name`` step, else None."""
    if isinstance(expr, ast.PathExpr):
        if expr.anchor is not None or expr.steps:
            return None
        expr = expr.first
    if (
        isinstance(expr, ast.AxisStep)
        and expr.axis == "attribute"
        and expr.test.kind == "name"
        and not expr.predicates
    ):
        return expr.test.name
    return None


def _string_literals(expr: ast.Expr) -> Optional[List[str]]:
    """The literal strings if *expr* is one or a sequence of them."""
    if isinstance(expr, ast.Literal):
        return [expr.value] if isinstance(expr.value, str) else None
    if isinstance(expr, ast.EmptySequence):
        return []
    if isinstance(expr, ast.SequenceExpr):
        values: List[str] = []
        for item in expr.items:
            if not isinstance(item, ast.Literal) or not isinstance(item.value, str):
                return None
            values.append(item.value)
        return values
    return None


def lower_body(
    module: ast.Module,
    functions: Dict[Tuple[str, int], ast.FunctionDecl],
    config: EngineConfig,
) -> Plan:
    """Lower a module body; an :class:`EvalPlan` result means full fallback."""
    return Lowerer(functions, config).lower(module.body)
