"""Rewrite/cost pass over lowered plans, driven by the statistics catalog.

Every decision made here is semantics-preserving by construction, so the
pass is free to be wrong about costs without ever being wrong about
results:

* **predicate ordering** — within a maximal run of *pure, position-free*
  compiled attribute predicates on one step, filters commute; the most
  selective one goes first.  Runs never extend across a positional or
  generic predicate (positions renumber between predicates, so those are
  sequence points).
* **join-key choice** — when a scan carries several interchangeable
  equi-join predicates, hash on the attribute with the most distinct
  values; the others demote to residual filters (commuting, as above).
* **cardinality annotation** — every plan node gets an ``est_rows`` for
  ``--explain``; the estimates come straight from the export-time catalog
  (per-name counts, fan-out, attribute selectivity).

Positional short-circuiting itself is compiled during lowering
(:class:`~.plans.PositionalPred` slices instead of iterating); this pass
only accounts for it in the estimates.

Two additions ride the static-type pass (PR 7):

* **occurrence annotations** — when the caller supplies the inferred
  occurrence map (``id(ast expr) → "empty | 1 | ? | + | *"``), plan nodes
  carry it into ``--explain`` as ``[occ=...]``, and proven-dead schema
  paths surface as ``occ=empty`` with 0 estimated rows.
* **schema-licensed pruning** — a catalog that carries a ``schema``
  (attached by ``StatisticsCatalog.from_root`` only after verifying the
  walked document conforms) warrants that schema's facts for the
  document the query runs against.  Under that warrant, an existence
  check on a required attribute of a schema-anchored step keeps every
  input, so it is marked ``skipped`` and the executor never evaluates
  it.  This is the one decision here that leans on more than costs; the
  warrant is scoped to the catalog's export generation, re-optimizing
  under a schema-less catalog resets every ``skipped`` flag, and the
  differential fuzzer holds the backend to bit-identical results as
  always.  Join-key singletons, by contrast, are pure statistics
  (``present == count == distinct`` on this generation) and only shape
  estimates and key choice.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .plans import (
    AttrExistsPred,
    AttrMembershipPred,
    AttrValueEqPred,
    BuiltinCallPlan,
    EvalPlan,
    FilterPlan,
    FLWORPlan,
    ForJoinOp,
    ForOp,
    FullTextScanPlan,
    GenericPred,
    InlineCallPlan,
    LetOp,
    OrderOp,
    PathPlan,
    Plan,
    PositionalPred,
    SequencePlan,
    SetOpPlan,
    StepPlan,
    StringFnPlan,
    VarPlan,
    WhereOp,
)
from .stats import DEFAULT_STATS, StatisticsCatalog

__all__ = ["optimize_plan"]

_REORDERABLE = (AttrMembershipPred, AttrValueEqPred, AttrExistsPred)


def optimize_plan(
    plan: Plan,
    stats: Optional[StatisticsCatalog] = None,
    occurrences: Optional[Dict[int, str]] = None,
) -> Plan:
    """Annotate and (safely) reorder *plan* in place; returns it.

    *occurrences* maps ``id(ast expr)`` to the statically inferred
    occurrence indicator (from :mod:`..analysis.types`); when given, plan
    nodes surface it in ``--explain``.
    """
    _Optimizer(stats or DEFAULT_STATS, occurrences or {}).visit(plan, None)
    return plan


class _Optimizer:
    def __init__(self, stats: StatisticsCatalog, occurrences: Dict[int, str]):
        self.stats = stats
        self.schema = stats.schema
        self.occurrences = occurrences

    # -- dispatch ---------------------------------------------------------

    def visit(self, plan: Plan, input_rows: Optional[float]) -> float:
        """Annotate *plan*, returning its estimated output cardinality."""
        plan.occ = None  # re-derived below; stale marks must not survive
        if isinstance(plan, PathPlan):
            rows = self._visit_path(plan)
        elif isinstance(plan, FilterPlan):
            rows = self.visit(plan.base, input_rows)
            rows = self._apply_pred_estimates(plan.predicates, None, rows)
        elif isinstance(plan, FLWORPlan):
            rows = self._visit_flwor(plan)
        elif isinstance(plan, SetOpPlan):
            left = self.visit(plan.left, input_rows)
            right = self.visit(plan.right, input_rows)
            rows = left + right if plan.op == "union" else min(left, right)
        elif isinstance(plan, SequencePlan):
            rows = sum(self.visit(item, input_rows) for item in plan.items)
        elif isinstance(plan, StringFnPlan):
            self.visit(plan.arg, input_rows)
            rows = 1.0
        elif isinstance(plan, FullTextScanPlan):
            for arg in plan.args:
                self.visit(arg, input_rows)
            rows = self.stats.fulltext_estimate(plan.collection, plan.phrase)
        elif isinstance(plan, BuiltinCallPlan):
            rows = 1.0
            for arg in plan.args:
                rows = self.visit(arg, input_rows)
            # pass-through calls (trace) carry their last argument's rows;
            # for anything else the estimate is just "a value".
            if plan.name != "trace":
                rows = 1.0
        elif isinstance(plan, InlineCallPlan):
            for arg in plan.args:
                self.visit(arg, input_rows)
            rows = self.visit(plan.body, input_rows)
        elif isinstance(plan, VarPlan):
            rows = 1.0
        elif isinstance(plan, EvalPlan):
            rows = 1.0
        else:  # LiteralPlan and friends
            rows = float(len(getattr(plan, "values", [0])))
        plan.est_rows = rows
        expr = getattr(plan, "expr", None)
        if expr is not None and plan.occ is None:
            plan.occ = self.occurrences.get(id(expr))
        return rows

    # -- scans ------------------------------------------------------------

    def _visit_path(self, plan: PathPlan) -> float:
        rows, _ = self._visit_path_anchored(plan)
        return rows

    def _visit_path_anchored(self, plan: PathPlan) -> Tuple[float, Optional[str]]:
        """Annotate a scan, threading the schema-anchored element name.

        A path *anchors* to the catalog's schema at a child step that
        selects the schema's root element; from there each further child
        step follows (or falls off) the closed parent→child edges.  A
        provably dead tail zeroes the estimate and marks ``occ=empty``.
        """
        plan.occ = None
        if plan.anchor is not None:
            rows = 1.0
        elif plan.base is not None:
            rows = self.visit(plan.base, None)
        else:
            rows = 1.0
        anchored: Optional[str] = None
        dead = False
        for step in plan.steps:
            rows, anchored, step_dead = self._visit_step(step, rows, anchored)
            dead = dead or step_dead
        if dead:
            plan.occ = "empty"
        return rows, anchored

    def _visit_step(
        self, step: StepPlan, input_rows: float, anchored: Optional[str]
    ) -> Tuple[float, Optional[str], bool]:
        stats = self.stats
        schema = self.schema
        name = step.test.name if step.test.kind == "name" else None
        next_anchor: Optional[str] = None
        dead = False
        if step.axis in ("child", "descendant", "descendant-or-self"):
            if name is not None:
                # a named scan can never yield more than the name's count —
                # and a single base node may own all of them.
                total = float(stats.element_count(name))
                if input_rows <= 1.0:
                    rows = total
                else:
                    per_node = stats.fanout(None) if step.axis == "child" else 10.0
                    rows = max(min(total, input_rows * per_node), 0.0)
                if schema is not None and step.axis == "child":
                    if anchored is not None:
                        decl = schema.element(anchored)
                        if decl is not None and not decl.open_content:
                            if name in decl.children:
                                next_anchor = name
                            else:
                                rows, dead = 0.0, True
                    elif name == schema.root:
                        next_anchor = name
            else:
                rows = input_rows * stats.fanout(None)
        elif step.axis == "attribute":
            rows = input_rows
            if (
                schema is not None
                and anchored is not None
                and name is not None
                and not schema.attribute_allowed(anchored, name)
            ):
                rows, dead = 0.0, True
        elif step.axis in ("self", "parent"):
            rows = input_rows
        else:
            rows = input_rows * 2.0
        self._order_predicates(step, name)
        rows = self._apply_pred_estimates(
            step.predicates, name, rows, anchored=next_anchor
        )
        return rows, next_anchor, dead

    def _order_predicates(self, step: StepPlan, element: Optional[str]) -> None:
        """Most-selective-first within runs of commuting attribute filters."""
        predicates = step.predicates
        run_start = 0
        for index in range(len(predicates) + 1):
            at_end = index == len(predicates)
            if not at_end and isinstance(predicates[index], _REORDERABLE):
                continue
            run = predicates[run_start:index]
            if len(run) > 1:
                for pred in run:
                    pred.selectivity = self._pred_selectivity(pred, element)
                run.sort(key=lambda pred: pred.selectivity)
                predicates[run_start:index] = run
            run_start = index + 1

    def _apply_pred_estimates(
        self, predicates, element, rows: float, anchored: Optional[str] = None
    ) -> float:
        schema = self.schema if anchored is not None else None
        for pred in predicates:
            pred.skipped = False  # every pass re-proves (or loses) the skip
            if isinstance(pred, PositionalPred):
                rows = 1.0 if pred.op in ("eq", "last") else min(rows, float(pred.k))
                continue
            pred.selectivity = self._pred_selectivity(pred, element)
            if schema is not None and isinstance(pred, AttrExistsPred):
                if schema.attribute_required(anchored, pred.name):
                    # every <anchored> the exporter writes carries the
                    # attribute: the check keeps all its input.  Skip it.
                    pred.skipped = True
                    pred.selectivity = 1.0
                    continue
            if schema is not None and isinstance(
                pred, (AttrValueEqPred, AttrMembershipPred)
            ):
                literals = (
                    {pred.value}
                    if isinstance(pred, AttrValueEqPred)
                    else set(pred.values)
                )
                if not schema.attribute_allowed(anchored, pred.name):
                    rows = 0.0
                    continue
                domain = schema.attribute_domain(anchored, pred.name)
                if domain is not None and not (literals & domain):
                    # provably vacuous (the XQL012 shape): estimate zero.
                    rows = 0.0
                    continue
            if (
                isinstance(pred, AttrValueEqPred)
                and element is not None
                and self._is_unique_key(element, pred.name)
            ):
                rows = min(rows, 1.0)
                continue
            rows *= pred.selectivity
        return rows

    def _is_unique_key(self, element: str, attribute: str) -> bool:
        """Every *element* carries *attribute*, all values distinct — a key.

        A pure statistics fact about the walked document (no schema
        needed), so it may tighten estimates and steer join-key choice on
        any catalog.
        """
        stats = self.stats
        count = stats.element_counts.get(element)
        if not count:
            return False
        key = (element, attribute)
        return (
            stats.attr_present.get(key) == count
            and stats.attr_distinct.get(key) == count
        )

    def _pred_selectivity(self, pred, element: Optional[str]) -> float:
        stats = self.stats
        if isinstance(pred, AttrValueEqPred):
            return stats.attr_selectivity(element, pred.name)
        if isinstance(pred, AttrMembershipPred):
            single = stats.attr_selectivity(element, pred.name)
            return min(1.0, single * max(len(pred.values), 1))
        if isinstance(pred, AttrExistsPred):
            if element is not None:
                present = stats.attr_present.get((element, pred.name))
                total = stats.element_count(element)
                if present is not None and total:
                    return min(1.0, present / total)
            return 0.8
        if isinstance(pred, GenericPred):
            return 0.5
        return 1.0

    # -- FLWOR pipelines --------------------------------------------------

    def _visit_flwor(self, plan: FLWORPlan) -> float:
        tuples = 1.0
        for op in plan.ops:
            op.occ = None
            if isinstance(op, ForJoinOp):
                self._choose_join_key(op)
                scan_rows, scan_anchor = self._visit_path_anchored(op.scan)
                op.scan.est_rows = scan_rows
                if op.scan.occ is None:
                    op.scan.occ = self.occurrences.get(id(op.scan.expr))
                element = (
                    op.scan.steps[-1].test.name
                    if op.scan.steps and op.scan.steps[-1].test.kind == "name"
                    else None
                )
                distinct = self.stats.attr_distinct_count(element, op.build_attr)
                matches = max(scan_rows / max(distinct, 1), 0.0)
                if element is not None and self._is_unique_key(element, op.build_attr):
                    # the build side hashes a proven key: at most one match
                    # per probe value.
                    matches = min(matches, 1.0)
                    op.occ = "?"
                matches = self._apply_pred_estimates(
                    op.residual, element, matches, anchored=scan_anchor
                )
                tuples *= max(matches, 0.001)
            elif isinstance(op, ForOp):
                tuples *= max(self.visit(op.source, None), 0.001)
                op.occ = self.occurrences.get(id(op.clause.source))
            elif isinstance(op, LetOp):
                self.visit(op.value, None)
                op.occ = self.occurrences.get(id(op.clause.value))
            elif isinstance(op, WhereOp):
                self.visit(op.condition, None)
                tuples *= 0.5
            elif isinstance(op, OrderOp):
                for key, _, _ in op.specs:
                    self.visit(key, None)
            op.est_rows = tuples
        result_rows = self.visit(plan.result, tuples)
        return tuples * max(result_rows, 0.0) if plan.ops else result_rows

    def _choose_join_key(self, op: ForJoinOp) -> None:
        """Hash on the best attribute among interchangeable keys.

        Proven-unique keys (every element carries the attribute, all
        values distinct) beat everything — a singleton build side means at
        most one match per probe; among non-keys, most distinct wins.
        """
        if not op.candidates:
            return
        element = (
            op.scan.steps[-1].test.name
            if op.scan.steps and op.scan.steps[-1].test.kind == "name"
            else None
        )
        best_attr, best_probe, best_style, best_expr = (
            op.build_attr,
            op.probe_expr,
            op.style,
            op.join_expr,
        )

        def score_of(attr: str) -> tuple:
            unique = element is not None and self._is_unique_key(element, attr)
            return (unique, self.stats.attr_distinct_count(element, attr))

        best_score = score_of(best_attr)
        for attr, probe, style, expr in op.candidates:
            score = score_of(attr)
            if score > best_score:
                best_attr, best_probe, best_style, best_expr = attr, probe, style, expr
                best_score = score
        if best_expr is op.join_expr:
            return
        # demote the old key to a residual filter in the slot the new key
        # vacates; both are pure and position-free, so filters commute.
        for index, pred in enumerate(op.residual):
            if isinstance(pred, GenericPred) and pred.expr is best_expr:
                op.residual[index] = GenericPred(op.join_expr)
                break
        op.build_attr, op.probe_expr, op.style, op.join_expr = (
            best_attr,
            best_probe,
            best_style,
            best_expr,
        )
        if op.scan.cacheable:
            op.scan.scan_signature = (
                op.scan.scan_signature.rsplit("|join@", 1)[0] + f"|join@{best_attr}"
            )
