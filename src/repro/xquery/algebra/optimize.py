"""Rewrite/cost pass over lowered plans, driven by the statistics catalog.

Every decision made here is semantics-preserving by construction, so the
pass is free to be wrong about costs without ever being wrong about
results:

* **predicate ordering** — within a maximal run of *pure, position-free*
  compiled attribute predicates on one step, filters commute; the most
  selective one goes first.  Runs never extend across a positional or
  generic predicate (positions renumber between predicates, so those are
  sequence points).
* **join-key choice** — when a scan carries several interchangeable
  equi-join predicates, hash on the attribute with the most distinct
  values; the others demote to residual filters (commuting, as above).
* **cardinality annotation** — every plan node gets an ``est_rows`` for
  ``--explain``; the estimates come straight from the export-time catalog
  (per-name counts, fan-out, attribute selectivity).

Positional short-circuiting itself is compiled during lowering
(:class:`~.plans.PositionalPred` slices instead of iterating); this pass
only accounts for it in the estimates.
"""

from __future__ import annotations

from typing import Optional

from .plans import (
    AttrExistsPred,
    AttrMembershipPred,
    AttrValueEqPred,
    BuiltinCallPlan,
    EvalPlan,
    FilterPlan,
    FLWORPlan,
    ForJoinOp,
    ForOp,
    GenericPred,
    InlineCallPlan,
    LetOp,
    OrderOp,
    PathPlan,
    Plan,
    PositionalPred,
    SequencePlan,
    SetOpPlan,
    StepPlan,
    StringFnPlan,
    VarPlan,
    WhereOp,
)
from .stats import DEFAULT_STATS, StatisticsCatalog

__all__ = ["optimize_plan"]

_REORDERABLE = (AttrMembershipPred, AttrValueEqPred, AttrExistsPred)


def optimize_plan(plan: Plan, stats: Optional[StatisticsCatalog] = None) -> Plan:
    """Annotate and (safely) reorder *plan* in place; returns it."""
    _Optimizer(stats or DEFAULT_STATS).visit(plan, None)
    return plan


class _Optimizer:
    def __init__(self, stats: StatisticsCatalog):
        self.stats = stats

    # -- dispatch ---------------------------------------------------------

    def visit(self, plan: Plan, input_rows: Optional[float]) -> float:
        """Annotate *plan*, returning its estimated output cardinality."""
        if isinstance(plan, PathPlan):
            rows = self._visit_path(plan)
        elif isinstance(plan, FilterPlan):
            rows = self.visit(plan.base, input_rows)
            rows = self._apply_pred_estimates(plan.predicates, None, rows)
        elif isinstance(plan, FLWORPlan):
            rows = self._visit_flwor(plan)
        elif isinstance(plan, SetOpPlan):
            left = self.visit(plan.left, input_rows)
            right = self.visit(plan.right, input_rows)
            rows = left + right if plan.op == "union" else min(left, right)
        elif isinstance(plan, SequencePlan):
            rows = sum(self.visit(item, input_rows) for item in plan.items)
        elif isinstance(plan, StringFnPlan):
            self.visit(plan.arg, input_rows)
            rows = 1.0
        elif isinstance(plan, BuiltinCallPlan):
            rows = 1.0
            for arg in plan.args:
                rows = self.visit(arg, input_rows)
            # pass-through calls (trace) carry their last argument's rows;
            # for anything else the estimate is just "a value".
            if plan.name != "trace":
                rows = 1.0
        elif isinstance(plan, InlineCallPlan):
            for arg in plan.args:
                self.visit(arg, input_rows)
            rows = self.visit(plan.body, input_rows)
        elif isinstance(plan, VarPlan):
            rows = 1.0
        elif isinstance(plan, EvalPlan):
            rows = 1.0
        else:  # LiteralPlan and friends
            rows = float(len(getattr(plan, "values", [0])))
        plan.est_rows = rows
        return rows

    # -- scans ------------------------------------------------------------

    def _visit_path(self, plan: PathPlan) -> float:
        if plan.anchor is not None:
            rows = 1.0
        elif plan.base is not None:
            rows = self.visit(plan.base, None)
        else:
            rows = 1.0
        for step in plan.steps:
            rows = self._visit_step(step, rows)
        return rows

    def _visit_step(self, step: StepPlan, input_rows: float) -> float:
        stats = self.stats
        name = step.test.name if step.test.kind == "name" else None
        if step.axis in ("child", "descendant", "descendant-or-self"):
            if name is not None:
                # a named scan can never yield more than the name's count —
                # and a single base node may own all of them.
                total = float(stats.element_count(name))
                if input_rows <= 1.0:
                    rows = total
                else:
                    per_node = stats.fanout(None) if step.axis == "child" else 10.0
                    rows = max(min(total, input_rows * per_node), 0.0)
            else:
                rows = input_rows * stats.fanout(None)
        elif step.axis == "attribute":
            rows = input_rows
        elif step.axis in ("self", "parent"):
            rows = input_rows
        else:
            rows = input_rows * 2.0
        self._order_predicates(step, name)
        return self._apply_pred_estimates(step.predicates, name, rows)

    def _order_predicates(self, step: StepPlan, element: Optional[str]) -> None:
        """Most-selective-first within runs of commuting attribute filters."""
        predicates = step.predicates
        run_start = 0
        for index in range(len(predicates) + 1):
            at_end = index == len(predicates)
            if not at_end and isinstance(predicates[index], _REORDERABLE):
                continue
            run = predicates[run_start:index]
            if len(run) > 1:
                for pred in run:
                    pred.selectivity = self._pred_selectivity(pred, element)
                run.sort(key=lambda pred: pred.selectivity)
                predicates[run_start:index] = run
            run_start = index + 1

    def _apply_pred_estimates(self, predicates, element, rows: float) -> float:
        for pred in predicates:
            if isinstance(pred, PositionalPred):
                rows = 1.0 if pred.op in ("eq", "last") else min(rows, float(pred.k))
            else:
                pred.selectivity = self._pred_selectivity(pred, element)
                rows *= pred.selectivity
        return rows

    def _pred_selectivity(self, pred, element: Optional[str]) -> float:
        stats = self.stats
        if isinstance(pred, AttrValueEqPred):
            return stats.attr_selectivity(element, pred.name)
        if isinstance(pred, AttrMembershipPred):
            single = stats.attr_selectivity(element, pred.name)
            return min(1.0, single * max(len(pred.values), 1))
        if isinstance(pred, AttrExistsPred):
            if element is not None:
                present = stats.attr_present.get((element, pred.name))
                total = stats.element_count(element)
                if present is not None and total:
                    return min(1.0, present / total)
            return 0.8
        if isinstance(pred, GenericPred):
            return 0.5
        return 1.0

    # -- FLWOR pipelines --------------------------------------------------

    def _visit_flwor(self, plan: FLWORPlan) -> float:
        tuples = 1.0
        for op in plan.ops:
            if isinstance(op, ForJoinOp):
                self._choose_join_key(op)
                scan_rows = self.visit(op.scan, None)
                element = (
                    op.scan.steps[-1].test.name
                    if op.scan.steps and op.scan.steps[-1].test.kind == "name"
                    else None
                )
                distinct = self.stats.attr_distinct_count(element, op.build_attr)
                matches = max(scan_rows / max(distinct, 1), 0.0)
                matches = self._apply_pred_estimates(op.residual, element, matches)
                tuples *= max(matches, 0.001)
            elif isinstance(op, ForOp):
                tuples *= max(self.visit(op.source, None), 0.001)
            elif isinstance(op, LetOp):
                self.visit(op.value, None)
            elif isinstance(op, WhereOp):
                self.visit(op.condition, None)
                tuples *= 0.5
            elif isinstance(op, OrderOp):
                for key, _, _ in op.specs:
                    self.visit(key, None)
            op.est_rows = tuples
        result_rows = self.visit(plan.result, tuples)
        return tuples * max(result_rows, 0.0) if plan.ops else result_rows

    def _choose_join_key(self, op: ForJoinOp) -> None:
        """Hash on the most distinct attribute among interchangeable keys."""
        if not op.candidates:
            return
        element = (
            op.scan.steps[-1].test.name
            if op.scan.steps and op.scan.steps[-1].test.kind == "name"
            else None
        )
        best_attr, best_probe, best_style, best_expr = (
            op.build_attr,
            op.probe_expr,
            op.style,
            op.join_expr,
        )
        best_score = self.stats.attr_distinct_count(element, best_attr)
        for attr, probe, style, expr in op.candidates:
            score = self.stats.attr_distinct_count(element, attr)
            if score > best_score:
                best_attr, best_probe, best_style, best_expr = attr, probe, style, expr
                best_score = score
        if best_expr is op.join_expr:
            return
        # demote the old key to a residual filter in the slot the new key
        # vacates; both are pure and position-free, so filters commute.
        for index, pred in enumerate(op.residual):
            if isinstance(pred, GenericPred) and pred.expr is best_expr:
                op.residual[index] = GenericPred(op.join_expr)
                break
        op.build_attr, op.probe_expr, op.style, op.join_expr = (
            best_attr,
            best_probe,
            best_style,
            best_expr,
        )
        if op.scan.cacheable:
            op.scan.scan_signature = (
                op.scan.scan_signature.rsplit("|join@", 1)[0] + f"|join@{best_attr}"
            )
