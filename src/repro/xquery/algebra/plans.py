"""Logical plan nodes for the algebraic backend.

The algebra is deliberately small: it covers the FLWOR/path fragment that
Koch's complexity results single out as polynomial when evaluated
set-at-a-time, and every construct outside the fragment appears as an
:class:`EvalPlan` leaf that delegates to the tree-walking evaluator.  That
delegation rule is what keeps the backend *exactly* faithful to the
reference semantics — the plan layer only specializes shapes it can prove
equivalent, and the differential fuzzer holds it to that.

Plan nodes are declarative: lowering builds them, ``optimize`` annotates
and reorders them, and :mod:`.executor` interprets them.  Every node knows
how to render itself for ``--explain`` (text and JSON) including the
optimizer's estimated cardinalities.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .. import ast

__all__ = [
    "Plan",
    "EvalPlan",
    "LiteralPlan",
    "VarPlan",
    "SequencePlan",
    "StringFnPlan",
    "BuiltinCallPlan",
    "FullTextScanPlan",
    "SetOpPlan",
    "StepPlan",
    "PathPlan",
    "FilterPlan",
    "FLWORPlan",
    "InlineCallPlan",
    "ForOp",
    "ForJoinOp",
    "LetOp",
    "WhereOp",
    "OrderOp",
    "PredPlan",
    "AttrMembershipPred",
    "AttrValueEqPred",
    "AttrExistsPred",
    "PositionalPred",
    "GenericPred",
]


# -- predicate plans ---------------------------------------------------------


class PredPlan:
    """Base class for compiled predicates; ``expr`` is the original AST."""

    __slots__ = ("expr", "selectivity", "skipped")

    def __init__(self, expr: ast.Expr):
        self.expr = expr
        self.selectivity = 0.5  # refined by the optimizer
        #: the optimizer proved this predicate keeps every input (e.g. an
        #: existence check on a schema-required attribute) — the executor
        #: does not evaluate it.  Reset at the start of every optimize pass
        #: so re-optimizing under a different catalog stays correct.
        self.skipped = False

    def describe(self) -> str:
        return type(self).__name__


class AttrMembershipPred(PredPlan):
    """``[@name = ("a", "b", ...)]`` — general comparison, string literals.

    Untyped attribute values compare to string literals *as strings*, so a
    frozenset membership test is exact — including the existential sweep
    over duplicated attributes in ``keep`` quirk mode.
    """

    __slots__ = ("name", "values")

    def __init__(self, expr: ast.Expr, name: str, values: frozenset):
        super().__init__(expr)
        self.name = name
        self.values = values

    def describe(self) -> str:
        options = ", ".join(repr(v) for v in sorted(self.values))
        return f"@{self.name} in ({options})"


class AttrValueEqPred(PredPlan):
    """``[@name eq "literal"]`` — value comparison against one string."""

    __slots__ = ("name", "value")

    def __init__(self, expr: ast.Expr, name: str, value: str):
        super().__init__(expr)
        self.name = name
        self.value = value

    def describe(self) -> str:
        return f"@{self.name} eq {self.value!r}"


class AttrExistsPred(PredPlan):
    """``[@name]`` — keep elements carrying the attribute."""

    __slots__ = ("name",)

    def __init__(self, expr: ast.Expr, name: str):
        super().__init__(expr)
        self.name = name

    def describe(self) -> str:
        return f"exists(@{self.name})"


class PositionalPred(PredPlan):
    """A positional predicate compiled to a list slice.

    ``[k]``, ``[position() op k]`` with an integer literal, and
    ``[last()]`` all short-circuit to O(1) slicing of the candidate list
    instead of one focus-carrying evaluation per item.
    """

    __slots__ = ("op", "k")

    def __init__(self, expr: ast.Expr, op: str, k: int):
        super().__init__(expr)
        self.op = op  # "eq" | "le" | "lt" | "ge" | "gt" | "last"
        self.k = k

    def apply(self, items: list) -> list:
        op, k = self.op, self.k
        if op == "last":
            return items[-1:]
        if op == "eq":
            return items[k - 1 : k] if k >= 1 else []
        if op == "le":
            return items[: max(k, 0)]
        if op == "lt":
            return items[: max(k - 1, 0)]
        if op == "ge":
            return items[max(k - 1, 0) :] if k >= 1 else list(items)
        if op == "gt":
            return items[max(k, 0) :] if k >= 1 else list(items)
        raise AssertionError(f"unknown positional op {op!r}")

    def describe(self) -> str:
        if self.op == "last":
            return "position() = last()"
        if self.op == "eq":
            return f"position() = {self.k}"
        symbol = {"le": "<=", "lt": "<", "ge": ">=", "gt": ">"}[self.op]
        return f"position() {symbol} {self.k}"


class GenericPred(PredPlan):
    """Any other predicate: evaluated per item by the reference evaluator."""

    def describe(self) -> str:
        return f"generic predicate @{self.expr.line}:{self.expr.column}"


# -- expression plans --------------------------------------------------------


class Plan:
    """Base class for expression-level plans."""

    __slots__ = ("est_rows", "occ")

    def __init__(self):
        self.est_rows: Optional[float] = None
        #: inferred occurrence indicator (``empty | 1 | ? | + | *``) set by
        #: the optimizer from the static-type pass; display-only.
        self.occ: Optional[str] = None

    # explain -------------------------------------------------------------

    def label(self) -> str:
        return type(self).__name__

    def children(self) -> List["Plan"]:
        return []

    def to_dict(self) -> dict:
        entry = {"op": self.label()}
        if self.est_rows is not None:
            entry["est_rows"] = round(self.est_rows, 2)
        if self.occ is not None:
            entry["occ"] = self.occ
        kids = [child.to_dict() for child in self.children() if child is not None]
        if kids:
            entry["children"] = kids
        return entry

    def render(self, indent: int = 0, out: Optional[List[str]] = None) -> List[str]:
        if out is None:
            out = []
        rows = "" if self.est_rows is None else f"  (~{self.est_rows:g} rows)"
        occ = "" if self.occ is None else f"  [occ={self.occ}]"
        out.append("  " * indent + self.label() + rows + occ)
        for child in self.children():
            if child is not None:
                child.render(indent + 1, out)
        return out


class EvalPlan(Plan):
    """Fallback leaf: the subtree is evaluated by the treewalk backend."""

    __slots__ = ("expr", "note")

    def __init__(self, expr: ast.Expr, note: str = ""):
        super().__init__()
        self.expr = expr
        self.note = note

    def label(self) -> str:
        what = type(self.expr).__name__
        suffix = f" [{self.note}]" if self.note else ""
        return f"Eval({what}@{self.expr.line}:{self.expr.column}){suffix}"


class LiteralPlan(Plan):
    __slots__ = ("values",)

    def __init__(self, values: list):
        super().__init__()
        self.values = values

    def label(self) -> str:
        if not self.values:
            return "Empty()"
        return f"Literal({self.values[0]!r})"


class VarPlan(Plan):
    __slots__ = ("name", "expr")

    def __init__(self, expr: ast.VarRef):
        super().__init__()
        self.expr = expr
        self.name = expr.name

    def label(self) -> str:
        return f"Var(${self.name})"


class SequencePlan(Plan):
    __slots__ = ("items",)

    def __init__(self, items: List[Plan]):
        super().__init__()
        self.items = items

    def label(self) -> str:
        return f"Sequence[{len(self.items)}]"

    def children(self) -> List[Plan]:
        return list(self.items)


class StringFnPlan(Plan):
    """``fn:string(expr)`` with exactly one argument — a projection."""

    __slots__ = ("arg", "expr")

    def __init__(self, expr: ast.FunctionCall, arg: Plan):
        super().__init__()
        self.expr = expr
        self.arg = arg

    def label(self) -> str:
        return "Project:string"

    def children(self) -> List[Plan]:
        return [self.arg]


class BuiltinCallPlan(Plan):
    """A builtin call whose arguments are themselves plans.

    Argument plans are executed in order and the builtin is invoked with
    the same ``(ctx, args, expr)`` triple the reference evaluator uses, so
    the call itself is a pure pass-through — lowering uses this whenever an
    argument lowers to something better than a fallback leaf (the common
    case: the ``trace(...)`` wrapper the calculus compiler emits around an
    entire query body).
    """

    __slots__ = ("expr", "name", "builtin", "args")

    def __init__(self, expr: ast.FunctionCall, name: str, builtin, args: List[Plan]):
        super().__init__()
        self.expr = expr
        self.name = name
        self.builtin = builtin
        self.args = args

    def label(self) -> str:
        return f"Call:{self.name}"

    def children(self) -> List[Plan]:
        return list(self.args)


class FullTextScanPlan(Plan):
    """``ft:search($collection, $phrase)`` as a first-class scan operator.

    Execution is a pure pass-through to the builtin (the store decides
    indexed postings vs the brute-force document scan), but surfacing the
    call as an operator gives the optimizer a catalog-backed cardinality
    — ``min(document frequency)`` over the phrase tokens, clamped by the
    collection size — and gives ``--explain`` an honest scan node instead
    of an opaque builtin call.  ``collection``/``phrase`` hold the
    argument strings when they are literals (the estimable case), else
    None.
    """

    __slots__ = ("expr", "name", "builtin", "args", "collection", "phrase")

    def __init__(
        self,
        expr: ast.FunctionCall,
        name: str,
        builtin,
        args: List[Plan],
        collection: Optional[str],
        phrase: Optional[str],
    ):
        super().__init__()
        self.expr = expr
        self.name = name
        self.builtin = builtin
        self.args = args
        self.collection = collection
        self.phrase = phrase

    def label(self) -> str:
        where = "?" if self.collection is None else (self.collection or "*")
        what = "?" if self.phrase is None else self.phrase
        return f"FullTextScan[{where} ~ {what!r}]"

    def children(self) -> List[Plan]:
        return list(self.args)


class SetOpPlan(Plan):
    __slots__ = ("op", "left", "right", "expr")

    def __init__(self, expr: ast.SetOp, left: Plan, right: Plan):
        super().__init__()
        self.expr = expr
        self.op = expr.op
        self.left = left
        self.right = right

    def label(self) -> str:
        return f"SetOp:{self.op}"

    def children(self) -> List[Plan]:
        return [self.left, self.right]


class StepPlan:
    """One axis step of a scan: axis + node test + compiled predicates.

    ``closed`` means every predicate is a compiled fast predicate with no
    free variables — the precondition for memoizing the scan's result.
    """

    __slots__ = ("expr", "separator", "axis", "test", "predicates", "closed")

    def __init__(
        self,
        expr: ast.AxisStep,
        separator: str,
        predicates: List[PredPlan],
        closed: bool,
    ):
        self.expr = expr
        self.separator = separator  # "/" or "//"
        self.axis = expr.axis
        self.test = expr.test
        self.predicates = predicates
        self.closed = closed

    def describe(self) -> str:
        test = self.test.name if self.test.name is not None else self.test.kind + "()"
        preds = "".join(
            f"[pruned: {p.describe()}]" if p.skipped else f"[{p.describe()}]"
            for p in self.predicates
        )
        prefix = "//" if self.separator == "//" else "/"
        axis = "" if self.axis == "child" else f"{self.axis}::"
        if self.axis == "attribute":
            axis, test = "", f"@{self.test.name or '*'}"
        return f"{prefix}{axis}{test}{preds}"


class PathPlan(Plan):
    """A scan: base sequence (or the context item / document root) + steps."""

    __slots__ = ("expr", "anchor", "base", "steps", "cacheable", "scan_signature")

    def __init__(
        self,
        expr: ast.PathExpr,
        anchor: Optional[str],
        base: Optional[Plan],
        steps: List[StepPlan],
    ):
        super().__init__()
        self.expr = expr
        self.anchor = anchor
        self.base = base
        self.steps = steps
        #: set by lowering: all steps closed and side-effect free, so the
        #: step application may be shared across queries in a batch.
        self.cacheable = False
        self.scan_signature: Optional[str] = None

    def label(self) -> str:
        path = "".join(step.describe() for step in self.steps)
        if self.anchor:
            path = ("/" if self.anchor == "/" else "//") + path.lstrip("/")
            base = "root"
        elif self.base is None:
            base = "."
        else:
            base = "base"
        shared = " shared" if self.cacheable else ""
        return f"Scan({base}{path}){shared}"

    def children(self) -> List[Plan]:
        return [self.base] if self.base is not None else []


class FilterPlan(Plan):
    """``base[p1][p2]`` — predicates over one whole sequence."""

    __slots__ = ("expr", "base", "predicates")

    def __init__(self, expr: ast.FilterExpr, base: Plan, predicates: List[PredPlan]):
        super().__init__()
        self.expr = expr
        self.base = base
        self.predicates = predicates

    def label(self) -> str:
        preds = "".join(f"[{p.describe()}]" for p in self.predicates)
        return f"Select{preds}"

    def children(self) -> List[Plan]:
        return [self.base]


class InlineCallPlan(Plan):
    """A non-recursive user function call inlined into the plan."""

    __slots__ = ("expr", "declaration", "args", "body")

    def __init__(
        self,
        expr: ast.FunctionCall,
        declaration: ast.FunctionDecl,
        args: List[Plan],
        body: Plan,
    ):
        super().__init__()
        self.expr = expr
        self.declaration = declaration
        self.args = args
        self.body = body

    def label(self) -> str:
        return f"InlineCall:{self.declaration.name}"

    def children(self) -> List[Plan]:
        return list(self.args) + [self.body]


# -- FLWOR tuple operators ---------------------------------------------------


class TupleOp:
    """Base class for FLWOR pipeline operators."""

    __slots__ = ("est_rows", "occ")

    def __init__(self):
        self.est_rows: Optional[float] = None
        #: inferred occurrence of the per-tuple binding (display-only).
        self.occ: Optional[str] = None

    def label(self) -> str:
        return type(self).__name__

    def plans(self) -> List[Plan]:
        return []


class ForOp(TupleOp):
    """Tuple source: ``for $var [at $pos] in source``.

    ``invariant`` marks sources that cannot observe the tuple variables
    bound so far (and are side-effect free); the executor evaluates those
    once per FLWOR execution instead of once per tuple.
    """

    __slots__ = ("clause", "var", "position_var", "source", "invariant")

    def __init__(self, clause: ast.ForClause, source: Plan, invariant: bool):
        super().__init__()
        self.clause = clause
        self.var = clause.var
        self.position_var = clause.position_var
        self.source = source
        self.invariant = invariant

    def label(self) -> str:
        note = " invariant" if self.invariant else ""
        return f"For ${self.var}{note}"

    def plans(self) -> List[Plan]:
        return [self.source]


class ForJoinOp(TupleOp):
    """A correlated scan turned into a memoized hash join.

    ``for $var in base/...[@attr eq probe]`` where *probe* depends on tuple
    variables: the scan up to the join predicate is evaluated once per
    distinct base (the build side, hashed on ``@attr``); each tuple then
    evaluates *probe* (the probe side) and looks its atoms up in the table.
    This is the rewrite that takes the generated follow-step queries from
    O(tuples x relations) to O(tuples + relations).
    """

    __slots__ = (
        "clause",
        "var",
        "position_var",
        "scan",
        "build_attr",
        "probe_expr",
        "style",
        "residual",
        "join_expr",
        "candidates",
        "fast_probe",
        "fast_base",
    )

    def __init__(
        self,
        clause: ast.ForClause,
        scan: PathPlan,
        build_attr: str,
        probe_expr: ast.Expr,
        style: str,
        residual: List[PredPlan],
        join_expr: ast.Comparison,
    ):
        super().__init__()
        self.clause = clause
        self.var = clause.var
        self.position_var = clause.position_var
        self.scan = scan
        self.build_attr = build_attr  # attribute hashed on the build side
        self.probe_expr = probe_expr
        self.style = style  # "value" (eq) or "general" (=)
        self.residual = residual
        self.join_expr = join_expr
        #: alternative (attr, probe, style, expr) tuples found by lowering;
        #: the optimizer may switch to the most selective one.
        self.candidates: List[Tuple[str, ast.Expr, str, ast.Comparison]] = []
        #: executor cache for the ``$var/@attr`` probe shape (recomputed
        #: whenever the optimizer swaps ``probe_expr``).
        self.fast_probe: Optional[tuple] = None
        #: executor cache for a ``root($var)``-based scan, keyed on the
        #: base plan's identity so a rewrite invalidates it.
        self.fast_base: Optional[tuple] = None

    def label(self) -> str:
        op = "eq" if self.style == "value" else "="
        residual = "".join(f"[{p.describe()}]" for p in self.residual)
        return f"HashJoin ${self.var} on @{self.build_attr} {op} probe{residual}"

    def plans(self) -> List[Plan]:
        return [self.scan]


class LetOp(TupleOp):
    __slots__ = ("clause", "flwor", "var", "value", "declared_type")

    def __init__(self, clause: ast.LetClause, flwor: ast.FLWOR, value: Plan):
        super().__init__()
        self.clause = clause
        self.flwor = flwor
        self.var = clause.var
        self.value = value
        self.declared_type = clause.declared_type

    def label(self) -> str:
        return f"Let ${self.var}"

    def plans(self) -> List[Plan]:
        return [self.value]


class WhereOp(TupleOp):
    __slots__ = ("condition", "condition_expr")

    def __init__(self, condition_expr: ast.Expr, condition: Plan):
        super().__init__()
        self.condition_expr = condition_expr
        self.condition = condition

    def label(self) -> str:
        return "Select:where"

    def plans(self) -> List[Plan]:
        return [self.condition]


class OrderOp(TupleOp):
    """``order by`` over the tuple stream — a decorated stable sort."""

    __slots__ = ("clause", "specs")

    def __init__(self, clause: ast.OrderByClause, specs: List[tuple]):
        super().__init__()
        self.clause = clause
        #: list of (key plan, descending, empty_least)
        self.specs = specs

    def label(self) -> str:
        keys = ", ".join(
            f"key{' desc' if descending else ''}" for _, descending, _ in self.specs
        )
        return f"OrderBy({keys})"

    def plans(self) -> List[Plan]:
        return [key for key, _, _ in self.specs]


class FLWORPlan(Plan):
    """The tuple pipeline: sources, joins, selections, sort, projection."""

    __slots__ = ("expr", "ops", "result", "result_expr")

    def __init__(
        self, expr: ast.FLWOR, ops: List[TupleOp], result: Plan, result_expr: ast.Expr
    ):
        super().__init__()
        self.expr = expr
        self.ops = ops
        self.result = result
        self.result_expr = result_expr

    def label(self) -> str:
        return "FLWOR"

    def children(self) -> List[Plan]:
        collected: List[Plan] = []
        for op in self.ops:
            collected.extend(op.plans())
        collected.append(self.result)
        return collected

    def to_dict(self) -> dict:
        entry = {"op": "FLWOR"}
        if self.est_rows is not None:
            entry["est_rows"] = round(self.est_rows, 2)
        pipeline = []
        for op in self.ops:
            op_entry = {"op": op.label()}
            if op.est_rows is not None:
                op_entry["est_rows"] = round(op.est_rows, 2)
            if op.occ is not None:
                op_entry["occ"] = op.occ
            plans = [plan.to_dict() for plan in op.plans() if plan is not None]
            if plans:
                op_entry["inputs"] = plans
            pipeline.append(op_entry)
        entry["pipeline"] = pipeline
        entry["return"] = self.result.to_dict()
        return entry

    def render(self, indent: int = 0, out: Optional[List[str]] = None) -> List[str]:
        if out is None:
            out = []
        rows = "" if self.est_rows is None else f"  (~{self.est_rows:g} rows)"
        out.append("  " * indent + "FLWOR" + rows)
        for op in self.ops:
            op_rows = "" if op.est_rows is None else f"  (~{op.est_rows:g} tuples)"
            op_occ = "" if op.occ is None else f"  [occ={op.occ}]"
            out.append("  " * (indent + 1) + op.label() + op_rows + op_occ)
            for plan in op.plans():
                if plan is not None:
                    plan.render(indent + 2, out)
        out.append("  " * (indent + 1) + "Return")
        self.result.render(indent + 2, out)
        return out
