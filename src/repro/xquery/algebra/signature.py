"""Structural AST signatures: the cache key for plans and shared scans.

Two queries that differ only in whitespace, comments, or source positions
parse to ASTs that differ only in ``line``/``column`` fields.  The service's
result cache and the batch common-subexpression cache both want to treat
those as the same query, so the signature walks the dataclass fields and
deliberately skips positions.

The signature is a plain string (stable, hashable, comparable) rather than
a hash, so collisions are impossible and the fuzzer cannot manufacture a
false cache hit.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Dict, List

from .. import ast

__all__ = ["expr_signature", "module_signature"]

_SKIP_FIELDS = {"line", "column"}

#: per-class dispatch cache: ``(kind, header, field_names)``.  Resolving
#: the isinstance chain, the type name, and the dataclass field list once
#: per class (``fields()`` rebuilds a tuple from the class dict on every
#: call) dominated signature time before this cache.
_DATACLASS, _SEQUENCE, _STRING, _SCALAR = 0, 1, 2, 3
_CLASS_INFO: Dict[type, tuple] = {}


def _class_info(cls: type) -> tuple:
    if is_dataclass(cls) or issubclass(cls, ast.Expr):
        names = tuple(
            field.name for field in fields(cls) if field.name not in _SKIP_FIELDS
        )
        info = (_DATACLASS, cls.__name__ + "(", names)
    elif issubclass(cls, (list, tuple)):
        info = (_SEQUENCE, "", ())
    elif issubclass(cls, str):
        info = (_STRING, "", ())
    else:
        # numbers, booleans, SequenceType reprs: repr is stable and total.
        info = (_SCALAR, cls.__name__ + ":", ())
    _CLASS_INFO[cls] = info
    return info


def _write(out: List[str], value) -> None:
    if value is None:
        out.append("~")
        return
    cls = value.__class__
    info = _CLASS_INFO.get(cls)
    if info is None:
        info = _class_info(cls)
    kind = info[0]
    if kind == _DATACLASS:
        out.append(info[1])
        for name in info[2]:
            _write(out, getattr(value, name))
            out.append(",")
        out.append(")")
    elif kind == _SEQUENCE:
        out.append("[")
        for item in value:
            _write(out, item)
            out.append(",")
        out.append("]")
    elif kind == _STRING:
        out.append(repr(value))
    else:
        out.append(info[1] + repr(value))


def expr_signature(expr) -> str:
    """A structural key for one expression, ignoring source positions."""
    out: List[str] = []
    _write(out, expr)
    return "".join(out)


def module_signature(module: ast.Module) -> str:
    """A structural key for a whole parsed module (prolog + body)."""
    out: List[str] = []
    _write(out, module.functions)
    _write(out, module.variables)
    _write(out, module.namespaces)
    _write(out, module.body)
    return "".join(out)
