"""Statistics catalog for the cost-based plan optimizer.

The paper's complaint is that a little language's *implementation* is
lopsided: a two-line FLWOR join runs in time quadratic in the document.
Closing that gap set-at-a-time needs cardinality estimates, and the place
those are cheapest to collect is export time — the AWB backend already
walks the whole model when it serializes, so a second O(document) pass per
export generation is noise.

The catalog stores exactly the three families of statistics the optimizer
consumes:

* per-name element counts (scan cardinality),
* child fan-out per element name (step cardinality),
* attribute selectivity per ``(element, attribute)`` pair — distinct-value
  counts, which rank candidate equi-join keys and order predicates.

The same walk also records the document's *shape* — parent→child element
edges and small attribute value domains — and, when the document is an
AWB export that actually conforms to :func:`~..analysis.schema.awb_export_schema`,
attaches that schema to the catalog.  A schema-bearing catalog licenses
the optimizer's semantics-affecting rewrites (pruning provably redundant
existence checks, singleton join keys); a document that fails conformance
simply gets ``schema = None`` and the optimizer falls back to pure
cost decisions.

When no catalog is available (ad-hoc queries against arbitrary documents)
``DEFAULT_STATS`` supplies deliberately bland priors; every decision the
optimizer takes with bare statistics is semantics-preserving, so bad
estimates cost time, never correctness.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ...xdm import DocumentNode, ElementNode, Node

__all__ = ["StatisticsCatalog", "DEFAULT_STATS"]

#: value-domain sets larger than this are discarded (open domains carry no
#: pruning power and would bloat the catalog).
_DOMAIN_CAP = 32


class StatisticsCatalog:
    """Summary statistics over one document tree, collected in one walk."""

    __slots__ = (
        "total_elements",
        "element_counts",
        "child_fanout",
        "attr_distinct",
        "attr_present",
        "attr_domains",
        "schema",
        "generation",
    )

    def __init__(self, generation: Optional[int] = None):
        self.total_elements = 0
        #: element name -> number of elements with that name
        self.element_counts: Dict[str, int] = {}
        #: element name -> average number of element children
        self.child_fanout: Dict[str, float] = {}
        #: (element name, attribute name) -> distinct value count
        self.attr_distinct: Dict[Tuple[str, str], int] = {}
        #: (element name, attribute name) -> elements carrying the attribute
        self.attr_present: Dict[Tuple[str, str], int] = {}
        #: (element name, attribute name) -> observed value set, when small
        self.attr_domains: Dict[Tuple[str, str], frozenset] = {}
        #: the document's schema, when the walked tree provably conforms to
        #: one we know (currently: the AWB export schema).  None otherwise.
        self.schema = None
        self.generation = generation

    @classmethod
    def from_root(
        cls, root: Node, generation: Optional[int] = None
    ) -> "StatisticsCatalog":
        """Collect statistics from a document (or element subtree) root."""
        catalog = cls(generation=generation)
        values: Dict[Tuple[str, str], set] = {}
        child_totals: Dict[str, int] = {}
        edges: Set[Tuple[str, str]] = set()
        root_names = []
        stack = [root]
        while stack:
            node = stack.pop()
            if isinstance(node, DocumentNode):
                stack.extend(node.children)
                continue
            if not isinstance(node, ElementNode):
                continue
            name = node.name
            if node.parent is root or node.parent is None:
                root_names.append(name)
            catalog.total_elements += 1
            catalog.element_counts[name] = catalog.element_counts.get(name, 0) + 1
            # Building the lazy name indexes here primes them for the first
            # query against this document — the walk already visits every
            # node, so the executor's cold path never pays for index builds.
            element_children = 0
            for child_name, children in node._child_element_index().items():
                element_children += len(children)
                edges.add((name, child_name))
                stack.extend(children)
            child_totals[name] = child_totals.get(name, 0) + element_children
            node._attribute_index()
            for attribute in node.attributes:
                key = (name, attribute.name)
                values.setdefault(key, set()).add(attribute.value)
                catalog.attr_present[key] = catalog.attr_present.get(key, 0) + 1
        for name, total in child_totals.items():
            count = catalog.element_counts.get(name, 1)
            catalog.child_fanout[name] = total / count if count else 0.0
        for key, seen in values.items():
            catalog.attr_distinct[key] = len(seen)
            if len(seen) <= _DOMAIN_CAP:
                catalog.attr_domains[key] = frozenset(seen)
        if root_names == ["awb-model"] or (
            isinstance(root, ElementNode) and root.name == "awb-model"
        ):
            # analysis.schema imports from xdm only, but the analysis
            # package __init__ pulls in the lint stack (which imports this
            # module back) — import lazily to stay acyclic.
            from ..analysis.schema import awb_export_schema

            candidate = awb_export_schema()
            if candidate.admits_observations(
                catalog.element_counts, edges, catalog.attr_present, catalog.attr_domains
            ):
                catalog.schema = candidate
        return catalog

    # -- estimates the optimizer asks for ---------------------------------

    def element_count(self, name: Optional[str]) -> int:
        """Estimated number of elements named *name* (any element if None)."""
        if name is None:
            return max(self.total_elements, 1)
        return self.element_counts.get(name, _DEFAULT_COUNT if self.is_default else 0)

    def fanout(self, name: Optional[str]) -> float:
        """Average element-child fan-out of elements named *name*."""
        if name is not None and name in self.child_fanout:
            return self.child_fanout[name]
        return _DEFAULT_FANOUT

    def attribute_domain(self, element: str, attribute: str):
        """The full recorded value domain of ``element/@attribute``, or None.

        Only small domains (≤ the collection cap) are recorded; ``None``
        therefore means "unknown", not "empty".  The serving tier's router
        reads ``attribute_domain("node", "type")`` as its proof source for
        single-shard routing: if the domain is known, it is *exactly* the
        set of node types present in the export.
        """
        return self.attr_domains.get((element, attribute))

    def attr_distinct_count(self, element: Optional[str], attribute: str) -> int:
        """Distinct values of *attribute* on elements named *element*.

        The join-key ranking: a key with more distinct values builds a
        sparser hash table, so the optimizer prefers it.
        """
        if element is not None:
            exact = self.attr_distinct.get((element, attribute))
            if exact is not None:
                return exact
        by_attr = [
            count for (_, name), count in self.attr_distinct.items() if name == attribute
        ]
        if by_attr:
            return max(by_attr)
        return _DEFAULT_DISTINCT

    def attr_selectivity(self, element: Optional[str], attribute: str) -> float:
        """Fraction of elements an ``@attribute = value`` predicate keeps."""
        distinct = self.attr_distinct_count(element, attribute)
        total = self.element_count(element) if element else self.total_elements
        if total <= 0:
            total = _DEFAULT_COUNT
        if element is not None:
            present = self.attr_present.get((element, attribute))
            if present is not None and distinct:
                return min(1.0, (present / total) / distinct)
        return min(1.0, 1.0 / max(distinct, 1))

    @property
    def is_default(self) -> bool:
        return self.total_elements == 0 and not self.element_counts

    def to_dict(self) -> dict:
        """JSON-friendly snapshot (used by explain and the service)."""
        return {
            "generation": self.generation,
            "schema": self.schema.name if self.schema is not None else None,
            "total_elements": self.total_elements,
            "element_counts": dict(self.element_counts),
            "child_fanout": {k: round(v, 3) for k, v in self.child_fanout.items()},
            "attr_distinct": {
                f"{element}/@{attribute}": count
                for (element, attribute), count in sorted(self.attr_distinct.items())
            },
        }


_DEFAULT_COUNT = 100
_DEFAULT_FANOUT = 5.0
_DEFAULT_DISTINCT = 10

#: The prior used when no export-time catalog is available.
DEFAULT_STATS = StatisticsCatalog()
