"""Statistics catalog for the cost-based plan optimizer.

The paper's complaint is that a little language's *implementation* is
lopsided: a two-line FLWOR join runs in time quadratic in the document.
Closing that gap set-at-a-time needs cardinality estimates, and the place
those are cheapest to collect is export time — the AWB backend already
walks the whole model when it serializes, so a second O(document) pass per
export generation is noise.

The catalog stores exactly the three families of statistics the optimizer
consumes:

* per-name element counts (scan cardinality),
* child fan-out per element name (step cardinality),
* attribute selectivity per ``(element, attribute)`` pair — distinct-value
  counts, which rank candidate equi-join keys and order predicates.

The same walk also records the document's *shape* — parent→child element
edges and small attribute value domains — and, when the document is an
AWB export that actually conforms to :func:`~..analysis.schema.awb_export_schema`,
attaches that schema to the catalog.  A schema-bearing catalog licenses
the optimizer's semantics-affecting rewrites (pruning provably redundant
existence checks, singleton join keys); a document that fails conformance
simply gets ``schema = None`` and the optimizer falls back to pure
cost decisions.

When no catalog is available (ad-hoc queries against arbitrary documents)
``DEFAULT_STATS`` supplies deliberately bland priors; every decision the
optimizer takes with bare statistics is semantics-preserving, so bad
estimates cost time, never correctness.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...xdm import DocumentNode, ElementNode, Node

__all__ = ["StatisticsCatalog", "DEFAULT_STATS"]

#: value-domain sets larger than this are discarded (open domains carry no
#: pruning power and would bloat the catalog).
_DOMAIN_CAP = 32


class StatisticsCatalog:
    """Summary statistics over one document tree, collected in one walk."""

    __slots__ = (
        "total_elements",
        "element_counts",
        "child_fanout",
        "attr_distinct",
        "attr_present",
        "attr_domains",
        "schema",
        "generation",
        "fulltext",
        "_child_totals",
        "_attr_values",
        "_edge_counts",
        "_root_name",
    )

    def __init__(self, generation: Optional[int] = None):
        self.total_elements = 0
        #: element name -> number of elements with that name
        self.element_counts: Dict[str, int] = {}
        #: element name -> average number of element children
        self.child_fanout: Dict[str, float] = {}
        #: (element name, attribute name) -> distinct value count
        self.attr_distinct: Dict[Tuple[str, str], int] = {}
        #: (element name, attribute name) -> elements carrying the attribute
        self.attr_present: Dict[Tuple[str, str], int] = {}
        #: (element name, attribute name) -> observed value set, when small
        self.attr_domains: Dict[Tuple[str, str], frozenset] = {}
        #: the document's schema, when the walked tree provably conforms to
        #: one we know (currently: the AWB export schema).  None otherwise.
        self.schema = None
        self.generation = generation
        #: collection/full-text statistics (see :meth:`set_fulltext`), or
        #: None when no document store feeds this catalog.
        self.fulltext: Optional[Dict[str, object]] = None
        # exact underlying state the derived estimates are computed from —
        # persisted (not discarded after the walk) so apply_delta can
        # add/subtract subtree contributions instead of re-walking.
        #: element name -> total element children across all instances
        self._child_totals: Dict[str, int] = {}
        #: (element name, attribute name) -> attribute value -> count
        self._attr_values: Dict[Tuple[str, str], Dict[str, int]] = {}
        #: (parent name, child name) -> occurrence count
        self._edge_counts: Dict[Tuple[str, str], int] = {}
        #: the document root's element name (the parent of delta subtrees)
        self._root_name: Optional[str] = None

    @classmethod
    def from_root(
        cls, root: Node, generation: Optional[int] = None
    ) -> "StatisticsCatalog":
        """Collect statistics from a document (or element subtree) root."""
        catalog = cls(generation=generation)
        root_names = []
        tops = (
            [child for child in root.children if isinstance(child, ElementNode)]
            if isinstance(root, DocumentNode)
            else [root]
            if isinstance(root, ElementNode)
            else []
        )
        for top in tops:
            root_names.append(top.name)
            catalog._add_subtree(top)
        if root_names:
            catalog._root_name = root_names[0]
        catalog._refresh_derived()
        if root_names == ["awb-model"]:
            catalog._check_schema()
        return catalog

    # -- exact maintenance --------------------------------------------------

    def _add_subtree(self, element: ElementNode) -> None:
        """Add one element subtree's contributions, in one O(subtree) walk."""
        stack = [element]
        while stack:
            node = stack.pop()
            name = node.name
            self.total_elements += 1
            self.element_counts[name] = self.element_counts.get(name, 0) + 1
            # Building the lazy name indexes here primes them for the first
            # query against this document — the walk already visits every
            # node, so the executor's cold path never pays for index builds.
            element_children = 0
            for child_name, children in node._child_element_index().items():
                element_children += len(children)
                key = (name, child_name)
                self._edge_counts[key] = self._edge_counts.get(key, 0) + len(children)
                stack.extend(children)
            self._child_totals[name] = (
                self._child_totals.get(name, 0) + element_children
            )
            node._attribute_index()
            for attribute in node.attributes:
                key = (name, attribute.name)
                self.attr_present[key] = self.attr_present.get(key, 0) + 1
                counts = self._attr_values.setdefault(key, {})
                counts[attribute.value] = counts.get(attribute.value, 0) + 1

    def _remove_subtree(self, element: ElementNode) -> None:
        """Subtract one element subtree's contributions (inverse of add)."""
        stack = [element]
        while stack:
            node = stack.pop()
            name = node.name
            self.total_elements -= 1
            count = self.element_counts.get(name, 0) - 1
            if count > 0:
                self.element_counts[name] = count
            else:
                self.element_counts.pop(name, None)
            element_children = 0
            for child_name, children in node._child_element_index().items():
                element_children += len(children)
                key = (name, child_name)
                left = self._edge_counts.get(key, 0) - len(children)
                if left > 0:
                    self._edge_counts[key] = left
                else:
                    self._edge_counts.pop(key, None)
                stack.extend(children)
            total = self._child_totals.get(name, 0) - element_children
            if total > 0 or name in self.element_counts:
                self._child_totals[name] = max(total, 0)
            else:
                self._child_totals.pop(name, None)
            for attribute in node.attributes:
                key = (name, attribute.name)
                present = self.attr_present.get(key, 0) - 1
                if present > 0:
                    self.attr_present[key] = present
                else:
                    self.attr_present.pop(key, None)
                counts = self._attr_values.get(key)
                if counts is not None:
                    left = counts.get(attribute.value, 0) - 1
                    if left > 0:
                        counts[attribute.value] = left
                    else:
                        counts.pop(attribute.value, None)
                    if not counts:
                        self._attr_values.pop(key, None)

    def _refresh_derived(self) -> None:
        """Recompute the estimate maps from the exact underlying state.

        O(names + attribute keys + small-domain values) — independent of
        document size, so cheap enough to run after every delta batch.
        """
        self.child_fanout = {}
        for name, count in self.element_counts.items():
            total = self._child_totals.get(name, 0)
            self.child_fanout[name] = total / count if count else 0.0
        self.attr_distinct = {}
        self.attr_domains = {}
        for key, values in self._attr_values.items():
            self.attr_distinct[key] = len(values)
            if len(values) <= _DOMAIN_CAP:
                self.attr_domains[key] = frozenset(values)

    def _check_schema(self) -> None:
        # analysis.schema imports from xdm only, but the analysis
        # package __init__ pulls in the lint stack (which imports this
        # module back) — import lazily to stay acyclic.
        from ..analysis.schema import awb_export_schema

        candidate = awb_export_schema()
        if candidate.admits_observations(
            self.element_counts,
            set(self._edge_counts),
            self.attr_present,
            self.attr_domains,
        ):
            self.schema = candidate
        else:
            self.schema = None

    def apply_delta(self, pairs, generation: Optional[int] = None) -> None:
        """Maintain the catalog across subtree replacements.

        *pairs* is the incremental exporter's delta log: ``(old_element,
        new_element)`` tuples (``None`` for pure inserts/removals), every
        element a direct child of the document root.  Old contributions
        are subtracted and new ones added exactly, the root's own
        fan-out/edges move by the net change, the derived estimates are
        recomputed, and schema conformance is re-checked — so downstream
        proofs (the serving router's ``attribute_domain("node", "type")``)
        stay sound without an O(document) recollection.
        """
        for old, new in pairs:
            if old is not None:
                self._remove_subtree(old)
                self._shift_root_edge(old.name, -1)
            if new is not None:
                self._add_subtree(new)
                self._shift_root_edge(new.name, +1)
        self._refresh_derived()
        if self._root_name == "awb-model":
            self._check_schema()
        if generation is not None:
            self.generation = generation

    def _shift_root_edge(self, child_name: str, delta: int) -> None:
        root = self._root_name
        if root is None:
            return
        self._child_totals[root] = self._child_totals.get(root, 0) + delta
        key = (root, child_name)
        left = self._edge_counts.get(key, 0) + delta
        if left > 0:
            self._edge_counts[key] = left
        else:
            self._edge_counts.pop(key, None)

    # -- estimates the optimizer asks for ---------------------------------

    def element_count(self, name: Optional[str]) -> int:
        """Estimated number of elements named *name* (any element if None)."""
        if name is None:
            return max(self.total_elements, 1)
        return self.element_counts.get(name, _DEFAULT_COUNT if self.is_default else 0)

    def fanout(self, name: Optional[str]) -> float:
        """Average element-child fan-out of elements named *name*."""
        if name is not None and name in self.child_fanout:
            return self.child_fanout[name]
        return _DEFAULT_FANOUT

    def attribute_domain(self, element: str, attribute: str):
        """The full recorded value domain of ``element/@attribute``, or None.

        Only small domains (≤ the collection cap) are recorded; ``None``
        therefore means "unknown", not "empty".  The serving tier's router
        reads ``attribute_domain("node", "type")`` as its proof source for
        single-shard routing: if the domain is known, it is *exactly* the
        set of node types present in the export.
        """
        return self.attr_domains.get((element, attribute))

    def attr_distinct_count(self, element: Optional[str], attribute: str) -> int:
        """Distinct values of *attribute* on elements named *element*.

        The join-key ranking: a key with more distinct values builds a
        sparser hash table, so the optimizer prefers it.
        """
        if element is not None:
            exact = self.attr_distinct.get((element, attribute))
            if exact is not None:
                return exact
        by_attr = [
            count for (_, name), count in self.attr_distinct.items() if name == attribute
        ]
        if by_attr:
            return max(by_attr)
        return _DEFAULT_DISTINCT

    def attr_selectivity(self, element: Optional[str], attribute: str) -> float:
        """Fraction of elements an ``@attribute = value`` predicate keeps."""
        distinct = self.attr_distinct_count(element, attribute)
        total = self.element_count(element) if element else self.total_elements
        if total <= 0:
            total = _DEFAULT_COUNT
        if element is not None:
            present = self.attr_present.get((element, attribute))
            if present is not None and distinct:
                return min(1.0, (present / total) / distinct)
        return min(1.0, 1.0 / max(distinct, 1))

    @property
    def is_default(self) -> bool:
        return self.total_elements == 0 and not self.element_counts

    def to_dict(self) -> dict:
        """JSON-friendly snapshot (used by explain and the service)."""
        return {
            "generation": self.generation,
            "schema": self.schema.name if self.schema is not None else None,
            "total_elements": self.total_elements,
            "element_counts": dict(self.element_counts),
            "child_fanout": {k: round(v, 3) for k, v in self.child_fanout.items()},
            "attr_distinct": {
                f"{element}/@{attribute}": count
                for (element, attribute), count in sorted(self.attr_distinct.items())
            },
        }

    # -- collection / full-text statistics ---------------------------------

    def set_fulltext(self, stats: Dict[str, object]) -> None:
        """Attach collection statistics for ``FullTextScan`` estimation.

        *stats* is a :meth:`repro.collections.DocumentStore.fulltext_stats`
        payload: ``total_docs``, ``collection_docs`` (prefix → member
        count), and ``doc_frequency`` (token → documents containing it).
        """
        self.fulltext = stats

    def fulltext_doc_count(self, collection: Optional[str]) -> Optional[int]:
        """Members of *collection* (None → the whole store), if known."""
        if self.fulltext is None:
            return None
        if collection is None:
            return int(self.fulltext.get("total_docs", 0))
        per_collection = self.fulltext.get("collection_docs", {})
        prefix = collection if collection in ("",) or collection.endswith("/") else collection + "/"
        if prefix in per_collection:
            return int(per_collection[prefix])
        return None

    def fulltext_estimate(
        self, collection: Optional[str], phrase: Optional[str]
    ) -> float:
        """Estimated hits for ``ft:search(collection, phrase)``.

        A phrase cannot match more documents than its rarest token's
        document frequency, so the estimate is ``min(df)`` over the
        phrase tokens, clamped by the collection's member count.  With
        no catalog data the prior is a small constant — enough to rank a
        FullTextScan far below an unindexed document scan.
        """
        members = self.fulltext_doc_count(collection)
        if self.fulltext is None or phrase is None:
            fallback = 8.0
            return float(min(members, fallback)) if members is not None else fallback
        from ...collections.fulltext import tokens_of  # deferred: no cycle at import

        tokens = tokens_of(phrase)
        if not tokens:
            return 0.0
        frequencies = self.fulltext.get("doc_frequency", {})
        rarest = min(int(frequencies.get(token, 0)) for token in tokens)
        if members is not None:
            rarest = min(rarest, members)
        return float(rarest)


_DEFAULT_COUNT = 100
_DEFAULT_FANOUT = 5.0
_DEFAULT_DISTINCT = 10

#: The prior used when no export-time catalog is available.
DEFAULT_STATS = StatisticsCatalog()
