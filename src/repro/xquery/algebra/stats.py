"""Statistics catalog for the cost-based plan optimizer.

The paper's complaint is that a little language's *implementation* is
lopsided: a two-line FLWOR join runs in time quadratic in the document.
Closing that gap set-at-a-time needs cardinality estimates, and the place
those are cheapest to collect is export time — the AWB backend already
walks the whole model when it serializes, so a second O(document) pass per
export generation is noise.

The catalog stores exactly the three families of statistics the optimizer
consumes:

* per-name element counts (scan cardinality),
* child fan-out per element name (step cardinality),
* attribute selectivity per ``(element, attribute)`` pair — distinct-value
  counts, which rank candidate equi-join keys and order predicates.

When no catalog is available (ad-hoc queries against arbitrary documents)
``DEFAULT_STATS`` supplies deliberately bland priors; every decision the
optimizer takes is semantics-preserving, so bad estimates cost time, never
correctness.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...xdm import DocumentNode, ElementNode, Node

__all__ = ["StatisticsCatalog", "DEFAULT_STATS"]


class StatisticsCatalog:
    """Summary statistics over one document tree, collected in one walk."""

    __slots__ = (
        "total_elements",
        "element_counts",
        "child_fanout",
        "attr_distinct",
        "attr_present",
        "generation",
    )

    def __init__(self, generation: Optional[int] = None):
        self.total_elements = 0
        #: element name -> number of elements with that name
        self.element_counts: Dict[str, int] = {}
        #: element name -> average number of element children
        self.child_fanout: Dict[str, float] = {}
        #: (element name, attribute name) -> distinct value count
        self.attr_distinct: Dict[Tuple[str, str], int] = {}
        #: (element name, attribute name) -> elements carrying the attribute
        self.attr_present: Dict[Tuple[str, str], int] = {}
        self.generation = generation

    @classmethod
    def from_root(
        cls, root: Node, generation: Optional[int] = None
    ) -> "StatisticsCatalog":
        """Collect statistics from a document (or element subtree) root."""
        catalog = cls(generation=generation)
        values: Dict[Tuple[str, str], set] = {}
        child_totals: Dict[str, int] = {}
        stack = [root]
        while stack:
            node = stack.pop()
            if isinstance(node, DocumentNode):
                stack.extend(node.children)
                continue
            if not isinstance(node, ElementNode):
                continue
            name = node.name
            catalog.total_elements += 1
            catalog.element_counts[name] = catalog.element_counts.get(name, 0) + 1
            # Building the lazy name indexes here primes them for the first
            # query against this document — the walk already visits every
            # node, so the executor's cold path never pays for index builds.
            element_children = 0
            for children in node._child_element_index().values():
                element_children += len(children)
                stack.extend(children)
            child_totals[name] = child_totals.get(name, 0) + element_children
            node._attribute_index()
            for attribute in node.attributes:
                key = (name, attribute.name)
                values.setdefault(key, set()).add(attribute.value)
                catalog.attr_present[key] = catalog.attr_present.get(key, 0) + 1
        for name, total in child_totals.items():
            count = catalog.element_counts.get(name, 1)
            catalog.child_fanout[name] = total / count if count else 0.0
        for key, seen in values.items():
            catalog.attr_distinct[key] = len(seen)
        return catalog

    # -- estimates the optimizer asks for ---------------------------------

    def element_count(self, name: Optional[str]) -> int:
        """Estimated number of elements named *name* (any element if None)."""
        if name is None:
            return max(self.total_elements, 1)
        return self.element_counts.get(name, _DEFAULT_COUNT if self.is_default else 0)

    def fanout(self, name: Optional[str]) -> float:
        """Average element-child fan-out of elements named *name*."""
        if name is not None and name in self.child_fanout:
            return self.child_fanout[name]
        return _DEFAULT_FANOUT

    def attr_distinct_count(self, element: Optional[str], attribute: str) -> int:
        """Distinct values of *attribute* on elements named *element*.

        The join-key ranking: a key with more distinct values builds a
        sparser hash table, so the optimizer prefers it.
        """
        if element is not None:
            exact = self.attr_distinct.get((element, attribute))
            if exact is not None:
                return exact
        by_attr = [
            count for (_, name), count in self.attr_distinct.items() if name == attribute
        ]
        if by_attr:
            return max(by_attr)
        return _DEFAULT_DISTINCT

    def attr_selectivity(self, element: Optional[str], attribute: str) -> float:
        """Fraction of elements an ``@attribute = value`` predicate keeps."""
        distinct = self.attr_distinct_count(element, attribute)
        total = self.element_count(element) if element else self.total_elements
        if total <= 0:
            total = _DEFAULT_COUNT
        if element is not None:
            present = self.attr_present.get((element, attribute))
            if present is not None and distinct:
                return min(1.0, (present / total) / distinct)
        return min(1.0, 1.0 / max(distinct, 1))

    @property
    def is_default(self) -> bool:
        return self.total_elements == 0 and not self.element_counts

    def to_dict(self) -> dict:
        """JSON-friendly snapshot (used by explain and the service)."""
        return {
            "generation": self.generation,
            "total_elements": self.total_elements,
            "element_counts": dict(self.element_counts),
            "child_fanout": {k: round(v, 3) for k, v in self.child_fanout.items()},
            "attr_distinct": {
                f"{element}/@{attribute}": count
                for (element, attribute), count in sorted(self.attr_distinct.items())
            },
        }


_DEFAULT_COUNT = 100
_DEFAULT_FANOUT = 5.0
_DEFAULT_DISTINCT = 10

#: The prior used when no export-time catalog is available.
DEFAULT_STATS = StatisticsCatalog()
