"""Static analysis for the XQuery subset — the tooling the paper lacked.

The paper's toolchain gave "no information of where" when queries failed;
this package is the counterfactual: a multi-pass analyzer with located
diagnostics for exactly the footguns the paper documents (dead traces,
unchecked error values, positional-predicate surprises, attribute folding),
plus ordinary hygiene (dead code, shadowing, name/arity resolution).

Layers: :mod:`.diagnostics` (the finding model), :mod:`.cardinality`
(occurrence inference — the empty/one/many lattice), :mod:`.schema`
(document schemas from the AWB export conventions), :mod:`.types`
(whole-program item-type + occurrence inference, the typed mode the
paper skipped), :mod:`.rules` (XQL001–XQL012 and the registry),
:mod:`.driver` (entry points), and :mod:`.corpus` (linting the repo's
own .xq sources against a baseline).
"""

from .cardinality import (
    EMPTY,
    ONE,
    OPT,
    PLUS,
    STAR,
    Binding,
    Card,
    CardinalityAnalyzer,
)
from .schema import (
    AttributeSchema,
    DocumentSchema,
    ElementSchema,
    awb_export_schema,
)
from .types import (
    AbstractItem,
    Inferred,
    ModuleTypeAnalysis,
    TypeAnalyzer,
    TypeFinding,
    check_sequence,
    infer_body_type,
    occurrence_indicator,
)
from .corpus import (
    BASELINE_PATH,
    CorpusUnit,
    corpus_units,
    diff_against_baseline,
    format_baseline,
    lint_corpus,
    lint_unit,
    load_baseline,
)
from .diagnostics import (
    SEVERITIES,
    Diagnostic,
    LintWarning,
    severity_at_least,
    sort_diagnostics,
)
from .driver import analyze_module, analyze_source, parse_for_lint
from .rules import RULES, ModuleAnalysis, Rule, rule_catalog

__all__ = [
    "AbstractItem",
    "AttributeSchema",
    "BASELINE_PATH",
    "Binding",
    "Card",
    "CardinalityAnalyzer",
    "CorpusUnit",
    "Diagnostic",
    "DocumentSchema",
    "EMPTY",
    "ElementSchema",
    "Inferred",
    "LintWarning",
    "ModuleAnalysis",
    "ModuleTypeAnalysis",
    "ONE",
    "OPT",
    "PLUS",
    "RULES",
    "Rule",
    "SEVERITIES",
    "STAR",
    "TypeAnalyzer",
    "TypeFinding",
    "awb_export_schema",
    "check_sequence",
    "infer_body_type",
    "occurrence_indicator",
    "analyze_module",
    "analyze_source",
    "corpus_units",
    "diff_against_baseline",
    "format_baseline",
    "lint_corpus",
    "lint_unit",
    "load_baseline",
    "parse_for_lint",
    "rule_catalog",
    "severity_at_least",
    "sort_diagnostics",
]
