"""Static analysis for the XQuery subset — the tooling the paper lacked.

The paper's toolchain gave "no information of where" when queries failed;
this package is the counterfactual: a multi-pass analyzer with located
diagnostics for exactly the footguns the paper documents (dead traces,
unchecked error values, positional-predicate surprises, attribute folding),
plus ordinary hygiene (dead code, shadowing, name/arity resolution).

Layers: :mod:`.diagnostics` (the finding model), :mod:`.cardinality`
(occurrence inference — the empty/one/many lattice), :mod:`.rules`
(XQL001–XQL008 and the registry), :mod:`.driver` (entry points), and
:mod:`.corpus` (linting the repo's own .xq sources against a baseline).
"""

from .cardinality import (
    EMPTY,
    ONE,
    OPT,
    PLUS,
    STAR,
    Binding,
    Card,
    CardinalityAnalyzer,
)
from .corpus import (
    BASELINE_PATH,
    CorpusUnit,
    corpus_units,
    diff_against_baseline,
    format_baseline,
    lint_corpus,
    lint_unit,
    load_baseline,
)
from .diagnostics import (
    SEVERITIES,
    Diagnostic,
    LintWarning,
    severity_at_least,
    sort_diagnostics,
)
from .driver import analyze_module, analyze_source, parse_for_lint
from .rules import RULES, ModuleAnalysis, Rule, rule_catalog

__all__ = [
    "BASELINE_PATH",
    "Binding",
    "Card",
    "CardinalityAnalyzer",
    "CorpusUnit",
    "Diagnostic",
    "EMPTY",
    "LintWarning",
    "ModuleAnalysis",
    "ONE",
    "OPT",
    "PLUS",
    "RULES",
    "Rule",
    "SEVERITIES",
    "STAR",
    "analyze_module",
    "analyze_source",
    "corpus_units",
    "diff_against_baseline",
    "format_baseline",
    "lint_corpus",
    "lint_unit",
    "load_baseline",
    "parse_for_lint",
    "rule_catalog",
    "severity_at_least",
    "sort_diagnostics",
]
