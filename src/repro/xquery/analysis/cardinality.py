"""Occurrence (cardinality) inference over the XQuery AST.

The paper's E1 table shows why this matters: ``($x, $y, $z)[2]`` answers
"what is item 2?" differently depending on how each part flattens, and
Galax reported the resulting surprises as ``Index out of bounds, without
any information of where``.  This pass infers, for every expression, a
conservative interval of how many items it can produce — the
empty / exactly-one / zero-or-more lattice the rules build on.

A :class:`Card` is a ``[lo, hi]`` interval (``hi=None`` is unbounded).
The familiar lattice points are the constants ``EMPTY`` (0,0), ``ONE``
(1,1), ``OPT`` (0,1), ``STAR`` (0,∞), and ``PLUS`` (1,∞); exact finite
lengths such as (3,3) fall out of concatenation for free.

Alongside pure cardinality, the pass tracks whether an expression may
construct *attribute nodes* — the ingredient of the paper's E2 folding
surprises (an attribute node in element content silently becomes an
attribute of the parent, or a runtime error when it arrives too late).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, Optional, Tuple

from .. import ast
from ...xdm import SequenceType

#: intervals wider than this saturate to "unbounded".
_HI_CAP = 1000


@dataclass(frozen=True)
class Card:
    """How many items an expression can produce: a ``[lo, hi]`` interval."""

    lo: int
    hi: Optional[int]  # None = unbounded

    def __repr__(self) -> str:
        hi = "*" if self.hi is None else self.hi
        return f"Card({self.lo},{hi})"

    @property
    def can_be_empty(self) -> bool:
        return self.lo == 0

    @property
    def is_exactly_one(self) -> bool:
        return self.lo == 1 and self.hi == 1


EMPTY = Card(0, 0)
ONE = Card(1, 1)
OPT = Card(0, 1)
STAR = Card(0, None)
PLUS = Card(1, None)


def concat(a: Card, b: Card) -> Card:
    """Cardinality of the sequence concatenation ``(a, b)``."""
    lo = min(a.lo + b.lo, _HI_CAP)
    if a.hi is None or b.hi is None:
        return Card(lo, None)
    hi = a.hi + b.hi
    return Card(lo, None if hi > _HI_CAP else hi)


def join(a: Card, b: Card) -> Card:
    """Least upper bound: either branch may be taken."""
    if a.hi is None or b.hi is None:
        hi: Optional[int] = None
    else:
        hi = max(a.hi, b.hi)
    return Card(min(a.lo, b.lo), hi)


def from_sequence_type(sequence_type: Optional[SequenceType]) -> Card:
    """The interval a declared ``as`` annotation promises."""
    if sequence_type is None:
        return STAR
    if sequence_type.item_type is None:  # empty-sequence()
        return EMPTY
    return {
        SequenceType.EXACTLY_ONE: ONE,
        SequenceType.ZERO_OR_ONE: OPT,
        SequenceType.ZERO_OR_MORE: STAR,
        SequenceType.ONE_OR_MORE: PLUS,
    }.get(sequence_type.occurrence, STAR)


@dataclass(frozen=True)
class Binding:
    """What is statically known about one bound variable."""

    card: Card = STAR
    may_be_attribute: bool = False
    attribute_name: Optional[str] = None  # when provably one named attribute
    #: abstract item type (``analysis.types.AbstractItem``) when the typed
    #: analyzer produced this binding; plain occurrence passes leave it None.
    item: Optional[object] = None

    def with_item(self, item) -> "Binding":
        return replace(self, item=item)


Env = Dict[str, Binding]

#: builtins that return exactly one item regardless of input.
_ALWAYS_ONE = {
    "true", "false", "not", "boolean", "count", "empty", "exists",
    "position", "last", "deep-equal", "string", "string-length", "concat",
    "string-join", "normalize-space", "upper-case", "lower-case",
    "translate", "contains", "starts-with", "ends-with", "matches",
    "replace", "codepoints-to-string", "number", "sum", "name",
    "local-name", "exactly-one", "doc", "doc-available", "substring",
    "substring-before", "substring-after",
}

#: builtins that return at most one item.
_AT_MOST_ONE = {
    "abs", "floor", "ceiling", "round", "avg", "min", "max", "node-name",
    "root", "zero-or-one",
}


class CardinalityAnalyzer:
    """Infers occurrence intervals bottom-up, given an environment."""

    def __init__(self, module: ast.Module):
        self.module = module
        self.functions: Dict[Tuple[str, int], ast.FunctionDecl] = {}
        for declaration in module.functions:
            local = declaration.name.split(":")[-1]
            self.functions[(local, declaration.arity)] = declaration

    # -- cardinality -------------------------------------------------------

    def card(self, expr, env: Env) -> Card:
        if expr is None:
            return EMPTY
        if isinstance(expr, (ast.Literal, ast.ContextItem)):
            return ONE
        if isinstance(expr, ast.EmptySequence):
            return EMPTY
        if isinstance(expr, ast.VarRef):
            binding = env.get(expr.name)
            return binding.card if binding is not None else STAR
        if isinstance(expr, ast.SequenceExpr):
            total = EMPTY
            for item in expr.items:
                total = concat(total, self.card(item, env))
            return total
        if isinstance(expr, ast.RangeExpr):
            return self._range_card(expr)
        if isinstance(expr, (ast.Arithmetic, ast.Unary)):
            return self._empty_propagating(expr, env)
        if isinstance(expr, ast.Comparison):
            if expr.style == "general":
                return ONE
            return self._empty_propagating(expr, env)
        if isinstance(expr, (ast.BooleanOp, ast.Quantified, ast.InstanceOf,
                             ast.CastableAs)):
            return ONE
        if isinstance(expr, ast.CastAs):
            return OPT if expr.allow_empty else ONE
        if isinstance(expr, ast.TreatAs):
            return from_sequence_type(expr.sequence_type)
        if isinstance(expr, ast.SetOp):
            return STAR
        if isinstance(expr, ast.AxisStep):
            return STAR
        if isinstance(expr, ast.FilterExpr):
            return self._filter_card(expr, env)
        if isinstance(expr, ast.PathExpr):
            if expr.anchor is None and not expr.steps and expr.first is not None:
                return self.card(expr.first, env)
            return STAR
        if isinstance(expr, ast.IfExpr):
            return join(
                self.card(expr.then_branch, env),
                self.card(expr.else_branch, env) if expr.else_branch else EMPTY,
            )
        if isinstance(expr, ast.Typeswitch):
            result = None
            for case in expr.cases:
                card = self.card(case.result, env)
                result = card if result is None else join(result, card)
            default = self.card(expr.default, env)
            return default if result is None else join(result, default)
        if isinstance(expr, ast.TryCatch):
            return join(self.card(expr.body, env), self.card(expr.handler, env))
        if isinstance(expr, ast.FLWOR):
            return self._flwor_card(expr, env)
        if isinstance(expr, ast.FunctionCall):
            return self._call_card(expr, env)
        if isinstance(expr, ast.ComputedText):
            # ``text { () }`` is the one constructor that maps empty content
            # to the empty sequence, not an empty node (fuzz-found).
            if expr.content is None:
                return EMPTY
            content = self.card(expr.content, env)
            return ONE if content.lo >= 1 else OPT
        if isinstance(expr, (ast.DirectElement, ast.DirectComment, ast.DirectPI,
                             ast.ComputedElement, ast.ComputedAttribute,
                             ast.ComputedComment, ast.ComputedDocument)):
            return ONE
        return STAR

    def _range_card(self, expr: ast.RangeExpr) -> Card:
        start, end = expr.start, expr.end
        if (
            isinstance(start, ast.Literal)
            and isinstance(end, ast.Literal)
            and isinstance(start.value, int)
            and isinstance(end.value, int)
        ):
            n = end.value - start.value + 1
            if n <= 0:
                return EMPTY
            return Card(min(n, _HI_CAP), None if n > _HI_CAP else n)
        return STAR

    def _empty_propagating(self, expr, env: Env) -> Card:
        """Ops that yield one item unless an operand is the empty sequence."""
        operands = (
            [expr.operand]
            if isinstance(expr, ast.Unary)
            else [expr.left, expr.right]
        )
        lo = 1
        for operand in operands:
            if self.card(operand, env).can_be_empty:
                lo = 0
        return Card(lo, 1)

    def _filter_card(self, expr: ast.FilterExpr, env: Env) -> Card:
        base = self.card(expr.base, env)
        for predicate in expr.predicates:
            if positional_index(predicate) is not None:
                base = Card(0, 0 if base.hi == 0 else 1)
            else:
                base = Card(0, base.hi)
        return base

    def _flwor_card(self, expr: ast.FLWOR, env: Env) -> Card:
        inner = dict(env)
        repetitions = ONE
        filtered = False
        for clause in expr.clauses:
            if isinstance(clause, ast.ForClause):
                source = self.card(clause.source, inner)
                repetitions = _multiply(repetitions, source)
                inner[clause.var] = Binding(card=ONE)
                if clause.position_var:
                    inner[clause.position_var] = Binding(card=ONE)
            elif isinstance(clause, ast.LetClause):
                inner[clause.var] = self.binding_of(clause.value, inner)
            elif isinstance(clause, ast.WhereClause):
                filtered = True
        result = self.card(expr.result, inner)
        total = _multiply(repetitions, result)
        if filtered:
            total = Card(0, total.hi)
        return total

    def _call_card(self, expr: ast.FunctionCall, env: Env) -> Card:
        """Mirrors ``_eval_function_call``'s resolution order exactly.

        Two soundness lessons the fuzz oracle taught this function: a
        declared user function shadows a same-named builtin at *any* call
        spelling (the runtime keys ``ctx.functions`` by local name), so
        the builtin result tables only apply when no declaration matches;
        and ``xs:`` constructors map empty to empty, so their result is
        optional unless the argument is provably non-empty.
        """
        name = expr.name
        if name.startswith("fn:"):
            name = name[3:]
        if name.startswith("xs:"):
            if len(expr.args) == 1:
                argument = self.card(expr.args[0], env)
                return ONE if argument.lo >= 1 else OPT
            return ONE  # arity error at runtime; card is for success paths
        local = name.split(":", 1)[1] if name.startswith("local:") else name
        if local == "trace" and expr.args and (local, len(expr.args)) not in self.functions:
            # fn:trace returns its last argument verbatim.
            return self.card(expr.args[-1], env)
        declaration = self.functions.get((local, len(expr.args)))
        if declaration is not None:
            if declaration.return_type is not None:
                return from_sequence_type(declaration.return_type)
            return STAR
        if local in _ALWAYS_ONE:
            return ONE
        if local in _AT_MOST_ONE:
            return OPT
        if local == "one-or-more":
            return PLUS
        return STAR

    # -- attribute-node inference (for the E2 rules) -----------------------

    def may_construct_attribute(self, expr, env: Env) -> bool:
        """True if *expr* can evaluate to one or more attribute nodes.

        Deliberately narrow — only shapes the analyzer can prove, so the
        E2 rule never cries wolf on ordinary element content.
        """
        if isinstance(expr, ast.ComputedAttribute):
            return True
        if isinstance(expr, ast.VarRef):
            binding = env.get(expr.name)
            return binding is not None and binding.may_be_attribute
        if isinstance(expr, ast.SequenceExpr):
            return any(self.may_construct_attribute(item, env) for item in expr.items)
        if isinstance(expr, ast.IfExpr):
            return self.may_construct_attribute(
                expr.then_branch, env
            ) or self.may_construct_attribute(expr.else_branch, env)
        if isinstance(expr, ast.FLWOR):
            inner = dict(env)
            for clause in expr.clauses:
                if isinstance(clause, ast.LetClause):
                    inner[clause.var] = self.binding_of(clause.value, inner)
                elif isinstance(clause, ast.ForClause):
                    inner[clause.var] = Binding(
                        card=ONE,
                        may_be_attribute=self.may_construct_attribute(
                            clause.source, inner
                        ),
                    )
            return self.may_construct_attribute(expr.result, inner)
        if isinstance(expr, ast.PathExpr):
            return self._path_ends_in_attribute(expr)
        return False

    @staticmethod
    def _path_ends_in_attribute(expr: ast.PathExpr) -> bool:
        last = expr.steps[-1][1] if expr.steps else expr.first
        return isinstance(last, ast.AxisStep) and last.axis == "attribute"

    def static_attribute_name(self, expr, env: Env) -> Optional[str]:
        """The attribute's name, when *expr* is provably one named attribute."""
        if isinstance(expr, ast.ComputedAttribute) and expr.name is not None:
            return expr.name
        if isinstance(expr, ast.VarRef):
            binding = env.get(expr.name)
            return binding.attribute_name if binding is not None else None
        return None

    def binding_of(self, expr, env: Env) -> Binding:
        """The :class:`Binding` a ``let``-style binding of *expr* produces."""
        return Binding(
            card=self.card(expr, env),
            may_be_attribute=self.may_construct_attribute(expr, env),
            attribute_name=self.static_attribute_name(expr, env),
        )

    # -- binding hooks -----------------------------------------------------
    # One method per binder shape.  ``iter_scoped`` and
    # ``module_environments`` call these instead of constructing Bindings
    # inline, so the typed analyzer can enrich every environment with item
    # types by overriding here — no second traversal.

    def for_binding(self, source, env: Env) -> Binding:
        """Binding of a ``for $x in source`` variable."""
        return Binding(
            card=ONE,
            may_be_attribute=self.may_construct_attribute(source, env),
        )

    def quantifier_binding(self, source, env: Env) -> Binding:
        """Binding of a ``some/every $x in source`` variable."""
        return Binding(card=ONE)

    def position_binding(self) -> Binding:
        """Binding of an ``at $pos`` positional variable."""
        return Binding(card=ONE)

    def case_binding(self, sequence_type) -> Binding:
        """Binding of a typeswitch ``case $x as T`` variable."""
        return Binding(card=from_sequence_type(sequence_type))

    def default_case_binding(self, operand, env: Env) -> Binding:
        """Binding of a typeswitch ``default $x`` variable."""
        return Binding(card=STAR)

    def catch_binding(self) -> Binding:
        """Binding of a ``try/catch $err`` variable (the ``<error>`` element)."""
        return Binding(card=ONE)

    def param_binding(self, param: ast.Param) -> Binding:
        """Binding of a function parameter, from its declared type."""
        return Binding(card=from_sequence_type(param.declared_type))

    def global_binding(self, declaration: ast.VariableDecl, env: Env) -> Binding:
        """Binding of a global ``declare variable``."""
        if declaration.declared_type is not None:
            return Binding(card=from_sequence_type(declaration.declared_type))
        if declaration.value is not None:
            return self.binding_of(declaration.value, env)
        return Binding(card=STAR)


def positional_index(predicate) -> Optional[int]:
    """N when *predicate* is the positional filter ``[N]`` (or
    ``[position() = N]`` / ``[position() eq N]``), else None."""
    if isinstance(predicate, ast.Literal) and isinstance(predicate.value, int):
        return predicate.value
    if (
        isinstance(predicate, ast.Comparison)
        and predicate.op in ("=", "eq")
        and isinstance(predicate.left, ast.FunctionCall)
        and predicate.left.name.split(":")[-1] == "position"
        and not predicate.left.args
        and isinstance(predicate.right, ast.Literal)
        and isinstance(predicate.right.value, int)
    ):
        return predicate.right.value
    return None


def _multiply(a: Card, b: Card) -> Card:
    lo = min(a.lo * b.lo, _HI_CAP)
    if a.hi is None or b.hi is None:
        return Card(lo, None)
    hi = a.hi * b.hi
    return Card(lo, None if hi > _HI_CAP else hi)


# -- scoped traversal ---------------------------------------------------------


def iter_scoped(root, env: Env, analyzer: CardinalityAnalyzer) -> Iterator[Tuple[object, Env]]:
    """Yield ``(expr, env)`` for every expression under *root*, with the
    environment that is in scope at that expression.

    The environment maps variable names to :class:`Binding`; ``let``
    bindings carry inferred cardinality and attribute-ness, ``for`` and
    quantifier bindings are exactly-one items.
    """
    if root is None:
        return
    yield root, env
    if isinstance(root, ast.FLWOR):
        inner = dict(env)
        for clause in root.clauses:
            if isinstance(clause, ast.ForClause):
                yield from iter_scoped(clause.source, inner, analyzer)
                inner = dict(inner)
                inner[clause.var] = analyzer.for_binding(clause.source, inner)
                if clause.position_var:
                    inner[clause.position_var] = analyzer.position_binding()
            elif isinstance(clause, ast.LetClause):
                yield from iter_scoped(clause.value, inner, analyzer)
                inner = dict(inner)
                inner[clause.var] = analyzer.binding_of(clause.value, inner)
            elif isinstance(clause, ast.WhereClause):
                yield from iter_scoped(clause.condition, inner, analyzer)
            elif isinstance(clause, ast.OrderByClause):
                for spec in clause.specs:
                    yield from iter_scoped(spec.key, inner, analyzer)
        yield from iter_scoped(root.result, inner, analyzer)
        return
    if isinstance(root, ast.Quantified):
        inner = dict(env)
        for var, source in root.bindings:
            yield from iter_scoped(source, inner, analyzer)
            inner = dict(inner)
            inner[var] = analyzer.quantifier_binding(source, inner)
        yield from iter_scoped(root.satisfies, inner, analyzer)
        return
    if isinstance(root, ast.Typeswitch):
        yield from iter_scoped(root.operand, env, analyzer)
        for case in root.cases:
            inner = env
            if case.var:
                inner = dict(env)
                inner[case.var] = analyzer.case_binding(case.sequence_type)
            yield from iter_scoped(case.result, inner, analyzer)
        inner = env
        if root.default_var:
            inner = dict(env)
            inner[root.default_var] = analyzer.default_case_binding(
                root.operand, env
            )
        yield from iter_scoped(root.default, inner, analyzer)
        return
    if isinstance(root, ast.TryCatch):
        yield from iter_scoped(root.body, env, analyzer)
        inner = env
        if root.catch_var:
            inner = dict(env)
            inner[root.catch_var] = analyzer.catch_binding()
        yield from iter_scoped(root.handler, inner, analyzer)
        return
    for child in ast.children_of(root):
        yield from iter_scoped(child, env, analyzer)


def module_environments(module: ast.Module, analyzer: CardinalityAnalyzer):
    """Initial environments: one for the module body (globals), and one
    per function (globals + parameters).  Returned as
    ``(body_env, {function_decl: env})``."""
    globals_env: Env = {}
    for declaration in module.variables:
        globals_env[declaration.name] = analyzer.global_binding(
            declaration, globals_env
        )
    function_envs = {}
    for function in module.functions:
        env = dict(globals_env)
        for param in function.params:
            env[param.name] = analyzer.param_binding(param)
        function_envs[id(function)] = env
    return globals_env, function_envs
