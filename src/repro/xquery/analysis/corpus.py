"""Linting the repository's own XQuery corpus against a baseline.

The corpus is every ``.xq`` program the repo ships: the docgen generator
(both error regimes, assembled exactly the way the runner assembles them,
plus each standalone phase module) and the example queries under
``examples/xq/``.  ``lint_corpus`` runs the analyzer over all of them;
CI compares the result against the committed ``lint-baseline.txt`` so a
change that introduces a *new* diagnostic fails, while the known, accepted
findings (the corpus deliberately preserves some 2004 idioms) don't.

Baseline lines are ``source:line:column:CODE``, one per finding, ``#``
comments allowed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .diagnostics import Diagnostic, sort_diagnostics
from .driver import analyze_source

_REPO_SRC = os.path.dirname(  # src/
    os.path.dirname(  # src/repro/
        os.path.dirname(  # src/repro/xquery/
            os.path.dirname(os.path.abspath(__file__))
        )
    )
)
REPO_ROOT = os.path.dirname(_REPO_SRC)
EXAMPLES_XQ_DIR = os.path.join(REPO_ROOT, "examples", "xq")
BASELINE_PATH = os.path.join(REPO_ROOT, "lint-baseline.txt")

#: docgen phase modules that run standalone (one ``$doc`` external each).
_PHASE_MODULES = (
    "phase_omissions.xq",
    "phase_toc.xq",
    "phase_replace.xq",
    "phase_strip.xq",
)


@dataclass(frozen=True)
class CorpusUnit:
    """One lintable program: a label and its full source text."""

    label: str
    source: str


def _xq_units_under(directory: str, label_prefix: str) -> List[CorpusUnit]:
    units: List[CorpusUnit] = []
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".xq"):
            continue
        path = os.path.join(directory, filename)
        with open(path, "r", encoding="utf-8") as handle:
            units.append(CorpusUnit(f"{label_prefix}/{filename}", handle.read()))
    return units


def corpus_units(extra_dirs: Optional[Iterable[str]] = None) -> List[CorpusUnit]:
    """Every .xq program the repo ships, assembled the way it actually runs.

    *extra_dirs* adds further directories of ``.xq`` files (labelled by
    their repo-relative path) — the CI ``typecheck-corpus`` step uses this
    to sweep ``tests/corpus/fuzz`` alongside the shipped examples.
    """
    from ...docgen.xquery_impl.runner import assemble_main_program, read_module

    units: List[CorpusUnit] = [
        CorpusUnit("docgen:main(values)", assemble_main_program("values")),
        CorpusUnit("docgen:main(exceptions)", assemble_main_program("exceptions")),
    ]
    for name in _PHASE_MODULES:
        units.append(CorpusUnit(f"docgen:{name}", read_module(name)))
    if os.path.isdir(EXAMPLES_XQ_DIR):
        units.extend(_xq_units_under(EXAMPLES_XQ_DIR, "examples/xq"))
    for directory in extra_dirs or ():
        absolute = os.path.join(REPO_ROOT, directory)
        if not os.path.isdir(absolute):
            raise FileNotFoundError(f"--include directory not found: {directory}")
        label = os.path.relpath(absolute, REPO_ROOT).replace(os.sep, "/")
        units.extend(_xq_units_under(absolute, label))
    return units


def lint_unit(unit: CorpusUnit, config=None, select=None, ignore=None) -> List[Diagnostic]:
    return analyze_source(
        unit.source,
        config=config,
        select=select,
        ignore=ignore,
        source_label=unit.label,
    )


def lint_corpus(
    config=None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    extra_dirs: Optional[Iterable[str]] = None,
) -> List[Diagnostic]:
    """Lint every corpus unit; diagnostics carry the unit label as source."""
    findings: List[Diagnostic] = []
    for unit in corpus_units(extra_dirs):
        findings.extend(lint_unit(unit, config=config, select=select, ignore=ignore))
    return sort_diagnostics(findings)


# -- baseline ---------------------------------------------------------------


def baseline_key(diagnostic: Diagnostic) -> str:
    source, line, column, code = diagnostic.key
    return f"{source}:{line}:{column}:{code}"


def format_baseline(diagnostics: Iterable[Diagnostic]) -> str:
    """The checked-in baseline format, with messages as trailing comments."""
    lines = [
        "# xqlint corpus baseline — accepted findings on the shipped corpus.",
        "# One `source:line:column:CODE` per line; regenerate with",
        "#   PYTHONPATH=src python -m repro.xquery.lint --corpus --write-baseline",
    ]
    for diagnostic in sort_diagnostics(diagnostics):
        lines.append(f"{baseline_key(diagnostic)}  # {diagnostic.message}")
    return "\n".join(lines) + "\n"


def load_baseline(path: Optional[str] = None) -> Set[str]:
    """The accepted finding keys; empty when no baseline file exists yet."""
    path = path or BASELINE_PATH
    accepted: Set[str] = set()
    if not os.path.exists(path):
        return accepted
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.split("#", 1)[0].strip()
            if line:
                accepted.add(line)
    return accepted


def diff_against_baseline(
    diagnostics: Iterable[Diagnostic], path: Optional[str] = None
) -> Tuple[List[Diagnostic], Set[str]]:
    """``(new_findings, stale_keys)`` relative to the baseline file.

    *new_findings* are diagnostics whose key is not accepted; *stale_keys*
    are accepted keys the corpus no longer produces (candidates to prune).
    """
    accepted = load_baseline(path)
    produced: Dict[str, Diagnostic] = {}
    fresh: List[Diagnostic] = []
    for diagnostic in diagnostics:
        key = baseline_key(diagnostic)
        produced[key] = diagnostic
        if key not in accepted:
            fresh.append(diagnostic)
    stale = accepted - set(produced)
    return sort_diagnostics(fresh), stale
