"""The diagnostic model for the static analyzer.

The paper's sharpest complaint about the 2004 toolchain is that failures
arrived "without any information of where" — Galax died with ``Index out
of bounds`` and no location.  Every :class:`Diagnostic` therefore carries
a real line/column span (threaded from the lexer through the AST), a
stable rule code, and a severity, and renders in the conventional
``file:line:column: CODE message`` shape that editors and CI understand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: severity names, in increasing order of gravity.
SEVERITIES = ("info", "warning", "error")


class LintWarning(UserWarning):
    """Raised (as a warning) when ``EngineConfig(lint="warn")`` finds issues."""


@dataclass
class Diagnostic:
    """One finding: a rule code, a severity, a message, and a location."""

    code: str  # e.g. "XQL003"
    severity: str  # "info" | "warning" | "error"
    message: str
    line: int = 0
    column: int = 0
    rule: str = ""  # the rule's slug, e.g. "positional-predicate"
    source: str = ""  # unit label (file path or corpus unit name)
    spec_code: Optional[str] = None  # W3C code when one exists (XPST0008, ...)
    hint: str = field(default="", compare=False)

    @property
    def key(self) -> Tuple[str, int, int, str]:
        """Identity used for baseline matching: (source, line, column, code)."""
        return (self.source, self.line, self.column, self.code)

    def render(self) -> str:
        where = self.source or "<query>"
        spec = f" ({self.spec_code})" if self.spec_code else ""
        return (
            f"{where}:{self.line}:{self.column}: "
            f"{self.code}{spec} [{self.severity}] {self.message}"
        )

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "source": self.source,
        }
        if self.spec_code:
            payload["spec_code"] = self.spec_code
        if self.hint:
            payload["hint"] = self.hint
        return payload

    def __str__(self) -> str:
        return self.render()


def sort_diagnostics(diagnostics) -> list:
    """Stable presentation order: by unit, then location, then code."""
    return sorted(
        diagnostics,
        key=lambda d: (d.source, d.line, d.column, d.code, d.message),
    )


def severity_at_least(diagnostic: Diagnostic, floor: str) -> bool:
    return SEVERITIES.index(diagnostic.severity) >= SEVERITIES.index(floor)
