"""Entry points that run every registered rule over a module or source text.

``analyze_module`` works on an already-parsed :class:`~repro.xquery.ast.Module`;
``analyze_source`` parses first and turns parse failures into **XQL000**
diagnostics (the analyzer never raises on bad input — the whole point is to
report *with a location* instead of dying the way 2004 Galax did).

Library modules — a prolog with no body expression, like the docgen
``util.xq`` — are parsed by appending a ``()`` body; rules that need a body
to be meaningful (unused-function detection) relax for them.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from .. import ast
from ..errors import XQueryStaticError
from ..parser import parse_query
from .diagnostics import Diagnostic, sort_diagnostics
from .rules import RULES, ModuleAnalysis


def _selected_codes(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> Set[str]:
    codes = set(RULES)
    if select:
        wanted = {c.upper() for c in select}
        codes = {c for c in codes if c in wanted}
    if ignore:
        dropped = {c.upper() for c in ignore}
        codes = {c for c in codes if c not in dropped}
    return codes


def analyze_module(
    module: ast.Module,
    config=None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    source_label: str = "",
    has_body: Optional[bool] = None,
) -> List[Diagnostic]:
    """Run every selected rule over *module*; returns sorted diagnostics."""
    codes = _selected_codes(select, ignore)
    analysis = ModuleAnalysis(module, config=config, has_body=has_body)
    findings: List[Diagnostic] = []
    for code in sorted(codes):
        for diagnostic in RULES[code].check(analysis):
            if source_label and not diagnostic.source:
                diagnostic.source = source_label
            findings.append(diagnostic)
    return sort_diagnostics(findings)


def parse_for_lint(source: str):
    """Parse *source*, tolerating prolog-only library modules.

    Returns ``(module, has_body)``.  Raises :class:`XQueryStaticError` only
    when the text is unparseable even as a library.
    """
    try:
        return parse_query(source), True
    except XQueryStaticError as original:
        # a library module is a prolog with no body; retry with a dummy one.
        # if the retry fails too, report the ORIGINAL error — the retry's
        # positions are shifted by the appended body.
        try:
            module = parse_query(source + "\n()")
        except XQueryStaticError:
            raise original
        module.body = None
        return module, False


def analyze_source(
    source: str,
    config=None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    source_label: str = "",
) -> List[Diagnostic]:
    """Parse and analyze; parse failures become XQL000 diagnostics."""
    try:
        module, has_body = parse_for_lint(source)
    except XQueryStaticError as error:
        return [
            Diagnostic(
                code="XQL000",
                severity="error",
                message=f"parse error: {error.bare_message}",
                line=error.line or 0,
                column=error.column or 0,
                rule="parse-error",
                source=source_label,
                spec_code=error.code,
            )
        ]
    return analyze_module(
        module,
        config=config,
        select=select,
        ignore=ignore,
        source_label=source_label,
        has_body=has_body,
    )
